//! Integration test regenerating the substance of **Table 1**: the asymptotic
//! complexity classes CHORA-rs derives for the paper's twelve non-linearly
//! recursive benchmarks, and the fact that the ICRA-style Kleene baseline
//! derives none of them.
//!
//! The expected strings below are the classes measured by this reproduction
//! (see EXPERIMENTS.md for the paper-vs-measured discussion); the test keeps
//! the reproduction honest about which rows match the paper and which do not.

use chora::bench_suite::complexity_suite;
use chora::core::{complexity, Analyzer, BaselineAnalyzer};
use chora::expr::Symbol;
use chora::ir::Interpreter;

fn chora_class(bench: &chora::bench_suite::ComplexityBenchmark) -> String {
    let result = Analyzer::new().analyze(&bench.program);
    match result.summary(bench.procedure) {
        None => "n.b.".to_string(),
        Some(summary) => complexity::table1_row(
            summary,
            &Symbol::new(bench.cost_var),
            &Symbol::new(bench.size_param),
        )
        .1
        .to_string(),
    }
}

#[test]
fn exponential_divide_by_one_benchmarks_match_paper() {
    for (name, expected) in [
        ("fibonacci", "O(2^n)"),
        ("hanoi", "O(2^n)"),
        ("subset_sum", "O(2^n)"),
        ("bst_copy", "O(2^n)"),
        ("ball_bins3", "O(3^n)"),
        ("qsort_calls", "O(2^n)"),
    ] {
        let bench = complexity_suite::by_name(name).unwrap();
        assert_eq!(chora_class(&bench), expected, "benchmark {name}");
        assert_eq!(bench.paper_chora, expected, "paper agreement for {name}");
    }
}

#[test]
fn divide_and_conquer_benchmarks_match_paper() {
    let kara = complexity_suite::karatsuba();
    assert_eq!(chora_class(&kara), "O(n^log2(3))");
    let merge = complexity_suite::mergesort();
    assert_eq!(chora_class(&merge), "O(n log n)");
}

#[test]
fn unsupported_benchmarks_report_no_bound() {
    // The paper also reports "n.b." for these two rows.
    for name in ["closest_pair", "ackermann"] {
        let bench = complexity_suite::by_name(name).unwrap();
        assert_eq!(chora_class(&bench), "n.b.", "benchmark {name}");
        assert_eq!(bench.paper_chora, "n.b.");
    }
}

#[test]
fn baseline_finds_no_bounds_on_nonlinear_recursion() {
    // The headline comparison of Table 1: the recurrence-based treatment of
    // non-linear recursion is what separates CHORA from ICRA.
    let mut baseline_bounds = 0;
    let mut chora_bounds = 0;
    for bench in complexity_suite::all() {
        let baseline = BaselineAnalyzer::new().analyze(&bench.program);
        if let Some(summary) = baseline.summary(bench.procedure) {
            if complexity::cost_bound(summary, &Symbol::new(bench.cost_var)).is_some() {
                baseline_bounds += 1;
            }
        }
        let ours = Analyzer::new().analyze(&bench.program);
        if let Some(summary) = ours.summary(bench.procedure) {
            if complexity::cost_bound(summary, &Symbol::new(bench.cost_var)).is_some() {
                chora_bounds += 1;
            }
        }
    }
    assert_eq!(
        baseline_bounds, 0,
        "the Kleene baseline should find no cost bounds"
    );
    assert!(
        chora_bounds >= 9,
        "CHORA-rs should bound most benchmarks, got {chora_bounds}"
    );
}

#[test]
fn bounds_dominate_measured_cost() {
    // Differential soundness check: the synthesized bound evaluated at n
    // dominates the cost measured by concretely executing the program.
    for name in ["hanoi", "fibonacci", "ball_bins3", "subset_sum"] {
        let bench = complexity_suite::by_name(name).unwrap();
        let result = Analyzer::new().analyze(&bench.program);
        let summary = result.summary(bench.procedure).unwrap();
        let bound = complexity::cost_bound(summary, &Symbol::new(bench.cost_var))
            .unwrap_or_else(|| panic!("no bound for {name}"));
        for n in 1..=8i64 {
            let mut interp = Interpreter::new(&bench.program).with_nondet_bool(|| true);
            let args: Vec<i128> = bench
                .program
                .procedure(bench.procedure)
                .unwrap()
                .params
                .iter()
                .map(|p| {
                    if *p == chora::expr::Symbol::new("n") {
                        n as i128
                    } else {
                        0
                    }
                })
                .collect();
            let run = interp.run(bench.procedure, &args).unwrap();
            let measured = run.globals[&Symbol::new(bench.cost_var)] as f64;
            let predicted =
                complexity::eval_bound_at(&bound, &Symbol::new(bench.size_param), n).unwrap();
            assert!(
                predicted + 1e-6 >= measured,
                "{name}: bound {predicted} < measured {measured} at n={n}"
            );
        }
    }
}

#[test]
fn mergesort_bound_tracks_n_log_n_shape() {
    let bench = complexity_suite::mergesort();
    let result = Analyzer::new().analyze(&bench.program);
    let summary = result.summary("mergesort").unwrap();
    let bound = complexity::cost_bound(summary, &Symbol::new("cost")).unwrap();
    // The bound at 2n should be a little more than twice the bound at n
    // (n log n shape), but far less than four times (not quadratic).
    let b1 = complexity::eval_bound_at(&bound, &Symbol::new("n"), 1 << 14).unwrap();
    let b2 = complexity::eval_bound_at(&bound, &Symbol::new("n"), 1 << 15).unwrap();
    let ratio = b2 / b1;
    assert!(
        ratio > 1.9 && ratio < 2.5,
        "doubling ratio {ratio} not n·log(n)-like"
    );
}
