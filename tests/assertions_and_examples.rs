//! Integration tests for the assertion-checking experiments (Table 2 /
//! Fig. 3) and the paper's worked examples (§2 subsetSum, §4.4 Ex. 4.1).

use chora::bench_suite::{assertion_suite, complexity_suite, mutual_suite};
use chora::core::{complexity, Analyzer, BaselineAnalyzer, DepthBound};
use chora::expr::Symbol;
use chora::ir::Interpreter;
use chora::numeric::rat;

#[test]
fn table2_height_proved_by_chora_but_not_baseline() {
    let bench = assertion_suite::height();
    let ours = Analyzer::new().analyze(&bench.program);
    assert!(!ours.assertions.is_empty());
    assert!(
        ours.all_assertions_verified(),
        "CHORA-rs should prove height ≤ size"
    );
    let baseline = BaselineAnalyzer::new().analyze(&bench.program);
    assert!(
        !baseline.all_assertions_verified(),
        "the Kleene baseline should not prove height ≤ size (ICRA does not either)"
    );
    // Paper agreement for this row of Table 2.
    assert!(bench.paper_chora);
    assert!(!bench.paper_icra);
}

#[test]
fn some_svcomp_style_assertions_are_proved() {
    let proved: Vec<&str> = assertion_suite::svcomp()
        .iter()
        .filter(|b| {
            let r = Analyzer::new().analyze(&b.program);
            !r.assertions.is_empty() && r.all_assertions_verified()
        })
        .map(|b| b.name)
        .collect();
    assert!(
        proved.contains(&"Addition02") && proved.contains(&"recHanoi02"),
        "expected at least the inequality-style benchmarks to be proved, got {proved:?}"
    );
}

#[test]
fn assertion_verdicts_never_claim_unsound_proofs() {
    // Every assertion in the suite is in fact valid, so any verdict is
    // acceptable soundness-wise; this test instead checks that verdicts are
    // stable and that every assertion receives exactly one verdict.
    for bench in assertion_suite::all() {
        let result = Analyzer::new().analyze(&bench.program);
        let expected: usize = bench
            .program
            .procedures
            .iter()
            .map(|p| {
                let mut count = 0;
                p.body.visit(&mut |s| {
                    if matches!(s, chora::ir::Stmt::Assert(_, _)) {
                        count += 1;
                    }
                });
                count
            })
            .sum();
        assert_eq!(
            result.assertions.len(),
            expected,
            "verdict count for {}",
            bench.name
        );
    }
}

#[test]
fn subset_sum_summary_matches_section_2() {
    // §2: nTicks' ≤ nTicks + 2^h − 1, return' ≤ h − 1, h ≤ max(1, 1 + n − i).
    let bench = complexity_suite::subset_sum();
    let result = Analyzer::new().analyze(&bench.program);
    let summary = result.summary("subsetSumAux").unwrap();
    // Depth bound is linear in n − i.
    match summary.depth.as_ref().expect("depth bound") {
        DepthBound::Linear(t) => {
            let rendered = t.to_string();
            assert!(
                rendered.contains('n') && rendered.contains('i'),
                "depth {rendered}"
            );
        }
        other => panic!("expected a linear depth bound, got {other:?}"),
    }
    // The nTicks difference is bounded by an exponential with base 2.
    let fact = summary
        .bound_facts
        .iter()
        .find(|f| {
            f.term.symbols().contains(&Symbol::new("nTicks'"))
                && f.term.symbols().contains(&Symbol::new("nTicks"))
        })
        .expect("nTicks bound fact");
    assert_eq!(
        fact.closed_form.dominant_base_abs(),
        Some(rat(2)),
        "closed form {}",
        fact.closed_form
    );
}

#[test]
fn mutual_recursion_example_4_1_has_base_6_growth() {
    let program = mutual_suite::example_4_1();
    let result = Analyzer::new().analyze(&program);
    for name in ["P1", "P2"] {
        let summary = result.summary(name).unwrap();
        let fact = summary
            .bound_facts
            .iter()
            .find(|f| f.term.symbols().contains(&Symbol::new("g'")))
            .unwrap_or_else(|| panic!("no g bound fact for {name}"));
        let base = fact
            .closed_form
            .dominant_base_abs()
            .expect("exponential closed form")
            .abs();
        assert_eq!(base, rat(6), "{name}: closed form {}", fact.closed_form);
    }
    // Differential check: the bound dominates the measured number of
    // base-case increments of g.
    let summary = result.summary("P1").unwrap();
    let bound = complexity::cost_bound(summary, &Symbol::new("g")).unwrap();
    for n in 1..=4i64 {
        let mut interp = Interpreter::new(&program);
        let run = interp.run("P1", &[n as i128]).unwrap();
        let measured = run.globals[&Symbol::new("g")] as f64;
        let predicted = complexity::eval_bound_at(&bound, &Symbol::new("n"), n).unwrap();
        assert!(
            predicted + 1e-6 >= measured,
            "P1 bound {predicted} < measured {measured} at n={n}"
        );
    }
}

#[test]
fn quickstart_programs_execute_correctly() {
    // The interpreter agrees with the closed-form cost of hanoi.
    let bench = complexity_suite::hanoi();
    for n in 0..=10i128 {
        let mut interp = Interpreter::new(&bench.program);
        let run = interp.run("hanoi", &[n]).unwrap();
        assert_eq!(run.globals[&Symbol::new("cost")], (1 << (n + 1)) - 1);
    }
}
