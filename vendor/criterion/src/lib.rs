//! Offline vendored shim of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! minimal wall-clock benchmarking harness the workspace's `benches/` targets
//! need: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! mean-of-samples measurement printed to stdout — no statistics, plots, or
//! baseline comparisons — but the bench targets compile and run identically
//! under `cargo bench`.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `iterations` timed calls per sample.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.samples.push(start.elapsed() / self.iterations as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iterations: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{id:<40} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and test-harness filters); this
            // shim runs every group regardless, so just ignore the arguments.
            $($group();)+
        }
    };
}
