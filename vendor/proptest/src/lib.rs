//! Offline vendored shim of the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the *small* slice of the proptest API that the
//! workspace's property tests actually use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter`, integer-range and
//! tuple strategies, `any::<T>()`, `prop::collection::vec`, and
//! [`test_runner::Config`] (`ProptestConfig`).
//!
//! Unlike upstream proptest there is no shrinking and no failure persistence;
//! generation is fully deterministic per test (seeded from the test's module
//! path), so failures reproduce exactly under `cargo test`.

pub mod test_runner {
    /// Deterministic splitmix64 generator; seeded from the test name so each
    /// property test draws an independent, reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(seed: &str) -> Self {
            // FNV-1a over the seed string.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in seed.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for the small ranges used in tests.
            self.next_u64() % bound
        }
    }

    /// Mirror of `proptest::test_runner::Config` (aliased `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values; the shim keeps upstream's associated
    /// `Value` type and the two combinators our tests rely on.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                pred,
            }
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) whence: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.base.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(width);
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    let off = rng.below(width);
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    /// `any::<T>()` support: full-domain generation with a sprinkle of the
    /// boundary values upstream proptest is known for surfacing.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    match rng.below(16) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        4 => <$t>::MAX.wrapping_sub(1),
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    pub struct Any<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: ::std::marker::PhantomData,
        }
    }

    /// Always produces a clone of the given value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::collection::SizeRange`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Upstream's prelude exposes the crate root under the name `prop`, so
    /// tests can say `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assertion macros: without shrinking there is nothing to unwind, so these
/// map directly onto the std assertions (the generated values that produced a
/// failure are printed by the `proptest!` harness before panicking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Prints the failing case index from its `Drop` when a property body panics
/// (instead of upstream's shrink-and-persist machinery).
#[doc(hidden)]
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    cases: u32,
    armed: bool,
}

impl CaseGuard {
    pub fn new(name: &'static str, case: u32, cases: u32) -> Self {
        CaseGuard {
            name,
            case,
            cases,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: property '{}' failed at deterministic case {}/{}",
                self.name,
                self.case + 1,
                self.cases
            );
        }
    }
}

/// The `proptest!` block macro: accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are drawn from strategies via `pat in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                // Generation is deterministic, so a failing case number is
                // enough to replay the exact inputs under a debugger.
                let __guard = $crate::CaseGuard::new(stringify!($name), __case, __config.cases);
                $body
                __guard.disarm();
            }
        }
    )*};
}
