#!/bin/sh
# Line-based validator for the Prometheus text exposition format (0.0.4),
# as served by `GET /v1/metrics`.  POSIX sh + awk only, so CI and local
# checks need nothing beyond a base system.
#
# Checks, per line:
#   - `# HELP <name> <text>` and `# TYPE <name> <kind>` comments are well
#     formed and the kind is a known one;
#   - every sample parses as `name value` or `name{k="v",...} value` with a
#     strictly numeric value (NaN/+Inf/-Inf allowed, as the format permits);
#   - every sample belongs to a family introduced by both a # HELP and a
#     # TYPE comment (histogram `_bucket`/`_sum`/`_count` suffixes resolve
#     to their base family);
# and, for the file overall, that at least one sample is present.
#
# Usage: validate_prometheus.sh [FILE]     (reads stdin without a FILE)
set -eu

awk '
  /^$/ { next }
  /^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* ./ { help[$3] = 1; next }
  /^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* / {
    if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/) {
      print "line " NR ": unknown metric kind: " $0; bad = 1; next
    }
    if (!($3 in type)) families++
    type[$3] = $4; next
  }
  /^#/ { print "line " NR ": malformed comment: " $0; bad = 1; next }
  {
    line = $0
    name = line; sub(/[{ ].*$/, "", name)
    if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) {
      print "line " NR ": bad metric name: " line; bad = 1; next
    }
    if (line ~ /{/ && line !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*\{([a-zA-Z_][a-zA-Z0-9_]*="[^"]*")(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\} /) {
      print "line " NR ": malformed label set: " line; bad = 1; next
    }
    value = line; sub(/^.* /, "", value)
    if (value !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ && value !~ /^(NaN|\+Inf|-Inf)$/) {
      print "line " NR ": non-numeric sample value: " line; bad = 1; next
    }
    family = name; sub(/_(bucket|sum|count)$/, "", family)
    if (!(name in help) && !(family in help)) {
      print "line " NR ": sample without # HELP: " name; bad = 1
    }
    if (!(name in type) && !(family in type)) {
      print "line " NR ": sample without # TYPE: " name; bad = 1
    }
    samples++
  }
  END {
    if (!samples) { print "no samples found"; bad = 1 }
    if (bad) exit 1
    printf "prometheus ok: %d samples across %d families\n", samples, families
  }
' "${1:--}"
