//! # chora
//!
//! Facade crate re-exporting the full CHORA analysis stack: a from-scratch
//! Rust reproduction of *"Templates and Recurrences: Better Together"*
//! (Breck, Cyphert, Kincaid, Reps — PLDI 2020).
//!
//! The primary entry point is [`chora_core::Analyzer`]; benchmark programs
//! from the paper's evaluation live in [`chora_bench_suite`].
//!
//! ```
//! use chora::core::{Analyzer, complexity};
//! use chora::bench_suite::complexity_suite;
//! use chora::expr::Symbol;
//!
//! let bench = complexity_suite::hanoi();
//! let result = Analyzer::new().analyze(&bench.program);
//! let summary = result.summary("hanoi").unwrap();
//! let (_, class) = complexity::table1_row(summary, &Symbol::new("cost"), &Symbol::new("n"));
//! assert_eq!(class.to_string(), "O(2^n)");
//! ```

pub use chora_bench_suite as bench_suite;
pub use chora_core as core;
pub use chora_expr as expr;
pub use chora_ir as ir;
pub use chora_logic as logic;
pub use chora_numeric as numeric;
pub use chora_recurrence as recurrence;
