//! Regenerates the assertion-checking experiments (Table 2 and the CHORA/ICRA
//! columns of Fig. 3): which assertions each analyzer proves.
//!
//! Run with `cargo run --release --example assertion_checking`.

use chora::bench_suite::assertion_suite;
use chora::core::{Analyzer, BaselineAnalyzer};

fn main() {
    for (title, benches) in [
        (
            "Table 2 (hand-written non-linear benchmarks)",
            assertion_suite::table2(),
        ),
        (
            "Fig. 3 suite (SV-COMP recursive style)",
            assertion_suite::svcomp(),
        ),
    ] {
        println!("== {title} ==");
        println!(
            "{:<18} {:<10} {:<10} {:<12} {:<12}",
            "benchmark", "CHORA-rs", "ICRA-rs", "paper CHORA", "paper ICRA"
        );
        let mut ours_count = 0;
        let mut paper_count = 0;
        for bench in &benches {
            let ours = Analyzer::new().analyze(&bench.program);
            let ours_ok = !ours.assertions.is_empty() && ours.all_assertions_verified();
            let baseline = BaselineAnalyzer::new().analyze(&bench.program);
            let baseline_ok = !baseline.assertions.is_empty() && baseline.all_assertions_verified();
            if ours_ok {
                ours_count += 1;
            }
            if bench.paper_chora {
                paper_count += 1;
            }
            println!(
                "{:<18} {:<10} {:<10} {:<12} {:<12}",
                bench.name,
                if ours_ok { "proved" } else { "not proved" },
                if baseline_ok { "proved" } else { "not proved" },
                if bench.paper_chora {
                    "proved"
                } else {
                    "not proved"
                },
                if bench.paper_icra {
                    "proved"
                } else {
                    "not proved"
                },
            );
        }
        println!(
            "proved by CHORA-rs: {ours_count}/{}   (paper CHORA: {paper_count}/{})\n",
            benches.len(),
            benches.len()
        );
    }
}
