//! Regenerates Table 1 of the paper: the asymptotic complexity bounds found
//! by CHORA-rs and by the ICRA-style baseline on the twelve non-linearly
//! recursive benchmarks, next to the bounds the paper reports.
//!
//! Run with `cargo run --release --example complexity_bounds`.

use chora::bench_suite::complexity_suite;
use chora::core::{complexity, Analyzer, BaselineAnalyzer};
use chora::expr::Symbol;

fn main() {
    println!(
        "{:<14} {:<14} {:<16} {:<12} {:<14} {:<12}",
        "benchmark", "actual", "CHORA-rs", "ICRA-rs", "paper CHORA", "paper ICRA"
    );
    println!("{}", "-".repeat(86));
    for bench in complexity_suite::all() {
        let cost = Symbol::new(bench.cost_var);
        let size = Symbol::new(bench.size_param);
        let ours = Analyzer::new().analyze(&bench.program);
        let ours_class = ours
            .summary(bench.procedure)
            .map(|s| complexity::table1_row(s, &cost, &size).1.to_string())
            .unwrap_or_else(|| "n.b.".to_string());
        let baseline = BaselineAnalyzer::new().analyze(&bench.program);
        let baseline_class = baseline
            .summary(bench.procedure)
            .map(|s| complexity::table1_row(s, &cost, &size).1.to_string())
            .unwrap_or_else(|| "n.b.".to_string());
        println!(
            "{:<14} {:<14} {:<16} {:<12} {:<14} {:<12}",
            bench.name,
            bench.actual,
            ours_class,
            baseline_class,
            bench.paper_chora,
            bench.paper_icra
        );
    }
}
