//! Quickstart: build a small recursive program with the IR builder, analyse
//! it, and print the synthesized procedure summary and cost bound.
//!
//! Run with `cargo run --example quickstart`.

use chora::core::{complexity, Analyzer};
use chora::expr::Symbol;
use chora::ir::{Cond, Expr, Interpreter, Procedure, Program, Stmt};

fn main() {
    // The subsetSum-style program of §2: two recursive calls per element.
    let mut program = Program::new();
    program.add_global("nTicks");
    program.add_procedure(Procedure::new(
        "subsetSumAux",
        &["i", "n"],
        &[],
        Stmt::seq(vec![
            Stmt::assign("nTicks", Expr::var("nTicks").add(Expr::int(1))),
            Stmt::if_then(
                Cond::lt(Expr::var("i"), Expr::var("n")),
                Stmt::seq(vec![
                    Stmt::call(
                        "subsetSumAux",
                        vec![Expr::var("i").add(Expr::int(1)), Expr::var("n")],
                    ),
                    Stmt::call(
                        "subsetSumAux",
                        vec![Expr::var("i").add(Expr::int(1)), Expr::var("n")],
                    ),
                ]),
            ),
        ]),
    ));

    // 1. Analyse.
    let result = Analyzer::new().analyze(&program);
    let summary = result.summary("subsetSumAux").expect("summary");
    println!("== synthesized summary for subsetSumAux ==");
    println!("depth bound : {:?}", summary.depth);
    for fact in &summary.bound_facts {
        if let Some(bound) = &fact.bound {
            println!("  {}  ≤  {}", fact.term, bound);
        } else {
            println!(
                "  {}  ≤  {}   (height-indexed)",
                fact.term, fact.closed_form
            );
        }
    }

    // 2. Extract the cost bound and compare against concrete executions.
    let bound = complexity::cost_bound(summary, &Symbol::new("nTicks")).expect("cost bound");
    println!("\ncost bound: nTicks' ≤ {bound}");
    println!("\n  n   measured nTicks   bound");
    for n in 1..=10i128 {
        let mut interp = Interpreter::new(&program);
        let run = interp.run("subsetSumAux", &[0, n]).unwrap();
        let measured = run.globals[&Symbol::new("nTicks")];
        let predicted = complexity::eval_bound_at(&bound, &Symbol::new("n"), n as i64).unwrap();
        println!("  {n:<3} {measured:<17} {predicted:.0}");
        assert!(
            predicted + 1e-6 >= measured as f64,
            "bound must dominate the measurement"
        );
    }
}
