//! Walk-through of the mutual-recursion examples of §4.4 and §4.5: the
//! interdependent bounding functions of Ex. 4.1 and the missing-base-case
//! system of Ex. 4.2.
//!
//! Run with `cargo run --release --example mutual_recursion`.

use chora::bench_suite::mutual_suite;
use chora::core::{complexity, Analyzer};
use chora::expr::Symbol;

fn main() {
    // Ex. 4.1: P1 calls P2 eighteen times, P2 calls P1 twice.
    let program = mutual_suite::example_4_1();
    let result = Analyzer::new().analyze(&program);
    println!("== Ex. 4.1 (mutually recursive P1/P2) ==");
    for name in ["P1", "P2"] {
        let summary = result.summary(name).expect("summary");
        println!("procedure {name}: depth bound {:?}", summary.depth);
        match complexity::cost_bound(summary, &Symbol::new("g")) {
            Some(bound) => println!("  g' ≤ {bound}"),
            None => println!("  (no bound on g)"),
        }
        for fact in &summary.bound_facts {
            println!("    τ = {}   b(h) = {}", fact.term, fact.closed_form);
        }
    }

    // Ex. 4.2: P3 has no base case of its own.
    let program = mutual_suite::example_4_2();
    let result = Analyzer::new().analyze(&program);
    println!("\n== Ex. 4.2 (P3 has no base case) ==");
    for name in ["P3", "P4"] {
        let summary = result.summary(name).expect("summary");
        println!(
            "procedure {name}: {} bound facts, depth {:?}",
            summary.bound_facts.len(),
            summary.depth
        );
    }

    // differ (§4.3): the two-region example.
    let program = mutual_suite::differ();
    let result = Analyzer::new().analyze(&program);
    let summary = result.summary("differ").expect("summary");
    println!("\n== differ (§4.3) ==");
    println!("depth bound: {:?}", summary.depth);
    for fact in &summary.bound_facts {
        if let Some(bound) = &fact.bound {
            println!("  {} ≤ {}", fact.term, bound);
        }
    }
}
