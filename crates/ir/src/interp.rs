//! A concrete interpreter for the IR.
//!
//! The interpreter serves two purposes in the reproduction:
//!
//! 1. *differential testing* — integration tests run benchmark programs
//!    concretely and check that the bounds synthesized by the analysis indeed
//!    dominate the observed values;
//! 2. *experiment harness* — the Criterion benches report measured cost
//!    (e.g. the `cost`/`nTicks` counter) next to the closed-form bound so
//!    that EXPERIMENTS.md can show paper-vs-measured shapes.

use crate::ast::{CmpOp, Cond, Expr, Procedure, Program, Stmt};
use chora_expr::Symbol;
use std::collections::BTreeMap;

/// Outcome of executing a statement.
enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// A `return` was executed with the given value.
    Return(i128),
}

/// An execution error (assumption violation, missing procedure, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An `assume` evaluated to false (the execution is infeasible).
    AssumptionViolated,
    /// An `assert` evaluated to false.
    AssertionFailed(String),
    /// Call to an undefined procedure.
    UndefinedProcedure(String),
    /// Reference to an undefined variable.
    UndefinedVariable(String),
    /// The step budget was exhausted (guards against accidental divergence).
    OutOfFuel,
}

/// Result of a program execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// The value returned by the entry procedure (0 when it returns nothing).
    pub return_value: i128,
    /// Final values of the global variables.
    pub globals: BTreeMap<Symbol, i128>,
    /// Number of statements executed.
    pub steps: u64,
}

/// A concrete interpreter with a pluggable source of non-determinism.
pub struct Interpreter<'p> {
    program: &'p Program,
    /// Resolves `Cond::Nondet` branches.
    nondet_bool: Box<dyn FnMut() -> bool + 'p>,
    /// Resolves `Havoc` values.
    nondet_int: Box<dyn FnMut() -> i128 + 'p>,
    fuel: u64,
    steps: u64,
    globals: BTreeMap<Symbol, i128>,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with deterministic non-determinism (alternating
    /// booleans, zero integers) and a default fuel budget.
    pub fn new(program: &'p Program) -> Interpreter<'p> {
        let mut flip = false;
        Interpreter {
            program,
            nondet_bool: Box::new(move || {
                flip = !flip;
                flip
            }),
            nondet_int: Box::new(|| 0),
            fuel: 50_000_000,
            steps: 0,
            globals: program.globals.iter().map(|g| (*g, 0)).collect(),
        }
    }

    /// Overrides the boolean non-determinism policy.
    pub fn with_nondet_bool(mut self, f: impl FnMut() -> bool + 'p) -> Interpreter<'p> {
        self.nondet_bool = Box::new(f);
        self
    }

    /// Overrides the integer non-determinism policy (used by `Havoc`).
    pub fn with_nondet_int(mut self, f: impl FnMut() -> i128 + 'p) -> Interpreter<'p> {
        self.nondet_int = Box::new(f);
        self
    }

    /// Sets the execution fuel (number of statements before `OutOfFuel`).
    pub fn with_fuel(mut self, fuel: u64) -> Interpreter<'p> {
        self.fuel = fuel;
        self
    }

    /// Sets the initial value of a global variable.
    pub fn with_global(mut self, name: &str, value: i128) -> Interpreter<'p> {
        self.globals.insert(Symbol::new(name), value);
        self
    }

    /// Runs the given procedure with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on assumption/assertion violation, undefined
    /// procedures or variables, or fuel exhaustion.
    pub fn run(&mut self, entry: &str, args: &[i128]) -> Result<ExecResult, ExecError> {
        let ret = self.call(entry, args)?;
        Ok(ExecResult {
            return_value: ret,
            globals: self.globals.clone(),
            steps: self.steps,
        })
    }

    fn call(&mut self, name: &str, args: &[i128]) -> Result<i128, ExecError> {
        let proc: &Procedure = self
            .program
            .procedure(name)
            .ok_or_else(|| ExecError::UndefinedProcedure(name.to_string()))?;
        let mut locals: BTreeMap<Symbol, i128> = BTreeMap::new();
        for (i, p) in proc.params.iter().enumerate() {
            locals.insert(*p, args.get(i).copied().unwrap_or(0));
        }
        for l in &proc.locals {
            locals.entry(*l).or_insert(0);
        }
        let body = proc.body.clone();
        match self.exec(&body, &mut locals)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(0),
        }
    }

    fn read(&self, locals: &BTreeMap<Symbol, i128>, s: &Symbol) -> Result<i128, ExecError> {
        if let Some(v) = locals.get(s) {
            return Ok(*v);
        }
        if let Some(v) = self.globals.get(s) {
            return Ok(*v);
        }
        Err(ExecError::UndefinedVariable(s.to_string()))
    }

    fn write(&mut self, locals: &mut BTreeMap<Symbol, i128>, s: &Symbol, v: i128) {
        if locals.contains_key(s) {
            locals.insert(*s, v);
        } else if self.globals.contains_key(s) {
            self.globals.insert(*s, v);
        } else {
            // Implicitly declared local (convenient for temporaries).
            locals.insert(*s, v);
        }
    }

    fn eval(&self, e: &Expr, locals: &BTreeMap<Symbol, i128>) -> Result<i128, ExecError> {
        Ok(match e {
            Expr::Const(v) => *v as i128,
            Expr::Var(s) => self.read(locals, s)?,
            Expr::Add(a, b) => self.eval(a, locals)? + self.eval(b, locals)?,
            Expr::Sub(a, b) => self.eval(a, locals)? - self.eval(b, locals)?,
            Expr::Mul(a, b) => self.eval(a, locals)? * self.eval(b, locals)?,
            Expr::DivConst(a, c) => self.eval(a, locals)?.div_euclid(*c as i128),
        })
    }

    fn eval_cond(&mut self, c: &Cond, locals: &BTreeMap<Symbol, i128>) -> Result<bool, ExecError> {
        Ok(match c {
            Cond::Cmp(a, op, b) => {
                let av = self.eval(a, locals)?;
                let bv = self.eval(b, locals)?;
                match op {
                    CmpOp::Eq => av == bv,
                    CmpOp::Ne => av != bv,
                    CmpOp::Lt => av < bv,
                    CmpOp::Le => av <= bv,
                    CmpOp::Gt => av > bv,
                    CmpOp::Ge => av >= bv,
                }
            }
            Cond::And(a, b) => self.eval_cond(a, locals)? && self.eval_cond(b, locals)?,
            Cond::Or(a, b) => self.eval_cond(a, locals)? || self.eval_cond(b, locals)?,
            Cond::Not(a) => !self.eval_cond(a, locals)?,
            Cond::Nondet => (self.nondet_bool)(),
        })
    }

    fn exec(&mut self, s: &Stmt, locals: &mut BTreeMap<Symbol, i128>) -> Result<Flow, ExecError> {
        if self.steps >= self.fuel {
            return Err(ExecError::OutOfFuel);
        }
        self.steps += 1;
        match s {
            Stmt::Skip => Ok(Flow::Normal),
            Stmt::Assign(v, e) => {
                let val = self.eval(e, locals)?;
                self.write(locals, v, val);
                Ok(Flow::Normal)
            }
            Stmt::Havoc(v) => {
                let val = (self.nondet_int)();
                self.write(locals, v, val);
                Ok(Flow::Normal)
            }
            Stmt::Assume(c) => {
                if self.eval_cond(c, locals)? {
                    Ok(Flow::Normal)
                } else {
                    Err(ExecError::AssumptionViolated)
                }
            }
            Stmt::Assert(c, label) => {
                if self.eval_cond(c, locals)? {
                    Ok(Flow::Normal)
                } else {
                    Err(ExecError::AssertionFailed(label.clone()))
                }
            }
            Stmt::Seq(ss) => {
                for st in ss {
                    if let Flow::Return(v) = self.exec(st, locals)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If(c, then, els) => {
                if self.eval_cond(c, locals)? {
                    self.exec(then, locals)
                } else {
                    self.exec(els, locals)
                }
            }
            Stmt::While(c, body) => {
                while self.eval_cond(c, locals)? {
                    if self.steps >= self.fuel {
                        return Err(ExecError::OutOfFuel);
                    }
                    if let Flow::Return(v) = self.exec(body, locals)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Call { callee, args, ret } => {
                let arg_vals: Result<Vec<i128>, ExecError> =
                    args.iter().map(|a| self.eval(a, locals)).collect();
                let value = self.call(callee, &arg_vals?)?;
                if let Some(r) = ret {
                    self.write(locals, r, value);
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(expr) => self.eval(expr, locals)?,
                    None => 0,
                };
                Ok(Flow::Return(v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Cond, Expr, Procedure, Program, Stmt};

    /// hanoi(n) cost-model: cost++ per call, two recursive calls.
    fn hanoi_program() -> Program {
        let mut prog = Program::new();
        prog.add_global("cost");
        let body = Stmt::seq(vec![
            Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
            Stmt::if_then(
                Cond::gt(Expr::var("n"), Expr::int(0)),
                Stmt::seq(vec![
                    Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                    Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                ]),
            ),
            Stmt::Return(None),
        ]);
        prog.add_procedure(Procedure::new("hanoi", &["n"], &[], body));
        prog
    }

    #[test]
    fn hanoi_cost_is_exponential() {
        let prog = hanoi_program();
        for n in 0..10i128 {
            let mut interp = Interpreter::new(&prog);
            let result = interp.run("hanoi", &[n]).unwrap();
            assert_eq!(result.globals[&Symbol::new("cost")], (1 << (n + 1)) - 1);
        }
    }

    #[test]
    fn loops_and_returns() {
        let mut prog = Program::new();
        let body = Stmt::seq(vec![
            Stmt::assign("s", Expr::int(0)),
            Stmt::assign("i", Expr::int(0)),
            Stmt::while_loop(
                Cond::lt(Expr::var("i"), Expr::var("n")),
                Stmt::seq(vec![
                    Stmt::assign("s", Expr::var("s").add(Expr::var("i"))),
                    Stmt::assign("i", Expr::var("i").add(Expr::int(1))),
                ]),
            ),
            Stmt::Return(Some(Expr::var("s"))),
        ]);
        prog.add_procedure(Procedure::new("sum", &["n"], &["s", "i"], body));
        let mut interp = Interpreter::new(&prog);
        assert_eq!(interp.run("sum", &[10]).unwrap().return_value, 45);
    }

    #[test]
    fn assumptions_and_assertions() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "check",
            &["x"],
            &[],
            Stmt::seq(vec![
                Stmt::Assume(Cond::ge(Expr::var("x"), Expr::int(0))),
                Stmt::Assert(
                    Cond::ge(Expr::var("x"), Expr::int(1)),
                    "x-positive".to_string(),
                ),
                Stmt::Return(Some(Expr::var("x"))),
            ]),
        ));
        let mut i1 = Interpreter::new(&prog);
        assert_eq!(i1.run("check", &[2]).unwrap().return_value, 2);
        let mut i2 = Interpreter::new(&prog);
        assert_eq!(i2.run("check", &[-1]), Err(ExecError::AssumptionViolated));
        let mut i3 = Interpreter::new(&prog);
        assert_eq!(
            i3.run("check", &[0]),
            Err(ExecError::AssertionFailed("x-positive".to_string()))
        );
    }

    #[test]
    fn nondet_policies() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "pick",
            &[],
            &["x"],
            Stmt::seq(vec![
                Stmt::if_else(
                    Cond::Nondet,
                    Stmt::assign("x", Expr::int(1)),
                    Stmt::assign("x", Expr::int(2)),
                ),
                Stmt::Return(Some(Expr::var("x"))),
            ]),
        ));
        let mut always_true = Interpreter::new(&prog).with_nondet_bool(|| true);
        assert_eq!(always_true.run("pick", &[]).unwrap().return_value, 1);
        let mut always_false = Interpreter::new(&prog).with_nondet_bool(|| false);
        assert_eq!(always_false.run("pick", &[]).unwrap().return_value, 2);
    }

    #[test]
    fn fuel_guards_against_divergence() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "loop_forever",
            &[],
            &[],
            Stmt::while_loop(Cond::ge(Expr::int(0), Expr::int(0)), Stmt::Skip),
        ));
        let mut interp = Interpreter::new(&prog).with_fuel(1000);
        assert_eq!(interp.run("loop_forever", &[]), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn floor_division_semantics() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "half",
            &["n"],
            &[],
            Stmt::Return(Some(Expr::var("n").div(2))),
        ));
        let mut interp = Interpreter::new(&prog);
        assert_eq!(interp.run("half", &[7]).unwrap().return_value, 3);
        let mut interp2 = Interpreter::new(&prog);
        assert_eq!(interp2.run("half", &[-7]).unwrap().return_value, -4);
    }
}
