//! Abstract syntax of the integer imperative language analysed by CHORA.
//!
//! The language covers the constructs exercised by the paper's benchmarks:
//! integer globals, procedures with value parameters and an integer return
//! value, assignments over polynomial expressions (plus floor division by a
//! constant), `if`/`while` with possibly non-deterministic conditions,
//! `assume`/`assert`, and (possibly non-linearly or mutually) recursive
//! calls.
//!
//! The original CHORA consumes C through duet's front end; this reproduction
//! constructs programs directly through [`ProgramBuilder`]-style constructors
//! (the benchmark suite in `chora-bench-suite` is the "front end").

use chora_expr::{Polynomial, Symbol};
use chora_numeric::BigRational;
use std::collections::BTreeSet;
use std::fmt;

/// Integer expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Variable reference (parameter, local, or global).
    Var(Symbol),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Floor division by a positive constant (used by divide-and-conquer
    /// size arguments such as `n / 2`).
    DivConst(Box<Expr>, i64),
}

// Builder methods deliberately shadow the operator-trait names: `Expr` is a
// plain AST, and `a.add(b)` reads as construction, not arithmetic.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience: variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Symbol::new(name))
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(v)
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self / c` (floor division by a positive constant).
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn div(self, c: i64) -> Expr {
        assert!(c > 0, "DivConst divisor must be positive");
        Expr::DivConst(Box::new(self), c)
    }

    /// The exact polynomial denoted by the expression, if it contains no
    /// floor division.
    pub fn as_polynomial(&self) -> Option<Polynomial> {
        match self {
            Expr::Const(v) => Some(Polynomial::constant(BigRational::from(*v))),
            Expr::Var(s) => Some(Polynomial::var(*s)),
            Expr::Add(a, b) => Some(&a.as_polynomial()? + &b.as_polynomial()?),
            Expr::Sub(a, b) => Some(&a.as_polynomial()? - &b.as_polynomial()?),
            Expr::Mul(a, b) => Some(&a.as_polynomial()? * &b.as_polynomial()?),
            Expr::DivConst(_, _) => None,
        }
    }

    /// Variables mentioned by the expression.
    pub fn variables(&self) -> BTreeSet<Symbol> {
        match self {
            Expr::Const(_) => BTreeSet::new(),
            Expr::Var(s) => [*s].into_iter().collect(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                let mut out = a.variables();
                out.extend(b.variables());
                out
            }
            Expr::DivConst(a, _) => a.variables(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(s) => write!(f, "{s}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::DivConst(a, c) => write!(f, "({a} / {c})"),
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Boolean conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Comparison of two integer expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
    /// Non-deterministic choice (`nondet()` / `*` in the paper's examples).
    Nondet,
}

impl Cond {
    /// `a op b`.
    pub fn cmp(a: Expr, op: CmpOp, b: Expr) -> Cond {
        Cond::Cmp(a, op, b)
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Le, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Lt, b)
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Ge, b)
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Gt, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Eq, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Cond {
        Cond::Cmp(a, CmpOp::Ne, b)
    }

    /// Conjunction.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    pub fn negate(self) -> Cond {
        Cond::Not(Box::new(self))
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// No-op.
    Skip,
    /// `var := expr`
    Assign(Symbol, Expr),
    /// `var := *` (non-deterministic value)
    Havoc(Symbol),
    /// `assume(cond)`
    Assume(Cond),
    /// `assert(cond)` with a label used in verification reports.
    Assert(Cond, String),
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `if (cond) { then } else { els }`
    If(Cond, Box<Stmt>, Box<Stmt>),
    /// `while (cond) { body }`
    While(Cond, Box<Stmt>),
    /// `ret := callee(args)` (or a call ignoring the return value).
    Call {
        /// Callee procedure name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Variable receiving the return value, if any.
        ret: Option<Symbol>,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
}

impl Stmt {
    /// Sequential composition of a list of statements.
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        Stmt::Seq(stmts)
    }

    /// `if (cond) { then } else { skip }`
    pub fn if_then(cond: Cond, then: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then), Box::new(Stmt::Skip))
    }

    /// `if (cond) { then } else { els }`
    pub fn if_else(cond: Cond, then: Stmt, els: Stmt) -> Stmt {
        Stmt::If(cond, Box::new(then), Box::new(els))
    }

    /// `while (cond) { body }`
    pub fn while_loop(cond: Cond, body: Stmt) -> Stmt {
        Stmt::While(cond, Box::new(body))
    }

    /// `var := expr`
    pub fn assign(name: &str, e: Expr) -> Stmt {
        Stmt::Assign(Symbol::new(name), e)
    }

    /// `ret := callee(args)`
    pub fn call_assign(ret: &str, callee: &str, args: Vec<Expr>) -> Stmt {
        Stmt::Call {
            callee: callee.to_string(),
            args,
            ret: Some(Symbol::new(ret)),
        }
    }

    /// `callee(args);`
    pub fn call(callee: &str, args: Vec<Expr>) -> Stmt {
        Stmt::Call {
            callee: callee.to_string(),
            args,
            ret: None,
        }
    }

    /// Names of procedures called (transitively over the statement tree).
    pub fn callees(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| {
            if let Stmt::Call { callee, .. } = s {
                out.insert(callee.clone());
            }
        });
        out
    }

    /// Visits every statement in the tree (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Seq(ss) => {
                for s in ss {
                    s.visit(f);
                }
            }
            Stmt::If(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Stmt::While(_, b) => b.visit(f),
            _ => {}
        }
    }

    /// All variables assigned (including havocked and call returns).
    pub fn assigned_variables(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.visit(&mut |s| match s {
            Stmt::Assign(v, _) | Stmt::Havoc(v) => {
                out.insert(*v);
            }
            Stmt::Call { ret: Some(v), .. } => {
                out.insert(*v);
            }
            _ => {}
        });
        out
    }
}

/// A procedure definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Value parameters.
    pub params: Vec<Symbol>,
    /// Local variables (in addition to parameters).
    pub locals: Vec<Symbol>,
    /// Body.
    pub body: Stmt,
}

impl Procedure {
    /// Creates a procedure.
    pub fn new(name: &str, params: &[&str], locals: &[&str], body: Stmt) -> Procedure {
        Procedure {
            name: name.to_string(),
            params: params.iter().map(|p| Symbol::new(p)).collect(),
            locals: locals.iter().map(|l| Symbol::new(l)).collect(),
            body,
        }
    }

    /// Names of procedures this procedure calls.
    pub fn callees(&self) -> BTreeSet<String> {
        self.body.callees()
    }
}

/// A whole program: global variables plus procedures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Global integer variables.
    pub globals: Vec<Symbol>,
    /// Procedure definitions.
    pub procedures: Vec<Procedure>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a global variable.
    pub fn add_global(&mut self, name: &str) -> &mut Self {
        self.globals.push(Symbol::new(name));
        self
    }

    /// Adds a procedure.
    pub fn add_procedure(&mut self, p: Procedure) -> &mut Self {
        self.procedures.push(p);
        self
    }

    /// Looks up a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// The names of all procedures, in definition order.
    pub fn procedure_names(&self) -> Vec<String> {
        self.procedures.iter().map(|p| p.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_polynomial_conversion() {
        let e = Expr::var("x").mul(Expr::var("x")).add(Expr::int(1));
        let p = e.as_polynomial().unwrap();
        assert_eq!(p.to_string(), "x^2 + 1");
        let d = Expr::var("n").div(2);
        assert!(d.as_polynomial().is_none());
        assert_eq!(d.variables().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn div_by_non_positive_rejected() {
        let _ = Expr::var("n").div(0);
    }

    #[test]
    fn callees_and_assigned() {
        let body = Stmt::seq(vec![
            Stmt::assign("x", Expr::int(0)),
            Stmt::if_then(
                Cond::Nondet,
                Stmt::call_assign("r", "helper", vec![Expr::var("x")]),
            ),
            Stmt::while_loop(
                Cond::lt(Expr::var("x"), Expr::int(3)),
                Stmt::call("tick", vec![]),
            ),
        ]);
        assert_eq!(
            body.callees(),
            ["helper".to_string(), "tick".to_string()]
                .into_iter()
                .collect()
        );
        let assigned = body.assigned_variables();
        assert!(assigned.contains(&Symbol::new("x")));
        assert!(assigned.contains(&Symbol::new("r")));
    }

    #[test]
    fn program_lookup() {
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new("main", &[], &[], Stmt::Skip));
        assert!(prog.procedure("main").is_some());
        assert!(prog.procedure("missing").is_none());
        assert_eq!(prog.procedure_names(), vec!["main".to_string()]);
    }

    #[test]
    fn display_expr() {
        let e = Expr::var("n").sub(Expr::int(1)).div(2);
        assert_eq!(e.to_string(), "((n - 1) / 2)");
    }
}
