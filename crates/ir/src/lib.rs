//! # chora-ir
//!
//! The program representation analysed by CHORA: an integer imperative
//! language with procedures, globals, loops, branches, non-determinism,
//! `assume`/`assert`, and arbitrary (non-linear, mutual) recursion — the
//! fragment exercised by the paper's benchmark suite.
//!
//! * [`Program`], [`Procedure`], [`Stmt`], [`Expr`], [`Cond`] — the AST,
//! * [`CallGraph`] — call-graph construction, SCCs, bottom-up analysis order,
//! * [`Interpreter`] — a concrete interpreter used for differential testing
//!   and for the measured columns of the experiment harness.
//!
//! ```
//! use chora_ir::{Cond, Expr, Interpreter, Procedure, Program, Stmt};
//!
//! let mut prog = Program::new();
//! prog.add_global("cost");
//! // fib-shaped cost model: cost++ ; two recursive calls
//! prog.add_procedure(Procedure::new(
//!     "fib",
//!     &["n"],
//!     &[],
//!     Stmt::seq(vec![
//!         Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
//!         Stmt::if_then(
//!             Cond::ge(Expr::var("n"), Expr::int(2)),
//!             Stmt::seq(vec![
//!                 Stmt::call("fib", vec![Expr::var("n").sub(Expr::int(1))]),
//!                 Stmt::call("fib", vec![Expr::var("n").sub(Expr::int(2))]),
//!             ]),
//!         ),
//!     ]),
//! ));
//! let mut interp = Interpreter::new(&prog);
//! let out = interp.run("fib", &[10]).unwrap();
//! assert!(out.globals[&chora_expr::Symbol::new("cost")] > 0);
//! ```

mod ast;
mod callgraph;
pub mod fingerprint;
mod interp;

pub use ast::{CmpOp, Cond, Expr, Procedure, Program, Stmt};
pub use callgraph::{CallGraph, Component};
pub use fingerprint::{
    level_keys, procedure_fingerprint, procedure_keys, Fingerprint, FingerprintBuilder,
};
pub use interp::{ExecError, ExecResult, Interpreter};
