//! Call graphs, strongly connected components, and the bottom-up analysis
//! order used by CHORA (§4: "collapse the strongly connected components of
//! the call graph ... and topologically sort the collapsed graph").

use crate::ast::Program;
use std::collections::{BTreeMap, BTreeSet};

/// The call graph of a program.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// procedure name -> set of callee names (only those defined in the program)
    edges: BTreeMap<String, BTreeSet<String>>,
}

/// One strongly connected component of the call graph, in analysis order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Procedure names in the component.
    pub members: Vec<String>,
    /// Whether the component is recursive (more than one member, or a single
    /// member that calls itself).
    pub recursive: bool,
}

impl CallGraph {
    /// Builds the call graph of a program (calls to undefined procedures are
    /// ignored).
    pub fn build(program: &Program) -> CallGraph {
        let defined: BTreeSet<String> = program.procedure_names().into_iter().collect();
        let mut edges = BTreeMap::new();
        for p in &program.procedures {
            let callees: BTreeSet<String> = p
                .callees()
                .into_iter()
                .filter(|c| defined.contains(c))
                .collect();
            edges.insert(p.name.clone(), callees);
        }
        CallGraph { edges }
    }

    /// Direct callees of a procedure.
    pub fn callees(&self, name: &str) -> BTreeSet<String> {
        self.edges.get(name).cloned().unwrap_or_default()
    }

    /// Whether `caller` (possibly transitively) calls `callee`.
    pub fn calls_transitively(&self, caller: &str, callee: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![caller.to_string()];
        while let Some(p) = stack.pop() {
            if !seen.insert(p.clone()) {
                continue;
            }
            for c in self.callees(&p) {
                if c == callee {
                    return true;
                }
                stack.push(c);
            }
        }
        false
    }

    /// Strongly connected components in bottom-up (reverse topological)
    /// order: every callee component precedes its callers.
    pub fn components_bottom_up(&self) -> Vec<Component> {
        // Map names to indices and reuse the generic SCC routine.
        let names: Vec<String> = self.edges.keys().cloned().collect();
        let index_of: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let nodes: Vec<usize> = (0..names.len()).collect();
        let deps: BTreeMap<usize, BTreeSet<usize>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let callees = self.edges[n]
                    .iter()
                    .filter_map(|c| index_of.get(c.as_str()).copied())
                    .collect();
                (i, callees)
            })
            .collect();
        let sccs = chora_recurrence_scc(&nodes, &deps);
        sccs.into_iter()
            .map(|scc| {
                let members: Vec<String> = scc.iter().map(|&i| names[i].clone()).collect();
                let recursive =
                    members.len() > 1 || members.iter().any(|m| self.callees(m).contains(m));
                Component { members, recursive }
            })
            .collect()
    }

    /// Strongly connected components grouped into topological *levels*:
    /// every component in level `L` only calls components in levels `< L`.
    /// Components within one level are mutually independent and can be
    /// summarized concurrently; iterating levels in order is a valid
    /// bottom-up analysis schedule (every callee component is visited
    /// before its callers).
    ///
    /// Within each level, components keep their relative
    /// [`CallGraph::components_bottom_up`] order, making the level
    /// decomposition — and hence any scope numbering derived from it —
    /// deterministic.  The *flattened* sequence is generally not identical
    /// to `components_bottom_up()` (a call-free component may be pulled
    /// down to level 0 past earlier-listed dependent chains); it is only
    /// guaranteed to be *some* valid bottom-up order.
    pub fn component_levels(&self) -> Vec<Vec<Component>> {
        let comps = self.components_bottom_up();
        // Procedure -> index of its component.
        let comp_of: BTreeMap<&str, usize> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.members.iter().map(move |m| (m.as_str(), i)))
            .collect();
        // Bottom-up order guarantees callees come first, so one pass suffices.
        let mut level_of: Vec<usize> = vec![0; comps.len()];
        for (i, comp) in comps.iter().enumerate() {
            let mut level = 0;
            for member in &comp.members {
                for callee in self.callees(member) {
                    let Some(&j) = comp_of.get(callee.as_str()) else {
                        continue;
                    };
                    if j != i {
                        level = level.max(level_of[j] + 1);
                    }
                }
            }
            level_of[i] = level;
        }
        let depth = level_of.iter().max().map_or(0, |m| m + 1);
        let mut levels: Vec<Vec<Component>> = vec![Vec::new(); depth];
        for (comp, &level) in comps.into_iter().zip(level_of.iter()) {
            levels[level].push(comp);
        }
        levels
    }
}

// A small local SCC (Tarjan) so this crate does not depend on the recurrence
// crate; identical in spirit to the solver's helper.
fn chora_recurrence_scc(
    nodes: &[usize],
    deps: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<Vec<usize>> {
    struct State<'a> {
        deps: &'a BTreeMap<usize, BTreeSet<usize>>,
        index: BTreeMap<usize, usize>,
        lowlink: BTreeMap<usize, usize>,
        on_stack: BTreeSet<usize>,
        stack: Vec<usize>,
        counter: usize,
        output: Vec<Vec<usize>>,
    }
    fn visit(v: usize, st: &mut State<'_>) {
        st.index.insert(v, st.counter);
        st.lowlink.insert(v, st.counter);
        st.counter += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        let successors: Vec<usize> = st
            .deps
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for w in successors {
            if !st.index.contains_key(&w) {
                visit(w, st);
                let low = st.lowlink[&v].min(st.lowlink[&w]);
                st.lowlink.insert(v, low);
            } else if st.on_stack.contains(&w) {
                let low = st.lowlink[&v].min(st.index[&w]);
                st.lowlink.insert(v, low);
            }
        }
        if st.lowlink[&v] == st.index[&v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.output.push(comp);
        }
    }
    let mut st = State {
        deps,
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        counter: 0,
        output: Vec::new(),
    };
    for &v in nodes {
        if !st.index.contains_key(&v) {
            visit(v, &mut st);
        }
    }
    st.output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Procedure, Stmt};

    fn program_with_calls(spec: &[(&str, &[&str])]) -> Program {
        let mut prog = Program::new();
        for (name, callees) in spec {
            let body = Stmt::seq(
                callees
                    .iter()
                    .map(|c| Stmt::call(c, vec![Expr::int(0)]))
                    .collect(),
            );
            prog.add_procedure(Procedure::new(name, &["n"], &[], body));
        }
        prog
    }

    #[test]
    fn simple_chain_is_bottom_up() {
        let prog = program_with_calls(&[("main", &["mid"]), ("mid", &["leaf"]), ("leaf", &[])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        let order: Vec<&str> = comps.iter().map(|c| c.members[0].as_str()).collect();
        assert_eq!(order, vec!["leaf", "mid", "main"]);
        assert!(comps.iter().all(|c| !c.recursive));
    }

    #[test]
    fn self_recursion_detected() {
        let prog = program_with_calls(&[("fib", &["fib"]), ("main", &["fib"])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        assert_eq!(comps[0].members, vec!["fib".to_string()]);
        assert!(comps[0].recursive);
        assert!(!comps[1].recursive);
        assert!(cg.calls_transitively("main", "fib"));
        assert!(!cg.calls_transitively("fib", "main"));
    }

    #[test]
    fn mutual_recursion_grouped() {
        let prog = program_with_calls(&[("p1", &["p2"]), ("p2", &["p1"]), ("main", &["p1"])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        assert_eq!(comps[0].members, vec!["p1".to_string(), "p2".to_string()]);
        assert!(comps[0].recursive);
        assert_eq!(comps[1].members, vec!["main".to_string()]);
    }

    #[test]
    fn levels_group_independent_components() {
        // main -> {a, b}; a -> leaf; b -> leaf.  Levels: [leaf], [a, b], [main].
        let prog = program_with_calls(&[
            ("main", &["a", "b"]),
            ("a", &["leaf"]),
            ("b", &["leaf"]),
            ("leaf", &[]),
        ]);
        let cg = CallGraph::build(&prog);
        let levels = cg.component_levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].len(), 1);
        assert_eq!(levels[0][0].members, vec!["leaf".to_string()]);
        let mid: Vec<&str> = levels[1].iter().map(|c| c.members[0].as_str()).collect();
        assert_eq!(mid, vec!["a", "b"]);
        assert_eq!(levels[2][0].members, vec!["main".to_string()]);
        // The flattened level order is a valid bottom-up schedule: every
        // callee appears before its callers.
        let flat: Vec<String> = levels
            .iter()
            .flat_map(|l| l.iter().map(|c| c.members[0].clone()))
            .collect();
        for (i, name) in flat.iter().enumerate() {
            for callee in cg.callees(name) {
                let callee_pos = flat.iter().position(|n| n == &callee).unwrap();
                assert!(callee_pos < i, "{callee} must precede {name}");
            }
        }
    }

    #[test]
    fn levels_pull_call_free_components_to_level_zero() {
        // `b` has no callees, so it lands in level 0 even though the
        // bottom-up enumeration lists it after the leaf/a chain.
        let prog = program_with_calls(&[
            ("main", &["a", "b"]),
            ("a", &["leaf"]),
            ("b", &[]),
            ("leaf", &[]),
        ]);
        let cg = CallGraph::build(&prog);
        let levels = cg.component_levels();
        assert_eq!(levels.len(), 3);
        // Within a level, components keep their relative bottom-up order
        // (`leaf` is enumerated before `b` by the Tarjan pass).
        let ground: Vec<&str> = levels[0].iter().map(|c| c.members[0].as_str()).collect();
        assert_eq!(ground, vec!["leaf", "b"]);
        assert_eq!(levels[1][0].members, vec!["a".to_string()]);
        assert_eq!(levels[2][0].members, vec!["main".to_string()]);
    }

    #[test]
    fn levels_keep_mutual_recursion_together() {
        let prog = program_with_calls(&[("p1", &["p2"]), ("p2", &["p1"]), ("main", &["p1"])]);
        let cg = CallGraph::build(&prog);
        let levels = cg.component_levels();
        assert_eq!(levels.len(), 2);
        assert_eq!(
            levels[0][0].members,
            vec!["p1".to_string(), "p2".to_string()]
        );
        assert!(levels[0][0].recursive);
    }

    #[test]
    fn undefined_callees_ignored() {
        let prog = program_with_calls(&[("main", &["undefined_external"])]);
        let cg = CallGraph::build(&prog);
        assert!(cg.callees("main").is_empty());
    }
}
