//! Call graphs, strongly connected components, and the bottom-up analysis
//! order used by CHORA (§4: "collapse the strongly connected components of
//! the call graph ... and topologically sort the collapsed graph").

use crate::ast::Program;
use std::collections::{BTreeMap, BTreeSet};

/// The call graph of a program.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// procedure name -> set of callee names (only those defined in the program)
    edges: BTreeMap<String, BTreeSet<String>>,
}

/// One strongly connected component of the call graph, in analysis order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Procedure names in the component.
    pub members: Vec<String>,
    /// Whether the component is recursive (more than one member, or a single
    /// member that calls itself).
    pub recursive: bool,
}

impl CallGraph {
    /// Builds the call graph of a program (calls to undefined procedures are
    /// ignored).
    pub fn build(program: &Program) -> CallGraph {
        let defined: BTreeSet<String> = program.procedure_names().into_iter().collect();
        let mut edges = BTreeMap::new();
        for p in &program.procedures {
            let callees: BTreeSet<String> = p
                .callees()
                .into_iter()
                .filter(|c| defined.contains(c))
                .collect();
            edges.insert(p.name.clone(), callees);
        }
        CallGraph { edges }
    }

    /// Direct callees of a procedure.
    pub fn callees(&self, name: &str) -> BTreeSet<String> {
        self.edges.get(name).cloned().unwrap_or_default()
    }

    /// Whether `caller` (possibly transitively) calls `callee`.
    pub fn calls_transitively(&self, caller: &str, callee: &str) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![caller.to_string()];
        while let Some(p) = stack.pop() {
            if !seen.insert(p.clone()) {
                continue;
            }
            for c in self.callees(&p) {
                if c == callee {
                    return true;
                }
                stack.push(c);
            }
        }
        false
    }

    /// Strongly connected components in bottom-up (reverse topological)
    /// order: every callee component precedes its callers.
    pub fn components_bottom_up(&self) -> Vec<Component> {
        // Map names to indices and reuse the generic SCC routine.
        let names: Vec<String> = self.edges.keys().cloned().collect();
        let index_of: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let nodes: Vec<usize> = (0..names.len()).collect();
        let deps: BTreeMap<usize, BTreeSet<usize>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let callees = self.edges[n]
                    .iter()
                    .filter_map(|c| index_of.get(c.as_str()).copied())
                    .collect();
                (i, callees)
            })
            .collect();
        let sccs = chora_recurrence_scc(&nodes, &deps);
        sccs.into_iter()
            .map(|scc| {
                let members: Vec<String> = scc.iter().map(|&i| names[i].clone()).collect();
                let recursive =
                    members.len() > 1 || members.iter().any(|m| self.callees(m).contains(m));
                Component { members, recursive }
            })
            .collect()
    }
}

// A small local SCC (Tarjan) so this crate does not depend on the recurrence
// crate; identical in spirit to the solver's helper.
fn chora_recurrence_scc(
    nodes: &[usize],
    deps: &BTreeMap<usize, BTreeSet<usize>>,
) -> Vec<Vec<usize>> {
    struct State<'a> {
        deps: &'a BTreeMap<usize, BTreeSet<usize>>,
        index: BTreeMap<usize, usize>,
        lowlink: BTreeMap<usize, usize>,
        on_stack: BTreeSet<usize>,
        stack: Vec<usize>,
        counter: usize,
        output: Vec<Vec<usize>>,
    }
    fn visit(v: usize, st: &mut State<'_>) {
        st.index.insert(v, st.counter);
        st.lowlink.insert(v, st.counter);
        st.counter += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        let successors: Vec<usize> = st
            .deps
            .get(&v)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for w in successors {
            if !st.index.contains_key(&w) {
                visit(w, st);
                let low = st.lowlink[&v].min(st.lowlink[&w]);
                st.lowlink.insert(v, low);
            } else if st.on_stack.contains(&w) {
                let low = st.lowlink[&v].min(st.index[&w]);
                st.lowlink.insert(v, low);
            }
        }
        if st.lowlink[&v] == st.index[&v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(&w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.output.push(comp);
        }
    }
    let mut st = State {
        deps,
        index: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        counter: 0,
        output: Vec::new(),
    };
    for &v in nodes {
        if !st.index.contains_key(&v) {
            visit(v, &mut st);
        }
    }
    st.output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Procedure, Stmt};

    fn program_with_calls(spec: &[(&str, &[&str])]) -> Program {
        let mut prog = Program::new();
        for (name, callees) in spec {
            let body = Stmt::seq(
                callees
                    .iter()
                    .map(|c| Stmt::call(c, vec![Expr::int(0)]))
                    .collect(),
            );
            prog.add_procedure(Procedure::new(name, &["n"], &[], body));
        }
        prog
    }

    #[test]
    fn simple_chain_is_bottom_up() {
        let prog = program_with_calls(&[("main", &["mid"]), ("mid", &["leaf"]), ("leaf", &[])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        let order: Vec<&str> = comps.iter().map(|c| c.members[0].as_str()).collect();
        assert_eq!(order, vec!["leaf", "mid", "main"]);
        assert!(comps.iter().all(|c| !c.recursive));
    }

    #[test]
    fn self_recursion_detected() {
        let prog = program_with_calls(&[("fib", &["fib"]), ("main", &["fib"])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        assert_eq!(comps[0].members, vec!["fib".to_string()]);
        assert!(comps[0].recursive);
        assert!(!comps[1].recursive);
        assert!(cg.calls_transitively("main", "fib"));
        assert!(!cg.calls_transitively("fib", "main"));
    }

    #[test]
    fn mutual_recursion_grouped() {
        let prog = program_with_calls(&[("p1", &["p2"]), ("p2", &["p1"]), ("main", &["p1"])]);
        let cg = CallGraph::build(&prog);
        let comps = cg.components_bottom_up();
        assert_eq!(comps[0].members, vec!["p1".to_string(), "p2".to_string()]);
        assert!(comps[0].recursive);
        assert_eq!(comps[1].members, vec!["main".to_string()]);
    }

    #[test]
    fn undefined_callees_ignored() {
        let prog = program_with_calls(&[("main", &["undefined_external"])]);
        let cg = CallGraph::build(&prog);
        assert!(cg.callees("main").is_empty());
    }
}
