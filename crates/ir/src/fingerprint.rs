//! Content-addressed structural fingerprints of procedures and call-graph
//! components.
//!
//! A summary computed by the bottom-up driver depends on exactly three
//! things: the procedure's own body, the summaries of its callees, and the
//! analysis configuration.  This module turns that dependency cone into a
//! stable 128-bit key:
//!
//! * [`procedure_fingerprint`] hashes one [`Procedure`] *structurally* — a
//!   tagged pre-order walk of the AST in which named symbols are resolved
//!   through their interned **names** (never their interner indices, which
//!   depend on process history) and fresh/scratch/dimension symbols are
//!   numbered by first occurrence, so the hash is alpha-invariant in them;
//! * [`level_keys`] lifts the per-procedure hashes to transitive component
//!   keys over the call graph's SCC levels:
//!   `K(C) = H(salt ‖ member hashes ‖ sorted callee keys)` —
//!   one key identifies a component *and its entire callee cone*, and
//!   nothing else: in particular it is independent of where the component
//!   sits in the bottom-up schedule, so inserting or reordering unrelated
//!   procedures never changes the key of an unchanged cone.  (Restored
//!   summaries are made bit-compatible with a cold run by rescoping their
//!   fresh symbols on load — see `chora_core::cache`.);
//! * [`procedure_keys`] exposes the same information keyed by procedure
//!   name, which is what tests and tooling want.
//!
//! The hash is a hand-rolled 128-bit FNV-1a (the build environment is
//! offline; no external hashing crates), which is stable across platforms,
//! processes, and releases of the standard library.

use crate::ast::{Cond, Expr, Procedure, Program, Stmt};
use crate::callgraph::{CallGraph, Component};
use chora_expr::{Symbol, SymbolKind};
use std::collections::BTreeMap;
use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A stable 128-bit content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The canonical lower-case hex rendering (32 digits).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the rendering produced by [`Fingerprint::to_hex`].
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// An incremental FNV-1a-128 writer with length-prefixed framing (so that
/// `("ab", "c")` and `("a", "bc")` hash differently).
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    state: u128,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

impl FingerprintBuilder {
    /// A builder seeded with the FNV offset basis.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes (no framing).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a one-byte structural tag.
    pub fn write_tag(&mut self, tag: u8) -> &mut Self {
        self.write_bytes(&[tag])
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a boolean.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_tag(u8::from(v))
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Absorbs a finished fingerprint.
    pub fn write_fingerprint(&mut self, fp: Fingerprint) -> &mut Self {
        self.write_bytes(&fp.0.to_le_bytes())
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// The structural walk: hashes symbols through resolved names and numbers
/// anonymous (fresh/dimension/scratch) symbols by first occurrence.
struct StructuralHasher {
    out: FingerprintBuilder,
    /// De-Bruijn-style numbering of anonymous symbols: the hash of two
    /// procedures that differ only in a variable-order-preserving renaming
    /// of their fresh/scratch symbols is identical.
    anon: BTreeMap<Symbol, u64>,
}

impl StructuralHasher {
    fn new() -> StructuralHasher {
        StructuralHasher {
            out: FingerprintBuilder::new(),
            anon: BTreeMap::new(),
        }
    }

    fn symbol(&mut self, s: &Symbol) {
        match s.kind() {
            SymbolKind::Named => {
                self.out.write_tag(0x01).write_str(&s.to_string());
            }
            SymbolKind::Post => {
                self.out
                    .write_tag(0x02)
                    .write_str(&s.unprimed().to_string());
            }
            SymbolKind::BoundAtH(k) => {
                self.out.write_tag(0x03).write_u64(k as u64);
            }
            SymbolKind::BoundAtH1(k) => {
                self.out.write_tag(0x04).write_u64(k as u64);
            }
            SymbolKind::Height => {
                self.out.write_tag(0x05);
            }
            SymbolKind::Depth => {
                self.out.write_tag(0x06);
            }
            // Anonymous kinds: alpha-invariant first-occurrence numbering.
            SymbolKind::Fresh { .. } | SymbolKind::Dimension(_) | SymbolKind::Scratch(_) => {
                let next = self.anon.len() as u64;
                let id = *self.anon.entry(*s).or_insert(next);
                self.out.write_tag(0x07).write_u64(id);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(v) => {
                self.out.write_tag(0x10).write_i64(*v);
            }
            Expr::Var(s) => {
                self.out.write_tag(0x11);
                self.symbol(s);
            }
            Expr::Add(a, b) => {
                self.out.write_tag(0x12);
                self.expr(a);
                self.expr(b);
            }
            Expr::Sub(a, b) => {
                self.out.write_tag(0x13);
                self.expr(a);
                self.expr(b);
            }
            Expr::Mul(a, b) => {
                self.out.write_tag(0x14);
                self.expr(a);
                self.expr(b);
            }
            Expr::DivConst(a, c) => {
                self.out.write_tag(0x15);
                self.expr(a);
                self.out.write_i64(*c);
            }
        }
    }

    fn cond(&mut self, c: &Cond) {
        match c {
            Cond::Cmp(a, op, b) => {
                self.out.write_tag(0x20).write_tag(*op as u8);
                self.expr(a);
                self.expr(b);
            }
            Cond::And(a, b) => {
                self.out.write_tag(0x21);
                self.cond(a);
                self.cond(b);
            }
            Cond::Or(a, b) => {
                self.out.write_tag(0x22);
                self.cond(a);
                self.cond(b);
            }
            Cond::Not(a) => {
                self.out.write_tag(0x23);
                self.cond(a);
            }
            Cond::Nondet => {
                self.out.write_tag(0x24);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Skip => {
                self.out.write_tag(0x30);
            }
            Stmt::Assign(v, e) => {
                self.out.write_tag(0x31);
                self.symbol(v);
                self.expr(e);
            }
            Stmt::Havoc(v) => {
                self.out.write_tag(0x32);
                self.symbol(v);
            }
            Stmt::Assume(c) => {
                self.out.write_tag(0x33);
                self.cond(c);
            }
            Stmt::Assert(c, label) => {
                self.out.write_tag(0x34).write_str(label);
                self.cond(c);
            }
            Stmt::Seq(stmts) => {
                self.out.write_tag(0x35).write_u64(stmts.len() as u64);
                for s in stmts {
                    self.stmt(s);
                }
            }
            Stmt::If(c, a, b) => {
                self.out.write_tag(0x36);
                self.cond(c);
                self.stmt(a);
                self.stmt(b);
            }
            Stmt::While(c, b) => {
                self.out.write_tag(0x37);
                self.cond(c);
                self.stmt(b);
            }
            Stmt::Call { callee, args, ret } => {
                self.out.write_tag(0x38).write_str(callee);
                self.out.write_u64(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
                match ret {
                    Some(v) => {
                        self.out.write_tag(0x01);
                        self.symbol(v);
                    }
                    None => {
                        self.out.write_tag(0x00);
                    }
                }
            }
            Stmt::Return(e) => {
                self.out.write_tag(0x39);
                match e {
                    Some(e) => {
                        self.out.write_tag(0x01);
                        self.expr(e);
                    }
                    None => {
                        self.out.write_tag(0x00);
                    }
                }
            }
        }
    }
}

/// The structural fingerprint of one procedure: name, parameters, locals (in
/// declaration order — they determine the summarizer's variable vocabulary
/// order), and the body AST.
pub fn procedure_fingerprint(proc: &Procedure) -> Fingerprint {
    let mut h = StructuralHasher::new();
    h.out.write_str(&proc.name);
    h.out.write_u64(proc.params.len() as u64);
    for p in &proc.params {
        h.symbol(p);
    }
    h.out.write_u64(proc.locals.len() as u64);
    for l in &proc.locals {
        h.symbol(l);
    }
    h.stmt(&proc.body);
    h.out.finish()
}

/// Transitive cache keys for every component of `levels` (the output of
/// [`CallGraph::component_levels`]), mirroring the driver's schedule.
///
/// The key of a component mixes the caller-provided `salt` (analysis
/// configuration, global-variable vocabulary, cache-format version), the
/// member fingerprints in member order, and the sorted keys of all callee
/// components — so a key equality certifies that the whole callee cone is
/// unchanged.  Deliberately **not** mixed in: the component's position in
/// the bottom-up schedule (its fresh-symbol scope).  Scope used to be part
/// of the key, which made inserting one procedure early in a program shift
/// every later component's scope and spuriously evict summaries whose cone
/// was byte-for-byte unchanged; instead, restored summaries are rescoped
/// into the current schedule on load (`chora_core::cache`).
pub fn level_keys(
    program: &Program,
    callgraph: &CallGraph,
    levels: &[Vec<Component>],
    salt: Fingerprint,
) -> Vec<Vec<Fingerprint>> {
    let mut key_of: BTreeMap<&str, Fingerprint> = BTreeMap::new();
    let mut out: Vec<Vec<Fingerprint>> = Vec::with_capacity(levels.len());
    for level in levels {
        let mut level_out = Vec::with_capacity(level.len());
        for component in level {
            let mut b = FingerprintBuilder::new();
            b.write_fingerprint(salt);
            b.write_bool(component.recursive);
            b.write_u64(component.members.len() as u64);
            for member in &component.members {
                b.write_str(member);
                if let Some(proc) = program.procedure(member) {
                    b.write_fingerprint(procedure_fingerprint(proc));
                }
            }
            // Sorted, deduplicated keys of callee components outside this one.
            let mut callee_keys: Vec<Fingerprint> = component
                .members
                .iter()
                .flat_map(|m| callgraph.callees(m))
                .filter(|callee| !component.members.contains(callee))
                .filter_map(|callee| key_of.get(callee.as_str()).copied())
                .collect();
            callee_keys.sort_unstable();
            callee_keys.dedup();
            b.write_u64(callee_keys.len() as u64);
            for k in callee_keys {
                b.write_fingerprint(k);
            }
            let key = b.finish();
            for member in &component.members {
                key_of.insert(member.as_str(), key);
            }
            level_out.push(key);
        }
        out.push(level_out);
    }
    out
}

/// Per-procedure transitive keys: the key of the procedure's component
/// (see [`level_keys`]) mixed with the procedure name.
pub fn procedure_keys(program: &Program, salt: Fingerprint) -> BTreeMap<String, Fingerprint> {
    let callgraph = CallGraph::build(program);
    let levels = callgraph.component_levels();
    let keys = level_keys(program, &callgraph, &levels, salt);
    let mut out = BTreeMap::new();
    for (level, level_keys) in levels.iter().zip(keys.iter()) {
        for (component, key) in level.iter().zip(level_keys.iter()) {
            for member in &component.members {
                let mut b = FingerprintBuilder::new();
                b.write_fingerprint(*key);
                b.write_str(member);
                out.insert(member.clone(), b.finish());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_expr::FreshSource;

    fn leaf(name: &str, k: i64) -> Procedure {
        Procedure::new(
            name,
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("cost", Expr::var("cost").add(Expr::int(k))),
                Stmt::Return(Some(Expr::var("n"))),
            ]),
        )
    }

    fn caller(name: &str, callee: &str) -> Procedure {
        Procedure::new(
            name,
            &["n"],
            &["r"],
            Stmt::call_assign("r", callee, vec![Expr::var("n")]),
        )
    }

    fn program(procs: Vec<Procedure>) -> Program {
        let mut prog = Program::new();
        prog.add_global("cost");
        for p in procs {
            prog.add_procedure(p);
        }
        prog
    }

    #[test]
    fn fingerprint_is_deterministic_and_body_sensitive() {
        let a = procedure_fingerprint(&leaf("f", 1));
        let b = procedure_fingerprint(&leaf("f", 1));
        assert_eq!(a, b);
        assert_ne!(a, procedure_fingerprint(&leaf("f", 2)));
        assert_ne!(a, procedure_fingerprint(&leaf("g", 1)));
    }

    #[test]
    fn fingerprint_is_alpha_invariant_in_fresh_symbols() {
        // Two bodies identical up to the identity of their fresh temporaries
        // (different scopes, different serial offsets) hash identically.
        let s1 = FreshSource::new(3);
        let s2 = FreshSource::new(9);
        let _ = s2.fresh(); // shift serials
        let body = |a: Symbol, b: Symbol| {
            Stmt::seq(vec![
                Stmt::Assign(a, Expr::var("n")),
                Stmt::Assign(b, Expr::Var(a).add(Expr::int(1))),
            ])
        };
        let p1 = Procedure {
            name: "p".to_string(),
            params: vec![Symbol::new("n")],
            locals: vec![],
            body: body(s1.fresh(), s1.fresh()),
        };
        let p2 = Procedure {
            name: "p".to_string(),
            params: vec![Symbol::new("n")],
            locals: vec![],
            body: body(s2.fresh(), s2.fresh()),
        };
        assert_eq!(procedure_fingerprint(&p1), procedure_fingerprint(&p2));
        // ... but swapping the two temporaries' roles changes the hash.
        let t1 = FreshSource::new(4).fresh();
        let t2 = FreshSource::new(5).fresh();
        let p3 = Procedure {
            name: "p".to_string(),
            params: vec![Symbol::new("n")],
            locals: vec![],
            body: Stmt::seq(vec![
                Stmt::Assign(t2, Expr::var("n")),
                Stmt::Assign(t1, Expr::Var(t2).add(Expr::int(1))),
            ]),
        };
        assert_eq!(procedure_fingerprint(&p1), procedure_fingerprint(&p3));
    }

    #[test]
    fn edit_changes_only_the_dirty_cone() {
        let salt = Fingerprint(1);
        let original = program(vec![
            leaf("leaf", 1),
            leaf("other", 5),
            caller("mid", "leaf"),
            caller("main", "mid"),
        ]);
        let edited = program(vec![
            leaf("leaf", 2), // single-statement edit
            leaf("other", 5),
            caller("mid", "leaf"),
            caller("main", "mid"),
        ]);
        let before = procedure_keys(&original, salt);
        let after = procedure_keys(&edited, salt);
        assert_ne!(before["leaf"], after["leaf"]);
        assert_ne!(before["mid"], after["mid"]);
        assert_ne!(before["main"], after["main"]);
        assert_eq!(before["other"], after["other"]);
    }

    #[test]
    fn keys_are_independent_of_component_order() {
        let salt = Fingerprint(9);
        let original = program(vec![
            leaf("leaf", 1),
            caller("mid", "leaf"),
            caller("main", "mid"),
        ]);
        // Prepending an unrelated procedure shifts every component's
        // bottom-up scope, but must not change a single preexisting key.
        let prepended = program(vec![
            leaf("unrelated", 3),
            leaf("leaf", 1),
            caller("mid", "leaf"),
            caller("main", "mid"),
        ]);
        // Reordering independent procedures must not either.
        let reordered = program(vec![
            caller("main", "mid"),
            caller("mid", "leaf"),
            leaf("unrelated", 3),
            leaf("leaf", 1),
        ]);
        let before = procedure_keys(&original, salt);
        let with_pad = procedure_keys(&prepended, salt);
        let shuffled = procedure_keys(&reordered, salt);
        for name in ["leaf", "mid", "main"] {
            assert_eq!(
                before[name], with_pad[name],
                "`{name}` key must survive a prepend"
            );
            assert_eq!(
                with_pad[name], shuffled[name],
                "`{name}` key must survive a reorder"
            );
        }
        assert!(!before.contains_key("unrelated"));
        assert_eq!(with_pad["unrelated"], shuffled["unrelated"]);
    }

    #[test]
    fn salt_reaches_every_key() {
        let prog = program(vec![leaf("leaf", 1), caller("main", "leaf")]);
        let a = procedure_keys(&prog, Fingerprint(1));
        let b = procedure_keys(&prog, Fingerprint(2));
        for name in ["leaf", "main"] {
            assert_ne!(a[name], b[name]);
        }
    }

    #[test]
    fn hex_round_trip() {
        let fp = procedure_fingerprint(&leaf("f", 1));
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert!(Fingerprint::from_hex("xyz").is_none());
    }
}
