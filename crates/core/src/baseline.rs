//! An ICRA-style baseline analyzer.
//!
//! ICRA \[24\] lifts Compositional Recurrence Analysis to linearly recursive
//! procedures but "resorts to Kleene iteration in the case of non-linear
//! recursion" (§5).  This baseline reproduces that behaviour over the same
//! substrate as the CHORA analyzer: non-recursive components are summarized
//! exactly as CHORA does; recursive components are summarized by a bounded
//! Kleene iteration of `Summary(P, φ)` starting from ⊥, falling back to a
//! havoc summary when the iteration has not stabilized — which is what makes
//! it unable to bound the cost of non-linearly recursive procedures
//! (the "n.b." column of Table 1).

use crate::analysis::{AnalysisResult, AssertionResult, ProcedureSummary};
use crate::summarize::Summarizer;
use chora_expr::FreshSource;
use chora_ir::{CallGraph, Program};
use chora_logic::TransitionFormula;
use std::collections::BTreeMap;

/// The ICRA-style baseline analyzer.
#[derive(Clone, Debug)]
pub struct BaselineAnalyzer {
    /// Number of Kleene iterations attempted for recursive components before
    /// widening to a havoc summary.
    pub max_kleene_iterations: usize,
}

impl Default for BaselineAnalyzer {
    fn default() -> Self {
        BaselineAnalyzer {
            max_kleene_iterations: 3,
        }
    }
}

impl BaselineAnalyzer {
    /// Creates the baseline analyzer with the default iteration budget.
    pub fn new() -> BaselineAnalyzer {
        BaselineAnalyzer::default()
    }

    /// Analyses a program with the baseline strategy.
    pub fn analyze(&self, program: &Program) -> AnalysisResult {
        let callgraph = CallGraph::build(program);
        let summarizer = Summarizer::new(program);
        let mut result = AnalysisResult::default();
        let mut next_scope: u32 = 0;
        for component in callgraph.components_bottom_up() {
            let fresh = FreshSource::new(next_scope);
            next_scope += 1;
            if !component.recursive {
                for name in &component.members {
                    let Some(proc) = program.procedure(name) else {
                        continue;
                    };
                    let formula = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fresh);
                    summarizer.insert_summary(name.clone(), formula.clone());
                    result.summaries.insert(
                        name.clone(),
                        ProcedureSummary {
                            name: name.clone(),
                            formula,
                            bound_facts: Vec::new(),
                            depth: None,
                            recursive: false,
                        },
                    );
                }
                continue;
            }
            // Kleene iteration from ⊥.
            let mut current: BTreeMap<String, TransitionFormula> = component
                .members
                .iter()
                .map(|m| (m.clone(), TransitionFormula::bottom()))
                .collect();
            let mut stabilized = false;
            for _ in 0..self.max_kleene_iterations {
                let mut next = BTreeMap::new();
                for name in &component.members {
                    let Some(proc) = program.procedure(name) else {
                        continue;
                    };
                    next.insert(
                        name.clone(),
                        summarizer.summarize_procedure(proc, &current, &fresh),
                    );
                }
                if component
                    .members
                    .iter()
                    .all(|m| formulas_equivalent(&current[m], &next[m]))
                {
                    stabilized = true;
                    current = next;
                    break;
                }
                current = next;
            }
            for name in &component.members {
                let formula = if stabilized {
                    current[name].clone()
                } else {
                    // Widen: nothing is known about the effect of the
                    // recursion (globals and the return value are havocked).
                    TransitionFormula::top()
                };
                summarizer.insert_summary(name.clone(), formula.clone());
                result.summaries.insert(
                    name.clone(),
                    ProcedureSummary {
                        name: name.clone(),
                        formula,
                        bound_facts: Vec::new(),
                        depth: None,
                        recursive: true,
                    },
                );
            }
        }
        // Assertion checking with the baseline summaries reuses the same
        // reaching-formula pass as the main analyzer.
        let analyzer = crate::analysis::Analyzer::new();
        let mut assertions: Vec<AssertionResult> = Vec::new();
        for proc in &program.procedures {
            let fresh = FreshSource::new(next_scope);
            next_scope += 1;
            let vars = summarizer.proc_vars(proc);
            let prefix = TransitionFormula::identity(&vars);
            analyzer.check_asserts_with(
                &summarizer,
                proc,
                &proc.body,
                &vars,
                prefix,
                &mut assertions,
                &fresh,
            );
        }
        result.assertions = assertions;
        result
    }
}

/// A cheap structural equivalence check used as the Kleene-iteration
/// convergence test (mutual subsumption of the disjunct lists).
fn formulas_equivalent(a: &TransitionFormula, b: &TransitionFormula) -> bool {
    let sub = |x: &TransitionFormula, y: &TransitionFormula| {
        x.disjuncts()
            .iter()
            .all(|dx| y.disjuncts().iter().any(|dy| dx.is_subset_of(dy)))
    };
    sub(a, b) && sub(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_ir::{Cond, Expr, Procedure, Stmt};

    #[test]
    fn baseline_fails_to_bound_nonlinear_recursion() {
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new(
            "hanoi",
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                Stmt::if_then(
                    Cond::gt(Expr::var("n"), Expr::int(0)),
                    Stmt::seq(vec![
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                    ]),
                ),
            ]),
        ));
        let result = BaselineAnalyzer::new().analyze(&prog);
        let summary = result.summary("hanoi").unwrap();
        let bound = crate::complexity::cost_bound(summary, &chora_expr::Symbol::new("cost"));
        assert!(
            bound.is_none(),
            "the Kleene baseline should not find a cost bound"
        );
    }

    #[test]
    fn baseline_handles_non_recursive_procedures() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "id",
            &["x"],
            &[],
            Stmt::Return(Some(Expr::var("x"))),
        ));
        let result = BaselineAnalyzer::new().analyze(&prog);
        assert!(result.summary("id").is_some());
        assert!(!result.summary("id").unwrap().recursive);
    }
}
