//! Lowering IR expressions and conditions into the constraint language.

use chora_expr::{FreshSource, Polynomial, Symbol};
use chora_ir::{CmpOp, Cond, Expr};
use chora_logic::{Atom, Polyhedron};
use chora_numeric::BigRational;

/// The result of lowering an expression: a polynomial for its value plus
/// side constraints (introduced by floor division) over fresh symbols.
#[derive(Clone, Debug)]
pub struct LoweredExpr {
    /// Polynomial over program variables and any fresh division symbols.
    pub value: Polynomial,
    /// Side constraints defining the fresh symbols.
    pub constraints: Vec<Atom>,
    /// Fresh symbols introduced (must be existentially eliminated by the
    /// caller once the constraints have been conjoined).
    pub fresh: Vec<Symbol>,
}

/// Lowers an integer expression to a polynomial plus division constraints.
///
/// Floor division `e / c` is modelled exactly on integers by a fresh symbol
/// `q` (drawn from the analysis task's [`FreshSource`]) with
/// `c·q ≤ e ≤ c·q + (c − 1)`.
pub fn lower_expr(e: &Expr, fresh: &FreshSource) -> LoweredExpr {
    match e {
        Expr::Const(v) => LoweredExpr {
            value: Polynomial::constant(BigRational::from(*v)),
            constraints: Vec::new(),
            fresh: Vec::new(),
        },
        Expr::Var(s) => LoweredExpr {
            value: Polynomial::var(*s),
            constraints: Vec::new(),
            fresh: Vec::new(),
        },
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            let la = lower_expr(a, fresh);
            let lb = lower_expr(b, fresh);
            let value = match e {
                Expr::Add(_, _) => &la.value + &lb.value,
                Expr::Sub(_, _) => &la.value - &lb.value,
                Expr::Mul(_, _) => &la.value * &lb.value,
                _ => unreachable!(),
            };
            let mut constraints = la.constraints;
            constraints.extend(lb.constraints);
            let mut fresh = la.fresh;
            fresh.extend(lb.fresh);
            LoweredExpr {
                value,
                constraints,
                fresh,
            }
        }
        Expr::DivConst(a, c) => {
            let la = lower_expr(a, fresh);
            let q = fresh.fresh();
            let cq = Polynomial::var(q).scale(&BigRational::from(*c));
            let mut constraints = la.constraints;
            // c·q ≤ e  ∧  e ≤ c·q + (c-1)
            constraints.push(Atom::le(cq.clone(), la.value.clone()));
            constraints.push(Atom::le(
                la.value.clone(),
                &cq + &Polynomial::constant(BigRational::from(*c - 1)),
            ));
            let mut fresh = la.fresh;
            fresh.push(q);
            LoweredExpr {
                value: Polynomial::var(q),
                constraints,
                fresh,
            }
        }
    }
}

/// Lowers a condition into a disjunction of conjunctions of atoms (over the
/// *pre-state* variables).  `Nondet` lowers to the single empty conjunction
/// (no constraint — both outcomes possible), as does its negation.
///
/// Integer semantics are used for strict comparisons: `a < b` becomes
/// `a ≤ b − 1`.
pub fn lower_cond(c: &Cond, fresh: &FreshSource) -> Vec<Vec<Atom>> {
    match c {
        Cond::Nondet => vec![vec![]],
        Cond::Cmp(a, op, b) => {
            let la = lower_expr(a, fresh);
            let lb = lower_expr(b, fresh);
            // Division inside conditions is rare in the benchmarks; the side
            // constraints are conjoined so the comparison remains sound.
            let mut side = la.constraints.clone();
            side.extend(lb.constraints.clone());
            let one = Polynomial::one();
            let mk = |atoms: Vec<Atom>| -> Vec<Atom> {
                let mut v = side.clone();
                v.extend(atoms);
                v
            };
            match op {
                CmpOp::Le => vec![mk(vec![Atom::le(la.value, lb.value)])],
                CmpOp::Lt => vec![mk(vec![Atom::le(&la.value + &one, lb.value)])],
                CmpOp::Ge => vec![mk(vec![Atom::ge(la.value, lb.value)])],
                CmpOp::Gt => vec![mk(vec![Atom::ge(&la.value - &one, lb.value)])],
                CmpOp::Eq => vec![mk(vec![Atom::eq(la.value, lb.value)])],
                CmpOp::Ne => vec![
                    mk(vec![Atom::le(&la.value + &one, lb.value.clone())]),
                    mk(vec![Atom::ge(&la.value - &one, lb.value)]),
                ],
            }
        }
        Cond::And(a, b) => {
            let da = lower_cond(a, fresh);
            let db = lower_cond(b, fresh);
            let mut out = Vec::new();
            for x in &da {
                for y in &db {
                    let mut conj = x.clone();
                    conj.extend(y.clone());
                    out.push(conj);
                }
            }
            out
        }
        Cond::Or(a, b) => {
            let mut out = lower_cond(a, fresh);
            out.extend(lower_cond(b, fresh));
            out
        }
        Cond::Not(inner) => lower_cond_negated(inner, fresh),
    }
}

/// Lowers the negation of a condition.
pub fn lower_cond_negated(c: &Cond, fresh: &FreshSource) -> Vec<Vec<Atom>> {
    match c {
        Cond::Nondet => vec![vec![]],
        Cond::Cmp(a, op, b) => {
            let negated_op = match op {
                CmpOp::Le => CmpOp::Gt,
                CmpOp::Lt => CmpOp::Ge,
                CmpOp::Ge => CmpOp::Lt,
                CmpOp::Gt => CmpOp::Le,
                CmpOp::Eq => CmpOp::Ne,
                CmpOp::Ne => CmpOp::Eq,
            };
            lower_cond(&Cond::Cmp(a.clone(), negated_op, b.clone()), fresh)
        }
        Cond::And(a, b) => {
            // ¬(a ∧ b) = ¬a ∨ ¬b
            let mut out = lower_cond_negated(a, fresh);
            out.extend(lower_cond_negated(b, fresh));
            out
        }
        Cond::Or(a, b) => {
            // ¬(a ∨ b) = ¬a ∧ ¬b
            let da = lower_cond_negated(a, fresh);
            let db = lower_cond_negated(b, fresh);
            let mut out = Vec::new();
            for x in &da {
                for y in &db {
                    let mut conj = x.clone();
                    conj.extend(y.clone());
                    out.push(conj);
                }
            }
            out
        }
        Cond::Not(inner) => lower_cond(inner, fresh),
    }
}

/// Lowers a condition into polyhedra over the *post-state* (primed) program
/// variables — used when checking assertions against a reaching formula.
pub fn lower_cond_post(c: &Cond, vars: &[Symbol], fresh: &FreshSource) -> Vec<Polyhedron> {
    lower_cond(c, fresh)
        .into_iter()
        .map(|atoms| {
            Polyhedron::from_atoms(
                atoms
                    .into_iter()
                    .map(|a| {
                        a.rename(&mut |s| {
                            if vars.contains(s) {
                                s.primed()
                            } else {
                                *s
                            }
                        })
                    })
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FreshSource {
        FreshSource::new(0)
    }

    #[test]
    fn lower_simple_expr() {
        let e = Expr::var("x").mul(Expr::var("x")).add(Expr::int(3));
        let l = lower_expr(&e, &fs());
        assert_eq!(l.value.to_string(), "x^2 + 3");
        assert!(l.constraints.is_empty());
    }

    #[test]
    fn lower_division_introduces_constraints() {
        let e = Expr::var("n").div(2);
        let l = lower_expr(&e, &fs());
        assert_eq!(l.fresh.len(), 1);
        assert_eq!(l.constraints.len(), 2);
        // The value is the fresh quotient symbol.
        assert!(l.value.symbols().contains(&l.fresh[0]));
    }

    #[test]
    fn lower_strict_comparison_uses_integer_semantics() {
        let c = Cond::lt(Expr::var("i"), Expr::var("n"));
        let d = lower_cond(&c, &fs());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0][0].to_string(), "i - n + 1 ≤ 0");
    }

    #[test]
    fn lower_disequality_splits() {
        let c = Cond::ne(Expr::var("x"), Expr::int(0));
        let d = lower_cond(&c, &fs());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn negation_of_and_is_disjunction() {
        let c = Cond::ge(Expr::var("x"), Expr::int(0)).and(Cond::le(Expr::var("x"), Expr::int(5)));
        let neg = lower_cond_negated(&c, &fs());
        assert_eq!(neg.len(), 2);
        let pos = lower_cond(&c, &fs());
        assert_eq!(pos.len(), 1);
        assert_eq!(pos[0].len(), 2);
    }

    #[test]
    fn nondet_lowers_to_unconstrained() {
        assert_eq!(lower_cond(&Cond::Nondet, &fs()), vec![vec![]]);
        assert_eq!(lower_cond_negated(&Cond::Nondet, &fs()), vec![vec![]]);
        assert_eq!(lower_cond(&Cond::Nondet.negate(), &fs()), vec![vec![]]);
    }
}
