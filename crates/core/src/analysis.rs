//! The interprocedural CHORA driver.
//!
//! Procedures are analysed bottom-up over the strongly connected components
//! of the call graph (§4).  Non-recursive components are summarized directly
//! by the intra-procedural analysis; recursive components go through
//! height-based recurrence analysis (§4.1 / §4.4) and depth-bound analysis
//! (§4.2), and their summaries combine the solved bounding functions with the
//! depth bound as in Eqn. (4).  A final pass re-analyses each procedure body
//! with the computed summaries to discharge assertions.
//!
//! Scheduling is a dependency-counted ready queue over one merged task graph
//! (components plus per-procedure assertion passes, across every program of a
//! batch): a task becomes runnable the moment its callee components finish,
//! with no barrier between topological levels, and results are folded back in
//! a fixed canonical order so the output is byte-identical for every worker
//! count.

use crate::cache::ComponentScopes;
use crate::complexity::term_to_polynomial;
use crate::depth::{depth_bound, polynomial_to_term, DepthBound};
use crate::height::{analyze_scc, HeightAnalysis};
use crate::lower::lower_cond_post;
use crate::store::{CacheStats, SummaryStore};
use crate::summarize::{return_variable, Summarizer};
use chora_expr::{ExpPoly, FreshSource, Polynomial, Symbol, Term};
use chora_ir::{
    fingerprint::level_keys, CallGraph, Component, Fingerprint, FingerprintBuilder, Procedure,
    Program, Stmt,
};
use chora_logic::{Atom, Polyhedron, TransitionFormula};
use chora_telemetry::trace;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::OnceLock;
use std::time::Instant;

/// Analysis configuration (used for ablation experiments).
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Whether depth-bound analysis (§4.2) is applied; without it the
    /// height-indexed bounds cannot be related to the pre-state.
    pub enable_depth_bounds: bool,
    /// Whether polynomial closed forms are pushed back into the polyhedral
    /// summary formula (improves assertion checking).
    pub enable_polynomial_facts: bool,
    /// Disjunct cap for transition formulas.
    pub disjunct_cap: usize,
    /// Number of worker threads pulling analysis tasks (component
    /// summarizations and per-procedure assertion passes) off the shared
    /// ready queue; a task is enqueued as soon as the components it calls
    /// into have finished.  `1` means fully sequential; `0` means one
    /// worker per available core.  The analysis result is identical for
    /// every value — scheduling only affects wall-clock time.
    pub jobs: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            enable_depth_bounds: true,
            enable_polynomial_facts: true,
            disjunct_cap: chora_logic::DEFAULT_DISJUNCT_CAP,
            jobs: 1,
        }
    }
}

/// A solved bound fact `τ ≤ bound` of a recursive procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundFact {
    /// The relational expression `τ` over `Var ∪ Var'`.
    pub term: Polynomial,
    /// The closed-form bounding function `b(h)`.
    pub closed_form: ExpPoly,
    /// The bound with the depth bound substituted for `h` (over pre-state
    /// variables), when a depth bound is available.
    pub bound: Option<Term>,
    /// Whether the closed form solves the extracted recurrence exactly.
    pub exact: bool,
}

/// The summary computed for one procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcedureSummary {
    /// Procedure name.
    pub name: String,
    /// Sound polyhedral transition formula over `globals ∪ params` (pre) and
    /// `globals' ∪ ret'`.
    pub formula: TransitionFormula,
    /// Height-indexed bound facts (recursive procedures only).
    pub bound_facts: Vec<BoundFact>,
    /// Depth bound `ζ_P` (recursive procedures only).
    pub depth: Option<DepthBound>,
    /// Whether the procedure belongs to a recursive SCC.
    pub recursive: bool,
}

/// The verdict for one assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssertionResult {
    /// The procedure containing the assertion.
    pub procedure: String,
    /// The assertion label.
    pub label: String,
    /// Whether the analysis proved the assertion.
    pub verified: bool,
}

/// Cumulative per-phase wall-clock of one analysis run.
///
/// Durations are summed across worker tasks (so with `--jobs N` they read
/// as CPU time, not elapsed time); `parse` is not included because parsing
/// happens in the front end, before the analyzer runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// Intra-procedural summarization (formula construction, loop closure).
    pub summarize_ms: f64,
    /// Height-based recurrence extraction/solving plus depth-bound analysis
    /// (recursive components only) — the phase a cache hit skips entirely.
    pub solve_ms: f64,
    /// The assertion-checking pass.
    pub check_ms: f64,
}

/// The result of analysing a whole program.
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// Per-procedure summaries.
    pub summaries: BTreeMap<String, ProcedureSummary>,
    /// Assertion verdicts, in program order.
    pub assertions: Vec<AssertionResult>,
    /// Summary-cache counters (all zero when no store was supplied).
    pub cache: CacheStats,
    /// Per-phase timings.
    pub timings: PhaseTimings,
}

impl AnalysisResult {
    /// Convenience: whether every assertion in the program was proved.
    pub fn all_assertions_verified(&self) -> bool {
        self.assertions.iter().all(|a| a.verified)
    }

    /// Convenience: the summary of a procedure.
    pub fn summary(&self, name: &str) -> Option<&ProcedureSummary> {
        self.summaries.get(name)
    }
}

/// The CHORA analyzer.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    /// Configuration knobs.
    pub config: AnalysisConfig,
}

impl Analyzer {
    /// Creates an analyzer with the default configuration.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// Creates an analyzer with a custom configuration.
    pub fn with_config(config: AnalysisConfig) -> Analyzer {
        Analyzer { config }
    }

    /// The number of worker threads the configuration resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.config.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.jobs
        }
    }

    /// Analyses a program: computes procedure summaries bottom-up over the
    /// call graph's strongly connected components and checks every assertion.
    ///
    /// Components are scheduled through a dependency-counted *ready queue*:
    /// each component counts the distinct components it calls into, becomes
    /// runnable the instant that count drains to zero, and is pulled by one
    /// of [`AnalysisConfig::jobs`] scoped worker threads — no level barrier,
    /// so a deep dependency chain overlaps with whatever else is runnable.
    /// Workers publish finished summaries into the shared summary table
    /// (behind the summarizer's `RwLock`) before releasing dependents.
    /// Every task draws its existential symbols from an own deterministic
    /// [`FreshSource`] keyed by the component's position in the bottom-up
    /// schedule, and outputs are folded back in that fixed order, so the
    /// result — down to the byte — is independent of the schedule.
    pub fn analyze(&self, program: &Program) -> AnalysisResult {
        self.analyze_with_store(program, None)
    }

    /// [`Analyzer::analyze`] backed by a summary cache.
    ///
    /// Before summarizing, each component's transitive fingerprint (see
    /// [`chora_ir::fingerprint`]) is looked up in `store`: a hit restores
    /// the cached summaries — skipping intra-procedural summarization and
    /// height/depth/recurrence solving for the component entirely — while
    /// assertion checking still runs against the restored summaries.  Only
    /// the dirty cone (components whose own body, callee cone, or analysis
    /// configuration changed) is re-summarized and re-stored; in particular
    /// a component's *position* in the bottom-up schedule is not part of
    /// its key — prepending or reordering unrelated procedures keeps every
    /// unchanged cone warm.  Restored summaries are rescoped on load: the
    /// per-component fresh-symbol scope the driver assigned *this* run is
    /// threaded to the store through a [`ComponentScopes`] resolver, so
    /// hits are bit-compatible with a cold run of the current program.
    /// The analysis result, including every byte of the derived reports,
    /// is identical with and without a store.
    pub fn analyze_with_store(
        &self,
        program: &Program,
        store: Option<&dyn SummaryStore>,
    ) -> AnalysisResult {
        self.analyze_batch_with_store(&[program], store)
            .pop()
            .expect("a batch of one yields one result")
    }

    /// Analyses several programs as **one scheduling problem**: every
    /// component task and every per-procedure assertion task of every
    /// program goes into a single dependency-counted ready queue drained by
    /// [`AnalysisConfig::jobs`] workers.  A task's dependencies are exactly
    /// the callee components it needs summaries from (an assertion pass
    /// needs only the component containing its procedure), so workers flow
    /// across program and level boundaries alike — one program's slow
    /// deep-chain component no longer holds up another's independent work,
    /// and assertion checking starts while unrelated components are still
    /// summarizing.  That is what makes `/v1/batch` faster than N
    /// independent runs.
    ///
    /// Per-program scope assignment, summary-table fold order, and cache
    /// keys are exactly those of [`Analyzer::analyze_with_store`] run on
    /// that program alone (each program gets its own [`Summarizer`] and its
    /// own scope counter), so every element of the returned vector is
    /// identical — byte for byte in all derived reports — to its
    /// single-program run.  The one exception: the eviction counters are
    /// deltas over the whole batch (the store is shared), reported
    /// identically on every element.
    pub fn analyze_batch_with_store(
        &self,
        programs: &[&Program],
        store: Option<&dyn SummaryStore>,
    ) -> Vec<AnalysisResult> {
        // Store eviction counters run over the store's lifetime; report
        // only this batch's deltas (stores are reused across bench runs
        // and live for a whole `chora serve` process).
        let (evictions_before, gc_evictions_before) = eviction_totals(store);
        // One flight group per batch: a single-flight store layer must
        // treat this run's own in-progress computations as plain misses
        // (their stores happen in the fold below), while still letting
        // other runs' misses coalesce onto ours.
        let flight_group = crate::cache::next_flight_group();
        let jobs = self.effective_jobs();
        // Scopes are assigned per program, by bottom-up component order
        // (then by procedure order for the assertion pass), identically for
        // every schedule — and independently of cache hits and of the other
        // batch members, so each program's symbols are exactly the ones a
        // solo run would have created.
        let mut runs: Vec<ProgramRun<'_>> = programs
            .iter()
            .map(|&program| {
                let callgraph = CallGraph::build(program);
                let levels = callgraph.component_levels();
                let keys = store.map(|_| {
                    let _span = trace::span("phase", "fingerprint");
                    level_keys(program, &callgraph, &levels, self.cache_salt(program))
                });
                // This run's component-key <-> scope assignment, in the same
                // flattened bottom-up order in which scopes are handed out
                // below.  Loads use it to rescope restored fresh symbols into
                // the current schedule; stores write scope-canonical entries.
                let run_scopes = keys
                    .as_ref()
                    .map(|k| ComponentScopes::from_level_keys(k).with_flight_group(flight_group));
                let mut level_scope_base = Vec::with_capacity(levels.len());
                let mut next_scope: u32 = 0;
                for level in &levels {
                    level_scope_base.push(next_scope);
                    next_scope += level.len() as u32;
                }
                ProgramRun {
                    program,
                    callgraph,
                    levels,
                    keys,
                    run_scopes,
                    summarizer: Summarizer::new(program),
                    level_scope_base,
                    assert_scope_base: next_scope,
                    result: AnalysisResult::default(),
                }
            })
            .collect();
        // The merged task graph.  Task ids follow the canonical fold order —
        // component tasks level-major then program-major (the order the old
        // level-barrier scheduler folded in), then one assertion task per
        // procedure, program-major.  That order is topological (a component's
        // callees sit at strictly lower levels; an assertion task's one
        // dependency is a component), which is what lets the sequential
        // `jobs == 1` path simply run tasks in id order.
        let rounds = runs.iter().map(|r| r.levels.len()).max().unwrap_or(0);
        let mut tasks: Vec<Task> = Vec::new();
        for level in 0..rounds {
            for (p, run) in runs.iter().enumerate() {
                let n = run.levels.get(level).map_or(0, Vec::len);
                tasks.extend((0..n).map(|index| Task::Component { p, level, index }));
            }
        }
        let component_tasks = tasks.len();
        for (p, run) in runs.iter().enumerate() {
            let n = run.program.procedures.len();
            tasks.extend((0..n).map(|proc_index| Task::Assert { p, proc_index }));
        }
        // Per program: which component task owns each procedure.
        let mut comp_task: Vec<HashMap<&str, usize>> =
            runs.iter().map(|_| HashMap::new()).collect();
        for (t, task) in tasks[..component_tasks].iter().enumerate() {
            let Task::Component { p, level, index } = *task else {
                unreachable!("assertion tasks come after the component tasks");
            };
            for member in &runs[p].levels[level][index].members {
                comp_task[p].insert(member.as_str(), t);
            }
        }
        // Dependency edges: a component waits for the components its members
        // call into (self-calls excluded — recursion is resolved inside the
        // component); an assertion pass waits only for the component holding
        // its procedure, whose completion transitively covers the whole
        // callee cone the body walk can look up.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        let mut dep_count: Vec<usize> = vec![0; tasks.len()];
        for (t, task) in tasks.iter().enumerate() {
            let deps: BTreeSet<usize> = match *task {
                Task::Component { p, level, index } => runs[p].levels[level][index]
                    .members
                    .iter()
                    .flat_map(|m| runs[p].callgraph.callees(m))
                    .filter_map(|callee| comp_task[p].get(callee.as_str()).copied())
                    .filter(|&d| d != t)
                    .collect(),
                Task::Assert { p, proc_index } => comp_task[p]
                    .get(runs[p].program.procedures[proc_index].name.as_str())
                    .copied()
                    .into_iter()
                    .collect(),
            };
            dep_count[t] = deps.len();
            for d in deps {
                debug_assert!(d < t, "task ids must be topologically ordered");
                dependents[d].push(t);
            }
        }
        // Drain the graph.  Workers probe the store (loads — disk read,
        // decode, rescope, re-intern — run concurrently too), summarize on a
        // miss, and publish summaries into the program's shared table before
        // the scheduler releases any dependent task.  Store writes are
        // deferred to the fold: probes therefore see exactly the entries the
        // run started with, independent of scheduling (a task could never
        // hit a same-run store anyway — an identical component has an
        // identical cone, hence the same level and a same-round probe).
        let runs_ref = &runs;
        let tasks_ref = &tasks;
        let outputs = run_ready_queue(jobs, &dependents, dep_count, |t| match tasks_ref[t] {
            Task::Component { p, level, index } => {
                let run = &runs_ref[p];
                let component = &run.levels[level][index];
                let _task_span = trace::span_with("task", || match component.members.as_slice() {
                    [one] => format!("component {one}"),
                    members => format!("component {} (+{})", members[0], members.len() - 1),
                });
                let output = 'output: {
                    if let (Some(store), Some(keys), Some(run_scopes)) =
                        (store, &run.keys, &run.run_scopes)
                    {
                        let _load_span = trace::span("cache", "cache_load");
                        let hit = store
                            .load(&keys[level][index], run_scopes)
                            .filter(|summaries| {
                                summaries.len() == component.members.len()
                                    && summaries
                                        .iter()
                                        .zip(&component.members)
                                        .all(|(s, m)| &s.name == m)
                            });
                        if let Some(summaries) = hit {
                            break 'output ComponentOutput {
                                summaries,
                                summarize_ms: 0.0,
                                solve_ms: 0.0,
                                cache_hit: true,
                            };
                        }
                    }
                    let scope = run.level_scope_base[level] + index as u32;
                    self.summarize_component(run.program, &run.summarizer, component, scope)
                };
                for summary in &output.summaries {
                    run.summarizer
                        .insert_summary(summary.name.clone(), summary.formula.clone());
                }
                TaskOutput::Component(output)
            }
            Task::Assert { p, proc_index } => {
                let run = &runs_ref[p];
                let _task_span = trace::span_with("task", || {
                    format!("assert {}", run.program.procedures[proc_index].name)
                });
                let _check_span = trace::span("phase", "check");
                let started = Instant::now();
                let proc = &run.program.procedures[proc_index];
                let fresh = FreshSource::new(run.assert_scope_base + proc_index as u32);
                let vars = run.summarizer.proc_vars(proc);
                let prefix = TransitionFormula::identity(&vars);
                let mut asserts = Vec::new();
                self.check_asserts_with(
                    &run.summarizer,
                    proc,
                    &proc.body,
                    &vars,
                    prefix,
                    &mut asserts,
                    &fresh,
                );
                TaskOutput::Assert {
                    asserts,
                    check_ms: started.elapsed().as_secs_f64() * 1e3,
                }
            }
        });
        // Fold the outputs back in task-id order — per program that is
        // bottom-up component order then procedure order, so counters,
        // timing sums, store writes, and assertion lists come out exactly
        // as a solo sequential run would produce them.
        for (t, output) in outputs.into_iter().enumerate() {
            match (tasks[t], output) {
                (Task::Component { p, level, index }, TaskOutput::Component(output)) => {
                    let run = &mut runs[p];
                    if output.cache_hit {
                        run.result.cache.hits += 1;
                    } else {
                        run.result.cache.misses += store.is_some() as u64;
                        run.result.timings.summarize_ms += output.summarize_ms;
                        run.result.timings.solve_ms += output.solve_ms;
                        if let (Some(store), Some(keys), Some(run_scopes)) =
                            (store, &run.keys, &run.run_scopes)
                        {
                            let _store_span = trace::span("cache", "cache_store");
                            store.store(&keys[level][index], &output.summaries, run_scopes);
                        }
                    }
                    for summary in output.summaries {
                        run.result.summaries.insert(summary.name.clone(), summary);
                    }
                }
                (Task::Assert { p, .. }, TaskOutput::Assert { asserts, check_ms }) => {
                    runs[p].result.assertions.extend(asserts);
                    runs[p].result.timings.check_ms += check_ms;
                }
                _ => unreachable!("task and output kinds are built in lockstep"),
            }
        }
        let metrics = analysis_metrics();
        metrics.analyses.add(runs.len() as u64);
        for run in &runs {
            metrics.cache_hits.add(run.result.cache.hits);
            metrics.cache_misses.add(run.result.cache.misses);
        }
        let (evictions_after, gc_evictions_after) = eviction_totals(store);
        let evictions = evictions_after.saturating_sub(evictions_before);
        let gc_evictions = gc_evictions_after.saturating_sub(gc_evictions_before);
        runs.into_iter()
            .map(|mut run| {
                if store.is_some() {
                    run.result.cache.evictions = evictions;
                    run.result.cache.gc_evictions = gc_evictions;
                }
                run.result
            })
            .collect()
    }

    /// The fingerprint salt capturing everything outside the procedure
    /// bodies that a summary depends on: the key-derivation generation
    /// (v3 canonicalizes constraint rows inside the projection engine,
    /// changing summary bytes; v2 dropped the bottom-up scope from
    /// component keys), the analysis knobs (except `jobs`, which never
    /// changes the result), and the global-variable vocabulary in
    /// declaration order (it fixes the summarizer's variable order).
    fn cache_salt(&self, program: &Program) -> Fingerprint {
        let mut b = FingerprintBuilder::new();
        b.write_str("chora-analysis-salt-v3");
        b.write_bool(self.config.enable_depth_bounds);
        b.write_bool(self.config.enable_polynomial_facts);
        b.write_u64(self.config.disjunct_cap as u64);
        b.write_u64(program.globals.len() as u64);
        for g in &program.globals {
            b.write_str(&g.to_string());
        }
        b.finish()
    }

    /// Summarizes one strongly connected component (the per-task body of the
    /// level scheduler); returns the finished summaries in member order,
    /// with the time spent split into the summarize and solve phases.
    fn summarize_component(
        &self,
        program: &Program,
        summarizer: &Summarizer<'_>,
        component: &Component,
        scope: u32,
    ) -> ComponentOutput {
        let _span = trace::span("phase", "summarize");
        let started = Instant::now();
        let fresh = FreshSource::new(scope);
        let mut out = Vec::new();
        if !component.recursive {
            for name in &component.members {
                let Some(proc) = program.procedure(name) else {
                    continue;
                };
                let formula = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fresh);
                out.push(ProcedureSummary {
                    name: name.clone(),
                    formula,
                    bound_facts: Vec::new(),
                    depth: None,
                    recursive: false,
                });
            }
            return ComponentOutput {
                summaries: out,
                summarize_ms: started.elapsed().as_secs_f64() * 1e3,
                solve_ms: 0.0,
                cache_hit: false,
            };
        }
        let solve_started = Instant::now();
        let height = {
            let _span = trace::span("phase", "height");
            analyze_scc(summarizer, &component.members, &fresh)
        };
        let mut solve_ms = solve_started.elapsed().as_secs_f64() * 1e3;
        for name in &component.members {
            let Some(proc) = program.procedure(name) else {
                continue;
            };
            let depth_started = Instant::now();
            let depth = if self.config.enable_depth_bounds {
                let _span = trace::span("phase", "depth");
                depth_bound(summarizer, proc, &component.members, &fresh)
            } else {
                None
            };
            solve_ms += depth_started.elapsed().as_secs_f64() * 1e3;
            out.push(self.assemble_recursive_summary(proc, &height, &depth));
        }
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        ComponentOutput {
            summaries: out,
            summarize_ms: (total_ms - solve_ms).max(0.0),
            solve_ms,
            cache_hit: false,
        }
    }

    /// Builds the final summary of a recursive procedure from the solved
    /// bounding functions and the depth bound (Eqn. (4)).
    fn assemble_recursive_summary(
        &self,
        proc: &Procedure,
        height: &HeightAnalysis,
        depth: &Option<DepthBound>,
    ) -> ProcedureSummary {
        let depth_term = depth.as_ref().map(|d| d.to_term());
        let mut facts = Vec::new();
        for (tau, closed_form, exact) in height.solved_terms(&proc.name) {
            let bound = depth_term
                .as_ref()
                .map(|dt| closed_form.to_term_with_param(dt));
            facts.push(BoundFact {
                term: tau,
                closed_form,
                bound,
                exact,
            });
        }
        // Polyhedral part: polynomial closed forms substituted with the depth
        // bound, guarded on the sign of the depth argument (see DESIGN.md).
        let formula = if self.config.enable_polynomial_facts {
            self.polynomial_summary_formula(&facts, depth)
        } else {
            TransitionFormula::top()
        };
        ProcedureSummary {
            name: proc.name.clone(),
            formula,
            bound_facts: facts,
            depth: depth.clone(),
            recursive: true,
        }
    }

    /// Turns polynomial-in-`h` closed forms plus a linear depth bound into
    /// polyhedral atoms:
    ///
    /// * disjunct 1: `e ≥ 1  ∧  τ_k ≤ b_k(e)` for every polynomial fact,
    /// * disjunct 2: `e ≤ 0  ∧  τ_k ≤ 0` (only the base case is reachable),
    ///
    /// where `e` is the raw (un-maxed) depth expression.  Constant closed
    /// forms are added unconditionally.
    fn polynomial_summary_formula(
        &self,
        facts: &[BoundFact],
        depth: &Option<DepthBound>,
    ) -> TransitionFormula {
        let mut unconditional: Vec<Atom> = Vec::new();
        for f in facts {
            if let Some(c) = f.closed_form.as_constant() {
                unconditional.push(Atom::le(f.term.clone(), Polynomial::constant(c)));
            }
        }
        let depth_poly = match depth {
            Some(DepthBound::Linear(t)) => term_to_polynomial(t),
            _ => None,
        };
        let Some(depth_expr) = depth_poly else {
            return TransitionFormula::from_polyhedron(Polyhedron::from_atoms(unconditional));
        };
        let h = Symbol::height();
        let mut deep_atoms = unconditional.clone();
        deep_atoms.push(Atom::ge(depth_expr.clone(), Polynomial::one()));
        let mut shallow_atoms = unconditional;
        shallow_atoms.push(Atom::le(depth_expr.clone(), Polynomial::zero()));
        for f in facts {
            if f.closed_form.as_constant().is_some() {
                continue;
            }
            if let Some(poly_in_h) = f.closed_form.as_polynomial() {
                let substituted = poly_in_h.substitute(&h, &depth_expr);
                deep_atoms.push(Atom::le(f.term.clone(), substituted));
                shallow_atoms.push(Atom::le(f.term.clone(), Polynomial::zero()));
            }
        }
        TransitionFormula::from_disjuncts(vec![
            Polyhedron::from_atoms(deep_atoms),
            Polyhedron::from_atoms(shallow_atoms),
        ])
    }

    /// Walks a procedure body with the given summaries, checking every
    /// assertion against the reaching transition formula.  Public so the
    /// ICRA-style baseline can reuse the same verification pass.
    #[allow(clippy::too_many_arguments)]
    pub fn check_asserts_with(
        &self,
        summarizer: &Summarizer<'_>,
        proc: &Procedure,
        stmt: &Stmt,
        vars: &[Symbol],
        prefix: TransitionFormula,
        out: &mut Vec<AssertionResult>,
        fresh: &FreshSource,
    ) -> TransitionFormula {
        match stmt {
            Stmt::Assert(cond, label) => {
                let verified = self.prove(&prefix, cond, vars, fresh);
                out.push(AssertionResult {
                    procedure: proc.name.clone(),
                    label: label.clone(),
                    verified,
                });
                prefix
            }
            Stmt::Seq(stmts) => {
                let mut current = prefix;
                for s in stmts {
                    current =
                        self.check_asserts_with(summarizer, proc, s, vars, current, out, fresh);
                }
                current
            }
            Stmt::If(c, then_branch, else_branch) => {
                let guard_t = summarizer.summarize_stmt(
                    &Stmt::Assume(c.clone()),
                    vars,
                    &BTreeMap::new(),
                    fresh,
                );
                let guard_f = summarizer.summarize_stmt(
                    &Stmt::Assume(c.clone().negate()),
                    vars,
                    &BTreeMap::new(),
                    fresh,
                );
                let after_then = self.check_asserts_with(
                    summarizer,
                    proc,
                    then_branch,
                    vars,
                    prefix.sequence(&guard_t.fall_through, vars),
                    out,
                    fresh,
                );
                let after_else = self.check_asserts_with(
                    summarizer,
                    proc,
                    else_branch,
                    vars,
                    prefix.sequence(&guard_f.fall_through, vars),
                    out,
                    fresh,
                );
                after_then.union(&after_else)
            }
            Stmt::While(c, body) => {
                let body_summary = summarizer.summarize_stmt(body, vars, &BTreeMap::new(), fresh);
                let guard_t = summarizer.summarize_stmt(
                    &Stmt::Assume(c.clone()),
                    vars,
                    &BTreeMap::new(),
                    fresh,
                );
                let guard_f = summarizer.summarize_stmt(
                    &Stmt::Assume(c.clone().negate()),
                    vars,
                    &BTreeMap::new(),
                    fresh,
                );
                let one_iter = guard_t
                    .fall_through
                    .sequence(&body_summary.fall_through, vars);
                let iterations = summarizer.loop_summary(&one_iter, vars, fresh);
                // Check assertions inside the body under the loop invariant
                // approximation.
                let in_loop = prefix
                    .sequence(&iterations, vars)
                    .sequence(&guard_t.fall_through, vars);
                let _ = self.check_asserts_with(summarizer, proc, body, vars, in_loop, out, fresh);
                prefix
                    .sequence(&iterations, vars)
                    .sequence(&guard_f.fall_through, vars)
            }
            Stmt::Return(_) => TransitionFormula::bottom(),
            other => {
                let summary = summarizer.summarize_stmt(other, vars, &BTreeMap::new(), fresh);
                prefix.sequence(&summary.fall_through, vars)
            }
        }
    }

    /// Proves `prefix ⊨ cond` where `cond` refers to the current (post)
    /// values of the program variables.
    ///
    /// The atoms of each goal disjunct are checked with one batched
    /// [`Polyhedron::implies_all`] entailment (a single shared
    /// linearization/elimination pass) instead of one Fourier–Motzkin run
    /// per atom.
    fn prove(
        &self,
        prefix: &TransitionFormula,
        cond: &chora_ir::Cond,
        vars: &[Symbol],
        fresh: &FreshSource,
    ) -> bool {
        let post_disjuncts = lower_cond_post(cond, vars, fresh);
        prefix.disjuncts().iter().all(|reach| {
            post_disjuncts
                .iter()
                .any(|goal| reach.implies_all(goal.atoms()))
        })
    }
}

/// The per-program state of one batch member: its own schedule, cache
/// keys, summary table, and scope bases — everything a solo
/// [`Analyzer::analyze_with_store`] run would hold, so merging the level
/// rounds across programs cannot change any program's result.
struct ProgramRun<'p> {
    program: &'p Program,
    /// Retained for dependency edges: a component task waits on the
    /// components its members call into.
    callgraph: CallGraph,
    levels: Vec<Vec<Component>>,
    keys: Option<Vec<Vec<Fingerprint>>>,
    run_scopes: Option<ComponentScopes>,
    summarizer: Summarizer<'p>,
    /// Scope of component `i` of level `l` is `level_scope_base[l] + i` —
    /// the value a solo run's running `next_scope` counter would assign.
    level_scope_base: Vec<u32>,
    /// First scope of the assertion pass: the program's component count.
    assert_scope_base: u32,
    result: AnalysisResult,
}

/// The output of one component task: summaries restored from the cache
/// (`cache_hit`, zero phase time) or freshly computed.
struct ComponentOutput {
    summaries: Vec<ProcedureSummary>,
    summarize_ms: f64,
    solve_ms: f64,
    cache_hit: bool,
}

/// One schedulable unit of the merged batch: summarize (or cache-restore)
/// one component, or check the assertions of one procedure.
#[derive(Clone, Copy)]
enum Task {
    Component {
        p: usize,
        level: usize,
        index: usize,
    },
    Assert {
        p: usize,
        proc_index: usize,
    },
}

/// The result of one [`Task`], folded back in task-id order.
enum TaskOutput {
    Component(ComponentOutput),
    Assert {
        asserts: Vec<AssertionResult>,
        check_ms: f64,
    },
}

/// Process-wide analysis/scheduler metrics, registered with the telemetry
/// registry on first use.  These are *global* cumulative counters (the
/// per-run numbers stay on [`AnalysisResult`]); bumps happen once per task
/// or per run, far off any hot path.
/// Lifetime `(corruption, space-or-age)` eviction totals of `store`,
/// summed across its tiers — the before/after pair behind the per-batch
/// deltas in [`crate::store::CacheStats`].
fn eviction_totals(store: Option<&dyn SummaryStore>) -> (u64, u64) {
    store.map_or((0, 0), |s| {
        let stats = s.stats();
        (
            crate::store::total_corrupt_evictions(&stats),
            crate::store::total_gc_evictions(&stats),
        )
    })
}

struct AnalysisMetrics {
    analyses: &'static chora_telemetry::metrics::Counter,
    cache_hits: &'static chora_telemetry::metrics::Counter,
    cache_misses: &'static chora_telemetry::metrics::Counter,
    tasks: &'static chora_telemetry::metrics::Counter,
    queue_wait: &'static chora_telemetry::metrics::Histogram,
}

fn analysis_metrics() -> &'static AnalysisMetrics {
    static METRICS: OnceLock<AnalysisMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = chora_telemetry::metrics::registry();
        AnalysisMetrics {
            analyses: registry.counter("chora_analyses_total", "Programs analyzed."),
            cache_hits: registry.counter(
                "chora_analysis_cache_hits_total",
                "Components restored from the summary cache.",
            ),
            cache_misses: registry.counter(
                "chora_analysis_cache_misses_total",
                "Components summarized from scratch against a configured store.",
            ),
            tasks: registry.counter(
                "chora_scheduler_tasks_total",
                "Scheduler tasks executed (component summarizations and assertion passes).",
            ),
            queue_wait: registry.histogram(
                "chora_scheduler_queue_wait_ms",
                "Time tasks spent in the ready queue before a worker picked them up.",
            ),
        }
    })
}

/// Runs tasks `0..dep_count.len()` on up to `jobs` scoped worker threads,
/// releasing each task only after all its dependencies finished, and returns
/// the results in task-id order.
///
/// `dependents[d]` lists the tasks waiting on `d`; `dep_count[t]` is the
/// number of distinct tasks `t` waits on.  Tasks with a zero count seed the
/// ready queue (in id order); when a worker finishes a task it decrements
/// each dependent's count and enqueues the ones that drain to zero.  Workers
/// block on a condvar while the queue is empty and work remains — there is
/// no spinning and no level barrier: the only idle time is a genuinely empty
/// ready queue.  The caller re-assembles results by task id, so the output
/// is independent of scheduling.  `jobs <= 1` (or a single task) degrades to
/// a plain sequential loop in id order, which the caller guarantees is
/// topological.
///
/// A panicking task marks the run poisoned and wakes every worker (so none
/// deadlocks waiting for tasks that will never arrive) before propagating
/// the panic through the scope join.
fn run_ready_queue<T, F>(
    jobs: usize,
    dependents: &[Vec<usize>],
    dep_count: Vec<usize>,
    f: F,
) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    let n = dep_count.len();
    let metrics = analysis_metrics();
    metrics.tasks.add(n as u64);
    if jobs <= 1 || n <= 1 {
        // Sequential: the caller's thread is the only lane; tasks never
        // wait in a queue.
        return (0..n)
            .map(|t| {
                let _task = trace::task_scope(t as u64, 0);
                f(t)
            })
            .collect();
    }
    let workers = jobs.min(n);
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let counts: Vec<AtomicUsize> = dep_count.into_iter().map(AtomicUsize::new).collect();
    // When each task entered the ready queue (trace-epoch ns), so the pop
    // side can report queue-wait per task — to the `queue_wait` histogram
    // always, and onto the task's trace span when a session is recording.
    let enqueue_ns: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let seeds: VecDeque<usize> = counts
        .iter()
        .enumerate()
        .filter(|(_, c)| c.load(Ordering::Relaxed) == 0)
        .map(|(t, _)| t)
        .collect();
    let seed_ns = trace::now_ns();
    for &t in &seeds {
        enqueue_ns[t].store(seed_ns, Ordering::Relaxed);
    }
    let ready: Mutex<VecDeque<usize>> = Mutex::new(seeds);
    let available = Condvar::new();
    let done = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let slots = &slots;
        let counts = &counts;
        let enqueue_ns = &enqueue_ns;
        let ready = &ready;
        let available = &available;
        let done = &done;
        let poisoned = &poisoned;
        let f = &f;
        for w in 0..workers {
            scope.spawn(move || {
                trace::claim_lane(&format!("worker-{w}"));
                loop {
                    let task = {
                        let mut queue = ready.lock().expect("scheduler queue lock");
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                break None;
                            }
                            if let Some(t) = queue.pop_front() {
                                break Some(t);
                            }
                            if done.load(Ordering::Acquire) == n {
                                break None;
                            }
                            queue = available.wait(queue).expect("scheduler queue lock");
                        }
                    };
                    let Some(t) = task else { return };
                    let wait_ns =
                        trace::now_ns().saturating_sub(enqueue_ns[t].load(Ordering::Relaxed));
                    metrics.queue_wait.observe_ms(wait_ns as f64 / 1e6);
                    let value = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _task = trace::task_scope(t as u64, wait_ns);
                        f(t)
                    })) {
                        Ok(value) => value,
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            drop(ready.lock());
                            available.notify_all();
                            std::panic::resume_unwind(payload);
                        }
                    };
                    let _ = slots[t].set(value);
                    let newly_ready: Vec<usize> = dependents[t]
                        .iter()
                        .filter(|&&d| counts[d].fetch_sub(1, Ordering::AcqRel) == 1)
                        .copied()
                        .collect();
                    if !newly_ready.is_empty() {
                        let now = trace::now_ns();
                        for &d in &newly_ready {
                            enqueue_ns[d].store(now, Ordering::Relaxed);
                        }
                    }
                    // Publish under the lock so a worker between its
                    // queue/done check and its `wait` cannot miss the
                    // wake-up.
                    let mut queue = ready.lock().expect("scheduler queue lock");
                    queue.extend(newly_ready.iter().copied());
                    let finished = done.fetch_add(1, Ordering::AcqRel) + 1 == n;
                    drop(queue);
                    if finished || !newly_ready.is_empty() {
                        available.notify_all();
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task completed"))
        .collect()
}

/// Extracts, from a recursive procedure's summary, an upper bound (as a
/// [`Term`] over pre-state variables) on the final value of `var'` — the
/// primary interface used for resource-bound extraction (Table 1).
pub fn upper_bound_on_post(summary: &ProcedureSummary, var: &Symbol) -> Option<Term> {
    let primed = var.primed();
    let mut best: Option<Term> = None;
    // Prefer height-indexed bound facts (they capture the recursion).
    for fact in &summary.bound_facts {
        let Some(bound) = &fact.bound else { continue };
        // τ must be of the form  var' + rest  with `rest` over pre-state vars.
        let coeff = fact.term.coefficient(&chora_expr::Monomial::var(primed));
        if !coeff.is_one() {
            continue;
        }
        let rest = &fact.term - &Polynomial::var(primed);
        if rest.symbols().iter().any(|s| s.is_post()) {
            continue;
        }
        // var' ≤ bound − rest
        let bound_term = Term::add(vec![bound.clone(), polynomial_to_term(&(-&rest))]);
        best = Some(match best {
            None => bound_term,
            Some(existing) => existing.min_estimate(bound_term),
        });
    }
    if best.is_some() {
        return best;
    }
    // Fall back to the polyhedral summary (non-recursive procedures).
    let mut keep: BTreeSet<Symbol> = summary
        .formula
        .symbols()
        .into_iter()
        .filter(|s| !s.is_post() || s == &primed)
        .collect();
    keep.insert(primed);
    let hull = summary.formula.abstract_hull(&keep);
    hull.upper_bounds_on(&primed)
        .first()
        .map(polynomial_to_term)
}

/// A small helper trait to pick the "smaller-looking" of two bound terms
/// (used only to prefer tighter bounds for reporting; soundness does not
/// depend on the choice).
trait MinEstimate {
    fn min_estimate(self, other: Term) -> Term;
}

impl MinEstimate for Term {
    fn min_estimate(self, other: Term) -> Term {
        // Prefer the syntactically smaller term as a heuristic.
        if format!("{other}").len() < format!("{self}").len() {
            other
        } else {
            self
        }
    }
}

/// Returns the symbol conventionally used for a procedure's return value in
/// summaries (`ret`, whose primed version is `ret'`).
pub fn return_symbol() -> Symbol {
    return_variable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use chora_ir::{Cond, Expr};

    /// hanoi-shaped recursive cost model plus a non-recursive helper chain.
    fn cached_program(leaf_increment: i64) -> Program {
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new(
            "leaf",
            &["n"],
            &[],
            Stmt::assign("cost", Expr::var("cost").add(Expr::int(leaf_increment))),
        ));
        prog.add_procedure(Procedure::new(
            "hanoi",
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                Stmt::if_then(
                    Cond::gt(Expr::var("n"), Expr::int(0)),
                    Stmt::seq(vec![
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                    ]),
                ),
            ]),
        ));
        prog.add_procedure(Procedure::new(
            "main",
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::call("leaf", vec![Expr::var("n")]),
                Stmt::call("hanoi", vec![Expr::var("n")]),
                Stmt::Assert(
                    Cond::ge(Expr::var("cost"), Expr::int(0)).or(Cond::Nondet),
                    "trivial".to_string(),
                ),
            ]),
        ));
        prog
    }

    fn same_analysis(a: &AnalysisResult, b: &AnalysisResult) {
        assert_eq!(a.summaries, b.summaries);
        assert_eq!(a.assertions, b.assertions);
    }

    #[test]
    fn warm_run_hits_every_component_and_matches_cold() {
        let program = cached_program(1);
        let analyzer = Analyzer::new();
        let plain = analyzer.analyze(&program);
        let store = MemoryStore::new();
        let cold = analyzer.analyze_with_store(&program, Some(&store));
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses, 3);
        same_analysis(&plain, &cold);
        let warm = analyzer.analyze_with_store(&program, Some(&store));
        assert_eq!(warm.cache.hits, 3, "second run must be 100% hits");
        assert_eq!(warm.cache.misses, 0);
        assert_eq!(warm.cache.evictions, 0);
        same_analysis(&plain, &warm);
        // A cache hit skips the summarize and solve phases entirely.
        assert_eq!(warm.timings.summarize_ms, 0.0);
        assert_eq!(warm.timings.solve_ms, 0.0);
    }

    #[test]
    fn editing_a_leaf_resummarizes_only_the_dirty_cone() {
        let analyzer = Analyzer::new();
        let store = MemoryStore::new();
        let _ = analyzer.analyze_with_store(&cached_program(1), Some(&store));
        // Edit `leaf` (a single constant): `leaf` and its caller `main` are
        // dirty, the independent `hanoi` component stays cached.
        let edited = cached_program(2);
        let warm = analyzer.analyze_with_store(&edited, Some(&store));
        assert_eq!(warm.cache.hits, 1, "hanoi must be restored from cache");
        assert_eq!(warm.cache.misses, 2, "leaf and main must be re-summarized");
        same_analysis(&warm, &analyzer.analyze(&edited));
    }

    #[test]
    fn prepending_a_procedure_keeps_every_existing_component_warm() {
        let analyzer = Analyzer::new();
        let store = MemoryStore::new();
        let cold = analyzer.analyze_with_store(&cached_program(1), Some(&store));
        assert_eq!(cold.cache.misses, 3);
        // The same three procedures, with an unrelated one slotted in
        // first: every preexisting component shifts one scope down the
        // bottom-up schedule, but their cones are unchanged — all three
        // must hit, and only the newcomer is summarized.
        let mut shifted = Program::new();
        shifted.add_global("cost");
        shifted.add_procedure(Procedure::new(
            "newcomer",
            &["n"],
            &[],
            Stmt::assign("cost", Expr::var("cost").add(Expr::int(9))),
        ));
        for proc in cached_program(1).procedures {
            shifted.add_procedure(proc);
        }
        let warm = analyzer.analyze_with_store(&shifted, Some(&store));
        assert_eq!(
            warm.cache.hits, 3,
            "order shift must not evict unchanged cones: {}",
            warm.cache
        );
        assert_eq!(warm.cache.misses, 1, "only `newcomer` is new");
        assert_eq!(warm.cache.evictions, 0);
        same_analysis(&warm, &analyzer.analyze(&shifted));
    }

    #[test]
    fn restored_fresh_symbols_are_rescoped_into_the_new_schedule() {
        // Division inside an `assume` leaves a fresh quotient symbol in the
        // callee's summary, which leaks into its callers' summaries — the
        // case where restored entries genuinely mention foreign scopes and
        // rescope-on-load must translate them component by component.
        let build = |prepend: bool| {
            let mut prog = Program::new();
            prog.add_global("cost");
            if prepend {
                prog.add_procedure(Procedure::new(
                    "pad",
                    &["n"],
                    &[],
                    Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                ));
            }
            prog.add_procedure(Procedure::new(
                "halver",
                &["n"],
                &[],
                Stmt::seq(vec![
                    Stmt::Assume(Cond::gt(Expr::var("n").div(2), Expr::int(0))),
                    Stmt::assign("cost", Expr::var("cost").add(Expr::var("n"))),
                ]),
            ));
            prog.add_procedure(Procedure::new(
                "caller",
                &["n"],
                &[],
                Stmt::call("halver", vec![Expr::var("n")]),
            ));
            prog.add_procedure(Procedure::new(
                "main",
                &["n"],
                &[],
                Stmt::seq(vec![
                    Stmt::call("caller", vec![Expr::var("n")]),
                    Stmt::Assert(
                        Cond::ge(Expr::var("cost"), Expr::int(0)).or(Cond::Nondet),
                        "trivial".to_string(),
                    ),
                ]),
            ));
            prog
        };
        let analyzer = Analyzer::new();
        let store = MemoryStore::new();
        let cold = analyzer.analyze_with_store(&build(false), Some(&store));
        assert_eq!(cold.cache.misses, 3);
        // The summaries really do carry fresh symbols (the quotient), or
        // this test would not exercise the rescope path at all.
        assert!(
            cold.summaries["caller"]
                .formula
                .symbols()
                .iter()
                .any(|s| matches!(s.kind(), chora_expr::SymbolKind::Fresh { .. })),
            "expected a leaked fresh quotient symbol in caller's summary"
        );
        let warm = analyzer.analyze_with_store(&build(true), Some(&store));
        assert_eq!(warm.cache.hits, 3, "shifted cones must stay warm");
        assert_eq!(warm.cache.misses, 1);
        assert_eq!(warm.cache.evictions, 0);
        // Bit-compatible with a cold run of the shifted program — including
        // the rescoped fresh symbols inside the restored summaries.
        same_analysis(&warm, &analyzer.analyze(&build(true)));
    }

    #[test]
    fn a_batch_reproduces_each_solo_run_exactly() {
        let analyzer = Analyzer::with_config(AnalysisConfig {
            jobs: 4,
            ..AnalysisConfig::default()
        });
        let a = cached_program(1);
        let b = cached_program(7);
        // A third program with a different shape (extra level) so the
        // merged rounds are ragged.
        let mut c = cached_program(3);
        c.add_procedure(Procedure::new(
            "outer",
            &["n"],
            &[],
            Stmt::call("main", vec![Expr::var("n")]),
        ));
        let solo: Vec<AnalysisResult> = [&a, &b, &c].iter().map(|p| analyzer.analyze(p)).collect();
        let batch = analyzer.analyze_batch_with_store(&[&a, &b, &c], None);
        assert_eq!(batch.len(), 3);
        for (s, t) in solo.iter().zip(&batch) {
            same_analysis(s, t);
        }
        assert!(analyzer.analyze_batch_with_store(&[], None).is_empty());
    }

    #[test]
    fn a_batch_shares_the_store_across_its_members() {
        let analyzer = Analyzer::new();
        let store = MemoryStore::new();
        let a = cached_program(1);
        let b = cached_program(5);
        // Cold batch: all probes of a round happen before the round's
        // stores land, so even `hanoi` (byte-identical in both programs,
        // same level) is computed twice — per-member counters stay exactly
        // those of solo runs against an empty store.
        let cold = analyzer.analyze_batch_with_store(&[&a, &b], Some(&store));
        assert_eq!(cold[0].cache.hits, 0);
        assert_eq!(cold[0].cache.misses, 3);
        assert_eq!(cold[1].cache.hits, 0);
        assert_eq!(cold[1].cache.misses, 3);
        same_analysis(&cold[0], &analyzer.analyze(&a));
        same_analysis(&cold[1], &analyzer.analyze(&b));
        // Warm batch: every component of every member restores.
        let warm = analyzer.analyze_batch_with_store(&[&a, &b], Some(&store));
        assert_eq!(warm[0].cache.hits, 3);
        assert_eq!(warm[1].cache.hits, 3);
        same_analysis(&warm[0], &cold[0]);
        same_analysis(&warm[1], &cold[1]);
    }

    #[test]
    fn config_change_invalidates_the_cache() {
        let program = cached_program(1);
        let store = MemoryStore::new();
        let _ = Analyzer::new().analyze_with_store(&program, Some(&store));
        let ablated = Analyzer::with_config(AnalysisConfig {
            enable_depth_bounds: false,
            ..AnalysisConfig::default()
        });
        let run = ablated.analyze_with_store(&program, Some(&store));
        assert_eq!(run.cache.hits, 0, "different knobs must never hit");
        // ... while a jobs-only change hits fully (jobs does not affect
        // the result).
        let parallel = Analyzer::with_config(AnalysisConfig {
            jobs: 4,
            ..AnalysisConfig::default()
        });
        let par = parallel.analyze_with_store(&program, Some(&store));
        assert_eq!(par.cache.hits, 3);
    }
}
