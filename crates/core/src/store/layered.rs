//! The composable tier layer: [`StoreTier`] is one cache level moving
//! validated serialized entries, [`Layered`] stacks two of them with
//! explicit promote-on-hit and write-through policies.

use super::StoreStats;
use crate::analysis::ProcedureSummary;
use crate::cache::ScopeResolver;
use chora_ir::Fingerprint;
use std::time::Duration;

/// A successful tier probe: the decoded summaries, plus — when the tier
/// sits behind others — the validated serialized bytes and the entry's
/// true age, so a nearer tier can adopt the entry without re-encoding and
/// without resetting its expiry clock.
pub struct TierHit {
    /// The summaries, decoded and rescoped into the current run.
    pub summaries: Vec<ProcedureSummary>,
    /// `(text, age)` for promotion into nearer tiers; `None` when the tier
    /// is the innermost promotion target (nothing sits in front of it).
    pub promote: Option<(String, Option<Duration>)>,
}

/// One cache level in a layered store.
///
/// Unlike [`super::SummaryStore`] (the driver-facing trait, which encodes
/// and decodes), a tier receives entries already serialized and performs
/// its own validation on the way out — so corruption is detected, counted,
/// and evicted *at the tier where it happened*, and a corrupt near-tier
/// entry falls through to the tiers behind it.
pub trait StoreTier: Sync {
    /// Probes the tier.  Implementations count their own hit/miss/latency.
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit>;

    /// Writes an already-encoded entry.  `age` backdates the expiry clock
    /// (entries promoted from a farther tier keep their true age);
    /// `scopes` carries run context some tiers need (the remote tier tags
    /// uploads with the run's source program).
    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        age: Option<Duration>,
        scopes: &dyn ScopeResolver,
    );

    /// The raw serialized entry under `key`, envelope-checked but not
    /// decoded — what a summary server serves to peers.  Network tiers
    /// return `None`: a daemon answering `/v1/summaries` must only consult
    /// its *local* tiers, or a misconfigured ring would forward requests
    /// in a loop.
    fn load_text(&self, key: &Fingerprint) -> Option<String>;

    /// Appends this tier's statistics snapshot(s), nearest first.
    fn append_stats(&self, out: &mut Vec<StoreStats>);
}

/// A tier that may be absent: probes miss, writes vanish, stats are empty.
impl<T: StoreTier> StoreTier for Option<T> {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit> {
        self.as_ref().and_then(|tier| tier.load(key, scopes))
    }

    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        age: Option<Duration>,
        scopes: &dyn ScopeResolver,
    ) {
        if let Some(tier) = self {
            tier.store(key, text, age, scopes);
        }
    }

    fn load_text(&self, key: &Fingerprint) -> Option<String> {
        self.as_ref().and_then(|tier| tier.load_text(key))
    }

    fn append_stats(&self, out: &mut Vec<StoreStats>) {
        if let Some(tier) = self {
            tier.append_stats(out);
        }
    }
}

/// Two tiers composed into one: probe `near` first, fall back to `far`.
///
/// Policies are explicit and independently switchable:
///
/// * **promote-on-hit** (default on) — a `far` hit is copied into `near`,
///   carrying the entry's true age so promotion never extends a lifetime.
/// * **write-through** (default on) — stores land in both tiers; switched
///   off, `far` becomes a read-only source (e.g. a peer's cache mounted
///   read-only).
///
/// `Layered` is itself a [`StoreTier`], so stacks nest: the standard
/// [`super::TieredStore`] is `Layered<MemTier, Layered<Option<DiskTier>,
/// Option<RemoteStore>>>`.
pub struct Layered<N, F> {
    /// The nearer (faster, smaller) tier, probed first.
    pub near: N,
    /// The farther (slower, larger) tier, the fallback.
    pub far: F,
    promote_on_hit: bool,
    write_through: bool,
}

impl<N, F> Layered<N, F> {
    /// Composes two tiers with both policies on.
    pub fn new(near: N, far: F) -> Layered<N, F> {
        Layered {
            near,
            far,
            promote_on_hit: true,
            write_through: true,
        }
    }

    /// Sets whether far-tier hits are copied into the near tier.
    pub fn promote_on_hit(mut self, yes: bool) -> Layered<N, F> {
        self.promote_on_hit = yes;
        self
    }

    /// Sets whether stores propagate to the far tier.
    pub fn write_through(mut self, yes: bool) -> Layered<N, F> {
        self.write_through = yes;
        self
    }
}

impl<N: StoreTier, F: StoreTier> StoreTier for Layered<N, F> {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit> {
        if let Some(hit) = self.near.load(key, scopes) {
            return Some(hit);
        }
        let hit = self.far.load(key, scopes)?;
        if self.promote_on_hit {
            if let Some((text, age)) = &hit.promote {
                self.near.store(key, text, *age, scopes);
            }
        }
        // Keep the promotion payload: in a deeper stack, even-nearer tiers
        // adopt the entry too.
        Some(hit)
    }

    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        age: Option<Duration>,
        scopes: &dyn ScopeResolver,
    ) {
        self.near.store(key, text, age, scopes);
        if self.write_through {
            self.far.store(key, text, age, scopes);
        }
    }

    fn load_text(&self, key: &Fingerprint) -> Option<String> {
        self.near.load_text(key).or_else(|| self.far.load_text(key))
    }

    fn append_stats(&self, out: &mut Vec<StoreStats>) {
        self.near.append_stats(out);
        self.far.append_stats(out);
    }
}
