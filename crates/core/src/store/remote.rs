//! The remote fleet-cache tier: summaries fetched from and published to a
//! peer daemon's store over `GET`/`PUT /v1/summaries/{key}`.
//!
//! Entries are scope-canonical on the wire (the same form they take on
//! disk), so any daemon's cache can serve any peer's analysis of any
//! program — the consuming side rescopes on decode exactly as it does for
//! a local disk hit.  Multiple cache daemons form a static ring via
//! rendezvous hashing: each key deterministically picks one owner, so the
//! fleet shares one logical cache without coordination.

use super::layered::{StoreTier, TierHit};
use super::{load_histogram, StoreStats};
use crate::cache::{decode_entry, ScopeResolver};
use chora_ir::Fingerprint;
use chora_server::client::{Client, ClientConfig};
use chora_telemetry::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Connection policy of a [`RemoteStore`].
#[derive(Clone, Copy, Debug)]
pub struct RemoteConfig {
    /// Bound on establishing a TCP connection to a cache daemon.  A cache
    /// probe must never stall an analysis the way a dead-but-routable peer
    /// would under the OS default (minutes).
    pub connect_timeout: Duration,
    /// Bound on each request once connected.
    pub io_timeout: Duration,
    /// After a connection-level failure the target is considered down and
    /// skipped, without probing, for this long.
    pub cooldown: Duration,
    /// Idle keep-alive connections retained per target.
    pub pool_per_target: usize,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            cooldown: Duration::from_secs(5),
            pool_per_target: 8,
        }
    }
}

/// One cache daemon in the ring: its address, a small pool of keep-alive
/// connections, and a circuit breaker.
struct Target {
    addr: String,
    pool: Mutex<Vec<Client>>,
    /// When set, the target failed recently and is skipped until the
    /// instant passes.
    down_until: Mutex<Option<Instant>>,
}

impl Target {
    fn is_down(&self) -> bool {
        let mut down = self.down_until.lock().expect("remote target breaker lock");
        match *down {
            Some(until) if Instant::now() < until => true,
            Some(_) => {
                // Cooldown over: close the breaker, next probe is live.
                *down = None;
                false
            }
            None => false,
        }
    }

    fn mark_down(&self, cooldown: Duration) {
        *self.down_until.lock().expect("remote target breaker lock") =
            Some(Instant::now() + cooldown);
    }
}

/// The L3 tier: a peer daemon (or static set of daemons) holding the
/// fleet's shared summary cache.
///
/// * `load` asks the key's owner for the entry and validates the response
///   exactly as a disk read would (corrupt payloads are counted, never
///   trusted) — a hit carries the raw text upward so nearer tiers adopt it.
/// * `store` publishes write-through, tagged with the source program's
///   fingerprint so the cache daemon can attribute cross-program reuse.
/// * `load_text` is structurally `None`: a daemon serving
///   `/v1/summaries/{key}` consults only its local tiers, so daemons
///   pointing at each other can never forward a request in a loop.
/// * Unreachable targets trip a per-target circuit breaker: the analysis
///   proceeds on the local tiers and the skip is counted, not retried in
///   the hot path.
pub struct RemoteStore {
    targets: Vec<Target>,
    config: RemoteConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    errors: AtomicU64,
    skipped: AtomicU64,
    load_hist: &'static Histogram,
}

impl RemoteStore {
    /// A remote tier over `spec`: one or more daemon addresses, separated
    /// by commas (`host:port[,host:port...]`, an optional `http://` prefix
    /// and trailing `/` are tolerated).  Returns `None` when `spec`
    /// contains no usable address.
    pub fn from_spec(spec: &str, config: RemoteConfig) -> Option<RemoteStore> {
        let targets: Vec<Target> = spec
            .split(',')
            .map(|part| {
                part.trim()
                    .trim_start_matches("http://")
                    .trim_end_matches('/')
            })
            .filter(|addr| !addr.is_empty())
            .map(|addr| Target {
                addr: addr.to_string(),
                pool: Mutex::new(Vec::new()),
                down_until: Mutex::new(None),
            })
            .collect();
        if targets.is_empty() {
            return None;
        }
        Some(RemoteStore {
            targets,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            load_hist: load_histogram("remote"),
        })
    }

    /// The configured daemon addresses.
    pub fn addrs(&self) -> Vec<&str> {
        self.targets.iter().map(|t| t.addr.as_str()).collect()
    }

    /// Loads answered by the remote cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads the remote cache did not have (`404`).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries published to the remote cache.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Responses rejected by validation (wire corruption, or a peer on a
    /// different encoding).
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Requests that failed at the transport or protocol level.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Probes skipped outright because the key's owner was in cooldown —
    /// the "analysis proceeded without its remote tier" signal.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// The ring owner of `key` among targets not in cooldown: highest
    /// rendezvous score wins, so each key has one deterministic owner and
    /// losing a target only remaps that target's share of the keyspace.
    fn owner(&self, key: &Fingerprint) -> Option<&Target> {
        self.targets
            .iter()
            .filter(|t| !t.is_down())
            .max_by_key(|t| rendezvous_score(&t.addr, key))
    }

    /// Runs `request` on a pooled connection to `target`, returning the
    /// connection to the pool on success and tripping the breaker on
    /// connection-level failure.
    fn with_client<R>(
        &self,
        target: &Target,
        request: impl FnOnce(&mut Client) -> std::io::Result<R>,
    ) -> std::io::Result<R> {
        let mut client = target
            .pool
            .lock()
            .expect("remote target pool lock")
            .pop()
            .unwrap_or_else(|| {
                Client::with_config(
                    &target.addr,
                    ClientConfig {
                        connect_timeout: Some(self.config.connect_timeout),
                        io_timeout: self.config.io_timeout,
                        ..ClientConfig::default()
                    },
                )
            });
        match request(&mut client) {
            Ok(result) => {
                let mut pool = target.pool.lock().expect("remote target pool lock");
                if pool.len() < self.config.pool_per_target {
                    pool.push(client);
                }
                Ok(result)
            }
            Err(e) => {
                target.mark_down(self.config.cooldown);
                Err(e)
            }
        }
    }
}

/// Rendezvous (highest-random-weight) score of `addr` for `key`: FNV-1a
/// over the address and the key bytes.  Stable across processes and
/// restarts, no dependency on target order.
fn rendezvous_score(addr: &str, key: &Fingerprint) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in addr.as_bytes().iter().chain(&key.0.to_le_bytes()) {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl StoreTier for RemoteStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit> {
        let Some(target) = self.owner(key) else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let started = Instant::now();
        let path = match scopes.source_tag() {
            Some(src) => format!("/v1/summaries/{}?src={}", key.to_hex(), src.to_hex()),
            None => format!("/v1/summaries/{}", key.to_hex()),
        };
        let result = match self.with_client(target, |client| client.get(&path)) {
            Ok((200, body)) => match decode_entry(&body, key, scopes) {
                Some(summaries) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(TierHit {
                        summaries,
                        // No age: the fleet entry was just vended, let the
                        // local tiers age it from now.
                        promote: Some((body, None)),
                    })
                }
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            Ok((404, _)) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Ok((_, _)) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        self.load_hist
            .observe_ms(started.elapsed().as_secs_f64() * 1e3);
        result
    }

    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        _age: Option<Duration>,
        scopes: &dyn ScopeResolver,
    ) {
        let Some(target) = self.owner(key) else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let path = match scopes.source_tag() {
            Some(src) => format!("/v1/summaries/{}?src={}", key.to_hex(), src.to_hex()),
            None => format!("/v1/summaries/{}", key.to_hex()),
        };
        match self.with_client(target, |client| client.put(&path, text)) {
            Ok((200, _)) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
            }
            Ok((_, _)) | Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Always `None`: a daemon answering `/v1/summaries/{key}` must serve
    /// from its *local* tiers only, or two daemons configured as each
    /// other's remote would bounce a missing key back and forth.
    fn load_text(&self, _key: &Fingerprint) -> Option<String> {
        None
    }

    fn append_stats(&self, out: &mut Vec<StoreStats>) {
        out.push(StoreStats {
            hits: self.hits(),
            misses: self.misses(),
            stores: self.stores(),
            corrupt_evictions: self.corrupt(),
            errors: self.errors(),
            skipped: self.skipped(),
            ..StoreStats::named("remote")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_tolerate_schemes_slashes_and_blanks() {
        let remote = RemoteStore::from_spec(
            "http://127.0.0.1:7561/, 127.0.0.1:7562 ,",
            RemoteConfig::default(),
        )
        .expect("two targets");
        assert_eq!(remote.addrs(), vec!["127.0.0.1:7561", "127.0.0.1:7562"]);
        assert!(RemoteStore::from_spec(" , ", RemoteConfig::default()).is_none());
    }

    #[test]
    fn rendezvous_owner_is_stable_and_spreads_keys() {
        let remote = RemoteStore::from_spec("a:1,b:1,c:1", RemoteConfig::default()).expect("ring");
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u128 {
            let key = Fingerprint(i * 0x9e37_79b9_7f4a_7c15);
            let owner = remote.owner(&key).expect("an owner").addr.clone();
            assert_eq!(
                remote.owner(&key).expect("same owner").addr,
                owner,
                "ownership must be deterministic"
            );
            seen.insert(owner);
        }
        assert_eq!(seen.len(), 3, "64 keys must spread across all 3 targets");
    }

    #[test]
    fn all_targets_down_means_skip_not_stall() {
        let remote = RemoteStore::from_spec("a:1", RemoteConfig::default()).expect("ring");
        remote.targets[0].mark_down(Duration::from_secs(60));
        let key = Fingerprint(7);
        assert!(remote.owner(&key).is_none());
        assert!(remote.load(&key, &crate::cache::NullScopes).is_none());
        assert_eq!(remote.skipped(), 1);
        assert_eq!(remote.errors(), 0, "no connection was attempted");
    }
}
