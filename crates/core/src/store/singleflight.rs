//! Single-flight miss coalescing: when many workers miss the same key at
//! once, one computes and the rest wait for its store, instead of all of
//! them redundantly analyzing the same component.
//!
//! # Why flight groups
//!
//! The analysis pipeline probes the store inside parallel worker tasks but
//! defers every `store` to the sequential fold — so within one analysis
//! run, a worker that waited on a sibling's lease would wait on a store
//! that cannot happen until the fold, which cannot start until the worker
//! finishes: deadlock.  Each run therefore carries a *flight group*
//! ([`crate::cache::ScopeResolver::flight_group`]); a miss on a key leased
//! by the *same* group is treated as a plain miss (the fold will store it
//! once), and a run that already holds a lease anywhere never waits on
//! another group (two runs waiting on each other's leases would otherwise
//! deadlock — refusing makes every wait chain end at a group that is
//! actively computing).  Ungrouped callers (group 0) always wait.  Every
//! wait is additionally time-bounded, and leases outliving a generous
//! multiple of that bound are presumed abandoned and stolen, so a crashed
//! leader degrades to a stall, never a hang.

use super::{StoreStats, SummaryStore};
use crate::analysis::ProcedureSummary;
use crate::cache::ScopeResolver;
use chora_ir::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// An in-progress computation of one key.
struct Lease {
    group: u64,
    taken: Instant,
}

#[derive(Default)]
struct FlightState {
    leases: HashMap<Fingerprint, Lease>,
    /// How many leases each (nonzero) group currently holds — the
    /// "is this run actively computing something" signal behind the
    /// never-wait-while-holding rule.
    held_by_group: HashMap<u64, usize>,
}

/// Cumulative [`SingleFlight`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightCounters {
    /// Misses that took the lease (the caller computes).
    pub leads: u64,
    /// Misses that blocked on another flight's lease.
    pub waits: u64,
    /// Waits that ended with the leader's result adopted from the store —
    /// each one is a whole component analysis that did not run.
    pub wait_hits: u64,
    /// Waits abandoned at the time bound (the caller computed after all).
    pub wait_timeouts: u64,
    /// Misses that could have waited but did not, because the caller's
    /// group already held a lease (waiting could deadlock two runs).
    pub refused: u64,
}

/// A [`SummaryStore`] layer that coalesces concurrent misses per key.
pub struct SingleFlight<S> {
    inner: S,
    state: Mutex<FlightState>,
    cond: Condvar,
    /// Upper bound on the total time one `load` spends waiting.
    wait_timeout: Duration,
    /// Leases older than this are presumed abandoned and stolen.
    stale_after: Duration,
    leads: AtomicU64,
    waits: AtomicU64,
    wait_hits: AtomicU64,
    wait_timeouts: AtomicU64,
    refused: AtomicU64,
}

impl<S> SingleFlight<S> {
    /// Wraps `inner` with the default 10-second wait bound.
    pub fn new(inner: S) -> SingleFlight<S> {
        SingleFlight::with_wait_timeout(inner, Duration::from_secs(10))
    }

    /// Wraps `inner` with an explicit wait bound; leases are presumed
    /// abandoned after three times that bound.
    pub fn with_wait_timeout(inner: S, wait_timeout: Duration) -> SingleFlight<S> {
        SingleFlight {
            inner,
            state: Mutex::new(FlightState::default()),
            cond: Condvar::new(),
            wait_timeout,
            stale_after: wait_timeout * 3,
            leads: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            wait_hits: AtomicU64::new(0),
            wait_timeouts: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Snapshot of the coalescing counters.
    pub fn counters(&self) -> FlightCounters {
        FlightCounters {
            leads: self.leads.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            wait_hits: self.wait_hits.load(Ordering::Relaxed),
            wait_timeouts: self.wait_timeouts.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
        }
    }

    /// Takes the lease on `key` for `group` under a held `state` lock.
    fn take_lease(&self, state: &mut FlightState, key: &Fingerprint, group: u64) {
        if let Some(old) = state.leases.insert(
            *key,
            Lease {
                group,
                taken: Instant::now(),
            },
        ) {
            release_hold(state, old.group);
        }
        if group != 0 {
            *state.held_by_group.entry(group).or_insert(0) += 1;
        }
        self.leads.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drops one lease from `group`'s hold count.
fn release_hold(state: &mut FlightState, group: u64) {
    if group == 0 {
        return;
    }
    if let Some(count) = state.held_by_group.get_mut(&group) {
        *count -= 1;
        if *count == 0 {
            state.held_by_group.remove(&group);
        }
    }
}

impl<S: SummaryStore> SummaryStore for SingleFlight<S> {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        if let Some(summaries) = self.inner.load(key, scopes) {
            return Some(summaries);
        }
        let group = scopes.flight_group();
        let deadline = Instant::now() + self.wait_timeout;
        let mut counted_wait = false;
        let mut state = self.state.lock().expect("single-flight state lock");
        loop {
            let lease = state.leases.get(key).map(|l| (l.group, l.taken));
            match lease {
                None => {
                    self.take_lease(&mut state, key, group);
                    return None;
                }
                Some((_, taken)) if taken.elapsed() > self.stale_after => {
                    // The leader is presumed gone (crashed, or its store
                    // never ran); steal the lease and compute.
                    self.take_lease(&mut state, key, group);
                    return None;
                }
                Some((holder, _)) if group != 0 && holder == group => {
                    // Our own run computes this key; its store happens in
                    // the fold after we return.  A plain miss.
                    return None;
                }
                Some(_)
                    if group != 0 && state.held_by_group.get(&group).copied().unwrap_or(0) > 0 =>
                {
                    // We hold a lease elsewhere: waiting here could chain
                    // two runs into a cycle.  Compute redundantly instead.
                    self.refused.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Some(_) => {
                    if !counted_wait {
                        self.waits.fetch_add(1, Ordering::Relaxed);
                        counted_wait = true;
                    }
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        self.wait_timeouts.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    let (guard, _) = self
                        .cond
                        .wait_timeout(state, remaining)
                        .expect("single-flight state lock");
                    state = guard;
                    if state.leases.contains_key(key) {
                        continue;
                    }
                    // The lease was released: the leader stored (adopt its
                    // result) or abandoned (become the leader ourselves).
                    drop(state);
                    if let Some(summaries) = self.inner.load(key, scopes) {
                        self.wait_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(summaries);
                    }
                    state = self.state.lock().expect("single-flight state lock");
                }
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        // Inner store strictly first: a waiter woken by the lease release
        // must find the entry on its re-probe.
        self.inner.store(key, summaries, scopes);
        let mut state = self.state.lock().expect("single-flight state lock");
        if let Some(lease) = state.leases.remove(key) {
            release_hold(&mut state, lease.group);
            self.cond.notify_all();
        }
    }

    fn stats(&self) -> Vec<StoreStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::summary;
    use super::super::MemoryStore;
    use super::*;
    use crate::cache::NullScopes;

    /// A resolver that only carries a flight group (no scopes).
    struct Grouped(u64);

    impl ScopeResolver for Grouped {
        fn scope_of(&self, _key: &Fingerprint) -> Option<u32> {
            None
        }
        fn key_of(&self, _scope: u32) -> Option<Fingerprint> {
            None
        }
        fn flight_group(&self) -> u64 {
            self.0
        }
    }

    fn spin_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while !done() {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    #[test]
    fn thundering_herd_computes_once_and_everyone_adopts() {
        const HERD: usize = 8;
        let flight = SingleFlight::new(MemoryStore::new());
        let key = Fingerprint(0x5eed);
        // The main thread misses first and takes the lease.
        assert!(flight.load(&key, &NullScopes).is_none());
        assert_eq!(flight.counters().leads, 1);
        std::thread::scope(|scope| {
            let herd: Vec<_> = (0..HERD - 1)
                .map(|_| {
                    scope.spawn(|| {
                        flight
                            .load(&key, &NullScopes)
                            .expect("waiter adopts the leader's result")
                    })
                })
                .collect();
            // Every waiter must be parked before the leader stores, or the
            // coalesce would be a race.
            assert!(
                spin_until(5_000, || flight.counters().waits == (HERD - 1) as u64),
                "herd never parked: {:?}",
                flight.counters()
            );
            flight.store(&key, &[summary("f")], &NullScopes);
            for waiter in herd {
                assert_eq!(waiter.join().expect("no panic")[0].name, "f");
            }
        });
        let c = flight.counters();
        assert_eq!(c.leads, 1, "exactly one computation: {c:?}");
        assert_eq!(c.waits, (HERD - 1) as u64);
        assert_eq!(c.wait_hits, (HERD - 1) as u64);
        assert_eq!(c.wait_timeouts, 0);
        assert_eq!(c.refused, 0);
    }

    #[test]
    fn same_group_misses_never_wait() {
        // The fold-deferred store pattern: within one run, the second miss
        // on a leased key must proceed (its own fold stores it once), not
        // wait on a store that cannot happen yet.
        let flight = SingleFlight::new(MemoryStore::new());
        let key = Fingerprint(0xabc);
        let run = Grouped(7);
        assert!(flight.load(&key, &run).is_none(), "leader");
        let before = Instant::now();
        assert!(flight.load(&key, &run).is_none(), "same group: plain miss");
        assert!(before.elapsed() < Duration::from_secs(1));
        let c = flight.counters();
        assert_eq!((c.leads, c.waits, c.refused), (1, 0, 0));
    }

    #[test]
    fn a_group_holding_a_lease_refuses_to_wait_on_another() {
        // Run A leases k1; run B leases k2 and then misses k1.  B waiting
        // on A could deadlock if A were symmetric — B must refuse.
        let flight = SingleFlight::new(MemoryStore::new());
        let (k1, k2) = (Fingerprint(1), Fingerprint(2));
        let (run_a, run_b) = (Grouped(1), Grouped(2));
        assert!(flight.load(&k1, &run_a).is_none());
        assert!(flight.load(&k2, &run_b).is_none());
        assert!(flight.load(&k1, &run_b).is_none(), "refused, not parked");
        assert_eq!(flight.counters().refused, 1);
        // Once B's fold stores k2, B holds nothing again.
        flight.store(&k2, &[summary("g")], &run_b);
        let state = flight.state.lock().expect("state lock");
        assert_eq!(
            state.held_by_group.get(&2),
            None,
            "storing the leased key releases the hold"
        );
        assert_eq!(state.held_by_group.get(&1), Some(&1), "A still computes k1");
    }

    #[test]
    fn waits_are_time_bounded() {
        let flight = SingleFlight::with_wait_timeout(MemoryStore::new(), Duration::from_millis(30));
        let key = Fingerprint(3);
        assert!(flight.load(&key, &NullScopes).is_none(), "leader");
        // Group 0 is always wait-eligible, even against itself: the second
        // load parks, hits the bound, and proceeds to compute.
        let before = Instant::now();
        assert!(flight.load(&key, &NullScopes).is_none());
        assert!(before.elapsed() >= Duration::from_millis(30));
        let c = flight.counters();
        assert_eq!((c.waits, c.wait_timeouts), (1, 1));
    }

    #[test]
    fn stale_leases_are_stolen() {
        let flight = SingleFlight::with_wait_timeout(MemoryStore::new(), Duration::from_millis(10));
        let key = Fingerprint(4);
        assert!(flight.load(&key, &NullScopes).is_none(), "leader");
        // 3× the wait bound with no store: the leader is presumed dead.
        std::thread::sleep(Duration::from_millis(40));
        assert!(flight.load(&key, &NullScopes).is_none(), "stolen lease");
        assert_eq!(flight.counters().leads, 2);
        // The thief's store releases the (stolen) lease normally.
        flight.store(&key, &[summary("h")], &NullScopes);
        assert!(flight.load(&key, &NullScopes).is_some());
    }

    #[test]
    fn hits_bypass_the_flight_machinery() {
        let flight = SingleFlight::new(MemoryStore::new());
        let key = Fingerprint(5);
        flight.store(&key, &[summary("f")], &NullScopes);
        assert!(flight.load(&key, &NullScopes).is_some());
        assert_eq!(flight.counters(), FlightCounters::default());
    }
}
