//! The in-memory tier: a sharded, byte-capped, LRU-evicting map of
//! validated serialized entries.

use super::layered::{StoreTier, TierHit};
use super::{load_histogram, StoreStats};
use crate::cache::{decode_entry, ScopeResolver};
use chora_ir::Fingerprint;
use chora_telemetry::metrics::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One entry of the memory tier: validated serialized bytes plus the LRU
/// clock and insertion time.
struct MemEntry {
    text: String,
    last_used: u64,
    inserted: Instant,
}

/// One lock's worth of the memory tier.
#[derive(Default)]
struct Shard {
    map: HashMap<Fingerprint, MemEntry>,
    bytes: u64,
    /// Logical LRU clock: bumped on every touch, entries carry the stamp.
    tick: u64,
}

/// The L1 tier: a sharded in-memory LRU map of serialized entries.
///
/// * Inserts that push a shard past its share of the byte cap evict
///   least-recently-used entries; entries bigger than a whole shard are
///   not kept at all.
/// * Entries older than `max_age` (by *true* age — promotions from disk
///   backdate the clock) are dropped on sight.
/// * A hit decodes under the shard lock; an entry that no longer decodes
///   (memory was scribbled on) is evicted as corrupt and the probe falls
///   through to farther tiers.
pub struct MemTier {
    shards: Vec<Mutex<Shard>>,
    cap_bytes: Option<u64>,
    max_age: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    stored: AtomicU64,
    lru_evictions: AtomicU64,
    age_evictions: AtomicU64,
    corrupt_evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    load_hist: &'static Histogram,
}

impl MemTier {
    /// A memory tier with `shards` independent locks (at least one),
    /// `cap_bytes` total budget (`None` = unbounded), and `max_age` expiry
    /// (`None` = never).
    pub fn new(shards: usize, cap_bytes: Option<u64>, max_age: Option<Duration>) -> MemTier {
        MemTier {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            cap_bytes,
            max_age,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            lru_evictions: AtomicU64::new(0),
            age_evictions: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            load_hist: load_histogram("memory"),
        }
    }

    /// Current `(entries, bytes)` across all shards.
    pub fn usage(&self) -> (u64, u64) {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("mem tier shard lock");
                (shard.map.len() as u64, shard.bytes)
            })
            .fold((0, 0), |(e, b), (se, sb)| (e + se, b + sb))
    }

    /// Loads this tier answered.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Entries evicted by LRU pressure against the byte cap.
    pub fn lru_evictions(&self) -> u64 {
        self.lru_evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted because they outlived `max_age`.
    pub fn age_evictions(&self) -> u64 {
        self.age_evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted as corrupt.
    pub fn corrupt_evictions(&self) -> u64 {
        self.corrupt_evictions.load(Ordering::Relaxed)
    }

    /// Bytes removed from this tier for any reason.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    fn shard(&self, key: &Fingerprint) -> &Mutex<Shard> {
        &self.shards[(key.0 % self.shards.len() as u128) as usize]
    }

    /// Each shard gets an even split of the byte budget.
    fn shard_cap(&self) -> Option<u64> {
        self.cap_bytes
            .map(|cap| (cap / self.shards.len() as u64).max(1))
    }

    fn evict(&self, shard: &mut Shard, key: &Fingerprint, reason: &AtomicU64) {
        if let Some(entry) = shard.map.remove(key) {
            shard.bytes = shard.bytes.saturating_sub(entry.text.len() as u64);
            reason.fetch_add(1, Ordering::Relaxed);
            self.evicted_bytes
                .fetch_add(entry.text.len() as u64, Ordering::Relaxed);
        }
    }

    /// Drops every expired entry (the memory half of a GC pass).
    pub fn sweep_expired(&self) {
        let Some(max_age) = self.max_age else { return };
        for shard in &self.shards {
            let mut shard = shard.lock().expect("mem tier shard lock");
            let expired: Vec<Fingerprint> = shard
                .map
                .iter()
                .filter(|(_, e)| e.inserted.elapsed() > max_age)
                .map(|(k, _)| *k)
                .collect();
            for key in expired {
                self.evict(&mut shard, &key, &self.age_evictions);
            }
        }
    }
}

impl StoreTier for MemTier {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit> {
        let started = Instant::now();
        let result = (|| {
            let mut shard = self.shard(key).lock().expect("mem tier shard lock");
            let expired = {
                let entry = shard.map.get(key)?;
                self.max_age
                    .is_some_and(|limit| entry.inserted.elapsed() > limit)
            };
            if expired {
                self.evict(&mut shard, key, &self.age_evictions);
                return None;
            }
            shard.tick += 1;
            let stamp = shard.tick;
            let entry = shard.map.get_mut(key).expect("entry checked above");
            entry.last_used = stamp;
            match decode_entry(&entry.text, key, scopes) {
                Some(summaries) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(TierHit {
                        summaries,
                        promote: None,
                    })
                }
                None => {
                    // Can only happen if memory was scribbled on — treat
                    // like disk corruption: evict and fall through.
                    self.evict(&mut shard, key, &self.corrupt_evictions);
                    None
                }
            }
        })();
        if result.is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.load_hist
            .observe_ms(started.elapsed().as_secs_f64() * 1e3);
        result
    }

    /// Inserts validated serialized bytes, evicting least-recently-used
    /// entries until the shard fits its cap again.  `age` backdates the
    /// expiry clock for entries promoted from farther tiers, so `max_age`
    /// bounds an entry's *true* age, not its tier residency.
    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        age: Option<Duration>,
        _scopes: &dyn ScopeResolver,
    ) {
        let size = text.len() as u64;
        if self.shard_cap().is_some_and(|cap| size > cap) {
            return;
        }
        let inserted = age
            .and_then(|a| Instant::now().checked_sub(a))
            .unwrap_or_else(Instant::now);
        let mut shard = self.shard(key).lock().expect("mem tier shard lock");
        if let Some(old) = shard.map.remove(key) {
            shard.bytes = shard.bytes.saturating_sub(old.text.len() as u64);
        }
        shard.tick += 1;
        let stamp = shard.tick;
        shard.map.insert(
            *key,
            MemEntry {
                text: text.to_string(),
                last_used: stamp,
                inserted,
            },
        );
        shard.bytes += size;
        self.stored.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.shard_cap() {
            while shard.bytes > cap {
                // The just-inserted entry can never be the LRU minimum: it
                // carries the freshest stamp and fits the cap on its own.
                let Some(victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                self.evict(&mut shard, &victim, &self.lru_evictions);
            }
        }
    }

    fn load_text(&self, key: &Fingerprint) -> Option<String> {
        let mut shard = self.shard(key).lock().expect("mem tier shard lock");
        let expired = {
            let entry = shard.map.get(key)?;
            self.max_age
                .is_some_and(|limit| entry.inserted.elapsed() > limit)
        };
        if expired {
            self.evict(&mut shard, key, &self.age_evictions);
            return None;
        }
        shard.tick += 1;
        let stamp = shard.tick;
        let entry = shard.map.get_mut(key).expect("entry checked above");
        entry.last_used = stamp;
        Some(entry.text.clone())
    }

    fn append_stats(&self, out: &mut Vec<StoreStats>) {
        let (entries, bytes) = self.usage();
        out.push(StoreStats {
            hits: self.hits(),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stored.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions(),
            gc_evictions: self.lru_evictions() + self.age_evictions(),
            evicted_bytes: self.evicted_bytes(),
            entries,
            bytes,
            ..StoreStats::named("memory")
        });
    }
}
