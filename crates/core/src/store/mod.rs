//! Pluggable summary stores: where the analyzer keeps procedure summaries
//! between runs.
//!
//! The driver looks components up by their transitive fingerprint
//! ([`chora_ir::fingerprint`]) before summarizing: a hit restores the
//! component's summaries exactly (skipping height/depth/recurrence solving
//! entirely), a miss summarizes and stores.
//!
//! # Architecture
//!
//! Stores come in two shapes.  [`SummaryStore`] is the driver-facing trait
//! (decoded summaries in, decoded summaries out); [`StoreTier`] is the
//! *composable* layer underneath it — one cache level that moves validated
//! serialized entries.  Tiers compose with the generic [`Layered`]
//! combinator, which probes its near tier first, falls back to the far
//! tier, and applies explicit **promote-on-hit** (far hits are copied into
//! the near tier, with their true age) and **write-through** (stores land
//! in every tier) policies.  Each tier reports a uniform [`StoreStats`]
//! snapshot.
//!
//! The concrete tiers:
//!
//! * [`MemTier`] — a sharded, byte-capped, LRU-evicting in-memory map.
//! * [`DiskTier`] — a [`DiskStore`] (one file per key under a versioned
//!   cache directory) plus age expiry.
//! * [`RemoteStore`] — a network tier speaking `GET`/`PUT
//!   /v1/summaries/{keyhex}` against one or more `chora serve` daemons
//!   (chosen per key by rendezvous hashing), with a per-target circuit
//!   breaker so a dead peer degrades to the local tiers.
//!
//! [`TieredStore`] is the standard composition — L1 memory over optional
//! L2 disk over optional L3 remote — and [`SingleFlight`] wraps any
//! [`SummaryStore`] to coalesce concurrent misses on the same key, so a
//! thundering herd on a cold cone computes it once.
//!
//! Simple standalone backends remain for tests and tools: [`MemoryStore`]
//! (a plain map) and [`DiskStore`] used directly.

use crate::analysis::ProcedureSummary;
use crate::cache::ScopeResolver;
use chora_ir::Fingerprint;
use std::fmt;

mod disk;
pub mod layered;
mod mem;
mod remote;
mod singleflight;
mod tiered;

pub use disk::DiskStore;
pub use layered::{Layered, StoreTier, TierHit};
pub use mem::MemTier;
pub use remote::{RemoteConfig, RemoteStore};
pub use singleflight::{FlightCounters, SingleFlight};
pub use tiered::{DiskTier, TierCounters, TieredConfig, TieredStore};

/// Counters reported by a cache-backed analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Components restored from the store.
    pub hits: u64,
    /// Components summarized from scratch.
    pub misses: u64,
    /// Store entries discarded as corrupted or version-mismatched.
    pub evictions: u64,
    /// Store entries removed by garbage collection — LRU pressure against
    /// the byte cap or age expiry — as opposed to corruption.
    pub gc_evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions, {} gc evictions",
            self.hits, self.misses, self.evictions, self.gc_evictions
        )
    }
}

/// A uniform point-in-time snapshot of one store tier: cumulative counters
/// plus current-size gauges.  Every [`SummaryStore`] reports one entry per
/// tier via [`SummaryStore::stats`], nearest tier first, so callers render
/// and delta them without knowing the store's shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Which tier this row describes (`"memory"`, `"disk"`, `"remote"`).
    pub tier: &'static str,
    /// Loads this tier answered.
    pub hits: u64,
    /// Loads this tier was asked and could not answer.
    pub misses: u64,
    /// Entries written into this tier (driver stores and promotions).
    pub stores: u64,
    /// Entries discarded as corrupted, version-mismatched, or
    /// unrescopable.
    pub corrupt_evictions: u64,
    /// Entries removed for space or age reasons (LRU pressure, expiry,
    /// GC passes) — normal turnover, kept apart from corruption.
    pub gc_evictions: u64,
    /// Bytes removed from this tier for any reason.
    pub evicted_bytes: u64,
    /// Current entry count, where the tier can say cheaply (else 0).
    pub entries: u64,
    /// Current serialized bytes held, where the tier can say cheaply.
    pub bytes: u64,
    /// Transport or I/O failures (remote tier: dead or misbehaving peer).
    pub errors: u64,
    /// Probes skipped outright (remote tier: circuit breaker open because
    /// every peer is in its failure cooldown).
    pub skipped: u64,
}

impl StoreStats {
    /// An all-zero snapshot for `tier`.
    pub fn named(tier: &'static str) -> StoreStats {
        StoreStats {
            tier,
            ..StoreStats::default()
        }
    }
}

/// Sums corruption evictions across a [`SummaryStore::stats`] snapshot.
pub fn total_corrupt_evictions(stats: &[StoreStats]) -> u64 {
    stats.iter().map(|t| t.corrupt_evictions).sum()
}

/// Sums space/age (GC) evictions across a [`SummaryStore::stats`]
/// snapshot.
pub fn total_gc_evictions(stats: &[StoreStats]) -> u64 {
    stats.iter().map(|t| t.gc_evictions).sum()
}

/// A keyed store of per-component summary lists.
///
/// Implementations must be best-effort: `load` returns `None` for anything
/// it cannot produce intact, and `store` may silently drop entries (the
/// analysis is correct with an empty store; the store only buys speed).
/// `Sync` is required because the driver probes the store from its worker
/// threads (one load per component, concurrently within a level).
///
/// Both operations take the caller's [`ScopeResolver`]: entries are kept
/// in a scope-canonical form independent of the bottom-up component order,
/// and the resolver supplies this run's component-key ↔ scope assignment so
/// loads rescope restored fresh symbols into the current schedule (see
/// `crate::cache`).  A load whose rescope is impossible is discarded and
/// counted as a corruption eviction, never a panic.
pub trait SummaryStore: Sync {
    /// The summaries cached under `key`, if present, intact, and
    /// rescopable into the current run — already rescoped.
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>>;

    /// Caches the summaries of one component under its key.
    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver);

    /// Per-tier statistics, nearest tier first.  The default is the empty
    /// snapshot: a store with nothing to report.
    fn stats(&self) -> Vec<StoreStats> {
        Vec::new()
    }
}

/// Registers (or fetches) the per-tier load-latency histogram — one
/// Prometheus series `chora_store_load_duration_ms{tier=...}` per tier.
pub(crate) fn load_histogram(tier: &'static str) -> &'static chora_telemetry::metrics::Histogram {
    chora_telemetry::metrics::registry().histogram_with(
        "chora_store_load_duration_ms",
        "Summary-store load latency by tier, milliseconds.",
        &[("tier", tier)],
    )
}

/// An in-memory store keyed by fingerprint, holding serialized entries.
#[derive(Default)]
pub struct MemoryStore {
    entries: std::sync::Mutex<std::collections::HashMap<Fingerprint, String>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    stored: std::sync::atomic::AtomicU64,
    evicted: std::sync::atomic::AtomicU64,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memory store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SummaryStore for MemoryStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        use std::sync::atomic::Ordering;
        let Some(text) = self
            .entries
            .lock()
            .expect("memory store lock")
            .get(key)
            .cloned()
        else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match crate::cache::decode_entry(&text, key, scopes) {
            Some(summaries) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(summaries)
            }
            None => {
                self.entries.lock().expect("memory store lock").remove(key);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        use std::sync::atomic::Ordering;
        let Some(encoded) = crate::cache::encode_entry(key, summaries, scopes) else {
            return;
        };
        self.entries
            .lock()
            .expect("memory store lock")
            .insert(*key, encoded);
        self.stored.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> Vec<StoreStats> {
        use std::sync::atomic::Ordering;
        vec![StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stored.load(Ordering::Relaxed),
            corrupt_evictions: self.evicted.load(Ordering::Relaxed),
            entries: self.len() as u64,
            ..StoreStats::named("memory")
        }]
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use chora_logic::TransitionFormula;
    use std::path::PathBuf;

    pub fn summary(name: &str) -> ProcedureSummary {
        ProcedureSummary {
            name: name.to_string(),
            formula: TransitionFormula::top(),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        }
    }

    pub fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chora-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A summary whose formula mentions a fresh symbol, plus resolvers that
    /// can and cannot rescope it: the "can" side owns scope 0 under a
    /// synthetic component key, the "cannot" side knows nothing.
    pub fn fresh_summary() -> ProcedureSummary {
        let t = chora_expr::FreshSource::new(0).fresh();
        ProcedureSummary {
            name: "f".to_string(),
            formula: TransitionFormula::from_polyhedron(chora_logic::Polyhedron::from_atoms(vec![
                chora_logic::Atom::ge(
                    chora_expr::Polynomial::var(t),
                    chora_expr::Polynomial::zero(),
                ),
            ])),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        }
    }

    pub struct OneScope;
    impl crate::cache::ScopeResolver for OneScope {
        fn scope_of(&self, key: &Fingerprint) -> Option<u32> {
            (key.0 == 0xc0ffee).then_some(0)
        }
        fn key_of(&self, scope: u32) -> Option<Fingerprint> {
            (scope == 0).then_some(Fingerprint(0xc0ffee))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use crate::cache::{NullScopes, CACHE_VERSION};
    use std::time::Duration;

    fn corrupt_total(store: &dyn SummaryStore) -> u64 {
        total_corrupt_evictions(&store.stats())
    }

    #[test]
    fn unrescopable_loads_count_as_corruption_evictions_not_panics() {
        for (store, name) in [
            (
                Box::new(MemoryStore::new()) as Box<dyn SummaryStore>,
                "memory",
            ),
            (
                Box::new(TieredStore::new(None, TieredConfig::default())) as Box<dyn SummaryStore>,
                "tiered",
            ),
        ] {
            let key = Fingerprint(0xc0ffee);
            store.store(&key, &[fresh_summary()], &OneScope);
            assert!(
                store.load(&key, &OneScope).is_some(),
                "{name}: rescopable entry must hit"
            );
            assert_eq!(corrupt_total(store.as_ref()), 0, "{name}");
            // This "run" has no component behind the recorded key: the
            // fresh symbol cannot be rescoped — evict, never panic.
            assert!(
                store.load(&key, &NullScopes).is_none(),
                "{name}: unrescopable entry must miss"
            );
            assert_eq!(
                corrupt_total(store.as_ref()),
                1,
                "{name}: the discard must count as a corruption eviction"
            );
            // The slot is reusable afterwards.
            assert!(store.load(&key, &OneScope).is_none(), "{name}");
            store.store(&key, &[fresh_summary()], &OneScope);
            assert!(store.load(&key, &OneScope).is_some(), "{name}");
        }
        // Same through a disk store, where the entry file must also be gone.
        let root = temp_dir("rescope-evict");
        let store = DiskStore::open(&root).expect("open");
        let key = Fingerprint(0xc0ffee);
        store.store(&key, &[fresh_summary()], &OneScope);
        let path = store.dir().join(format!("{}.json", key.to_hex()));
        assert!(path.exists());
        assert!(store.load(&key, &NullScopes).is_none());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.gc_evictions(), 0, "rescope failure is not GC");
        assert!(!path.exists(), "unrescopable entry must be deleted");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryStore::new();
        let key = Fingerprint(7);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f"), summary("g")], &NullScopes);
        let loaded = store.load(&key, &NullScopes).expect("hit");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "f");
        assert_eq!(loaded[1].name, "g");
        let stats = store.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].tier, "memory");
        assert_eq!(stats[0].hits, 1);
        assert_eq!(stats[0].misses, 1);
        assert_eq!(stats[0].stores, 1);
        assert_eq!(stats[0].entries, 1);
        assert_eq!(stats[0].corrupt_evictions, 0);
    }

    #[test]
    fn disk_store_round_trips_and_evicts_corruption() {
        let root = temp_dir("roundtrip");
        let store = DiskStore::open(&root).expect("open");
        let key = Fingerprint(9);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f")], &NullScopes);
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");

        // Corrupt the entry on disk: next load evicts it instead of failing.
        let path = store.dir().join(format!("{}.json", key.to_hex()));
        std::fs::write(&path, "{ definitely not a cache entry").expect("corrupt");
        assert!(store.load(&key, &NullScopes).is_none());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.gc_evictions(), 0, "corruption is not GC");
        let stats = store.stats();
        assert_eq!(stats[0].tier, "disk");
        assert_eq!(stats[0].corrupt_evictions, 1);
        assert_eq!(stats[0].gc_evictions, 0);
        assert!(!path.exists(), "corrupt entry must be deleted");
        // And the slot is usable again.
        store.store(&key, &[summary("f")], &NullScopes);
        assert!(store.load(&key, &NullScopes).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_store_namespaces_by_version() {
        let root = temp_dir("version");
        let store = DiskStore::open(&root).expect("open");
        assert!(store.dir().ends_with(format!("v{CACHE_VERSION}")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn opening_sweeps_stale_older_version_directories() {
        let root = temp_dir("stale-versions");
        // An unreadable previous-format tree, a future format's tree, and
        // an unrelated directory.
        for sub in ["v1", &format!("v{}", CACHE_VERSION + 1), "not-a-version"] {
            std::fs::create_dir_all(root.join(sub)).expect("mkdir");
            std::fs::write(root.join(sub).join("entry.json"), "old bytes").expect("write");
        }
        let _store = DiskStore::open(&root).expect("open");
        assert!(
            !root.join("v1").exists(),
            "older-version directories must be reclaimed on open"
        );
        assert!(
            root.join(format!("v{}", CACHE_VERSION + 1)).exists(),
            "a newer binary's namespace must be left alone"
        );
        assert!(
            root.join("not-a-version").exists(),
            "unrelated directories must be left alone"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_gc_expires_by_age_and_caps_by_bytes() {
        let root = temp_dir("gc");
        let store = DiskStore::open(&root).expect("open");
        for i in 0..4u128 {
            store.store(&Fingerprint(i), &[summary(&format!("p{i}"))], &NullScopes);
        }
        // Nothing is older than an hour: the age pass removes nothing.
        assert_eq!(store.gc(Some(Duration::from_secs(3600)), None), 0);
        assert_eq!(store.gc_evictions(), 0);

        // Age zero expires everything.
        std::thread::sleep(Duration::from_millis(20));
        let removed = store.gc(Some(Duration::ZERO), None);
        assert_eq!(removed, 4);
        assert_eq!(store.gc_evictions(), 4);
        assert!(store.load(&Fingerprint(0), &NullScopes).is_none());
        assert_eq!(
            store.evictions(),
            0,
            "GC removals must not count as corruption evictions"
        );

        // Byte cap: refill, then shrink to a cap below the total.
        for i in 0..4u128 {
            store.store(&Fingerprint(i), &[summary(&format!("p{i}"))], &NullScopes);
        }
        let total = store.disk_bytes();
        assert!(total > 0);
        let removed = store.gc(None, Some(total / 2));
        assert!(removed >= 1, "cap pass must delete oldest entries");
        assert!(store.disk_bytes() <= total / 2);
        let _ = std::fs::remove_dir_all(&root);
    }
}
