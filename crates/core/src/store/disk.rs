//! The persistent on-disk backend: one JSON file per component key under a
//! versioned cache directory.

use super::{StoreStats, SummaryStore};
use crate::analysis::ProcedureSummary;
use crate::cache::{decode_entry, encode_entry, entry_key, ScopeResolver, CACHE_VERSION};
use chora_ir::Fingerprint;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Distinguishes temp files (`<key>.tmp.<pid>.<seq>`) written by this
/// process from those of concurrent writers, and two writer threads of one
/// process from each other — two in-process writers racing on the same key
/// must never share a temp path, or one can rename the other's half-written
/// file into place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A persistent on-disk store: one JSON file per component key under
/// `<root>/v<CACHE_VERSION>/`.
///
/// The version directory means a future encoding bump simply starts a fresh
/// namespace; stray files from other versions are never read.  Within the
/// directory, any file that fails to decode (truncated write, manual edit,
/// hash collision on `key`) is deleted and counted as an eviction.
///
/// The layout is safe for any number of concurrent readers and writers,
/// across threads and processes: writes land under a unique temp name and
/// are renamed into place atomically, reads that race a GC deletion see a
/// plain miss, and keys are content-addressed so a "lost" rename race
/// between two writers of the same key is harmless (both wrote identical
/// bytes for identical inputs).
pub struct DiskStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stored: AtomicU64,
    evicted: AtomicU64,
    gc_removed: AtomicU64,
    removed_bytes: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if necessary) a cache rooted at `root`.
    ///
    /// Version directories left behind by *older* encodings (`v1/` after
    /// the v2 bump, and so on) are deleted on open: this binary can never
    /// read them, and leaving them would let the cache silently exceed its
    /// byte budget forever — `disk_bytes` and [`DiskStore::gc`] only scan
    /// the current version's directory.  Newer versions' directories are
    /// left alone so a mixed-version fleet sharing one root does not
    /// thrash each other's caches.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<DiskStore> {
        let root = root.as_ref();
        let dir = root.join(format!("v{CACHE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        if let Ok(entries) = std::fs::read_dir(root) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name();
                let stale = name
                    .to_str()
                    .and_then(|n| n.strip_prefix('v'))
                    .and_then(|n| n.parse::<i64>().ok())
                    .is_some_and(|version| version < CACHE_VERSION);
                if stale {
                    let _ = std::fs::remove_dir_all(entry.path());
                }
            }
        }
        Ok(DiskStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
            removed_bytes: AtomicU64::new(0),
        })
    }

    /// The versioned directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many entries this handle has discarded as *invalid* (corrupted,
    /// truncated, version-mismatched, or unrescopable).
    pub fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// How many entries this handle has removed for *space or age* reasons
    /// (explicit removals and [`DiskStore::gc`] passes).
    pub fn gc_evictions(&self) -> u64 {
        self.gc_removed.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    /// Loads, validates, and decodes the entry under `key`, also reporting
    /// its age (time since last write) when the filesystem can say.
    /// Corrupt (or unrescopable) entries are deleted and counted, exactly
    /// like [`load`].
    ///
    /// Returns the *serialized* text alongside the decoded summaries so a
    /// fronting tier ([`super::TieredStore`]) can keep the validated bytes
    /// without re-encoding.
    ///
    /// [`load`]: SummaryStore::load
    pub fn load_validated(
        &self,
        key: &Fingerprint,
        scopes: &dyn ScopeResolver,
    ) -> Option<(String, Vec<ProcedureSummary>, Option<Duration>)> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_entry(&text, key, scopes) {
            Some(summaries) => {
                let age = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| SystemTime::now().duration_since(mtime).ok());
                Some((text, summaries, age))
            }
            None => {
                // Corrupt or stale: evict, never fail.
                let _ = std::fs::remove_file(&path);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                self.removed_bytes
                    .fetch_add(text.len() as u64, Ordering::Relaxed);
                None
            }
        }
    }

    /// The raw serialized entry under `key`, gated only on its *envelope*
    /// (format tag, version, embedded key) — no summary decoding, which
    /// would need the consuming run's scope assignment.  This is what a
    /// summary server hands to `GET /v1/summaries/{key}`; the analyzing
    /// peer performs the full decode-and-rescope on its side.
    pub fn load_text(&self, key: &Fingerprint) -> Option<String> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        (entry_key(&text) == Some(*key)).then_some(text)
    }

    /// Writes an already-encoded entry (temp file + rename, best-effort).
    pub fn store_encoded(&self, key: &Fingerprint, encoded: &str) {
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Best-effort: a failed write leaves the cache without this entry,
        // and never leaves a partial temp file behind (disk-full writes
        // would otherwise leak one per attempt).
        match std::fs::write(&tmp, encoded) {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Removes the entry under `key` (a GC deletion, not a corruption
    /// eviction).  Racing readers see a miss; racing writers re-create it.
    pub fn remove(&self, key: &Fingerprint) {
        let path = self.entry_path(key);
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(path).is_ok() {
            self.gc_removed.fetch_add(1, Ordering::Relaxed);
            self.removed_bytes.fetch_add(size, Ordering::Relaxed);
        }
    }

    /// Total bytes this store has deleted — corruption evictions, explicit
    /// removals, and GC passes combined (the operational "how much has the
    /// cache churned" number surfaced by `/v1/stats`).
    pub fn removed_bytes(&self) -> u64 {
        self.removed_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes currently held by cache entries.
    pub fn disk_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// One lock-free garbage-collection pass: deletes entries older than
    /// `max_age`, then — if the directory still exceeds `cap_bytes` —
    /// deletes oldest-first until it fits.  Also sweeps temp files from
    /// crashed writers (older than one minute).  Returns how many entries
    /// were removed.
    ///
    /// Safe to run concurrently with readers and writers of any process:
    /// deletion of a whole entry can only turn a would-be hit into a miss,
    /// and only ever deletes *expired or excess* keys — a racing writer
    /// that re-creates one simply refreshes its age.
    pub fn gc(&self, max_age: Option<Duration>, cap_bytes: Option<u64>) -> u64 {
        let Ok(dir_entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let now = SystemTime::now();
        let mut removed = 0u64;
        // (path, age, size) of every surviving cache entry.
        let mut live: Vec<(PathBuf, Duration, u64)> = Vec::new();
        for entry in dir_entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Ok(meta) = entry.metadata() else { continue };
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .unwrap_or_default();
            // Orphaned temp files (a writer died between write and rename):
            // anything past a minute is garbage, no live writer keeps a
            // temp file open that long.
            if name.as_deref().is_some_and(|n| n.contains(".tmp.")) {
                if age > Duration::from_secs(60) {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            }
            if path.extension().is_none_or(|ext| ext != "json") {
                continue;
            }
            if max_age.is_some_and(|limit| age > limit) {
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                    self.removed_bytes.fetch_add(meta.len(), Ordering::Relaxed);
                }
                continue;
            }
            live.push((path, age, meta.len()));
        }
        if let Some(cap) = cap_bytes {
            let mut total: u64 = live.iter().map(|(_, _, size)| size).sum();
            // Oldest first.
            live.sort_by_key(|(_, age, _)| std::cmp::Reverse(*age));
            for (path, _, size) in live {
                if total <= cap {
                    break;
                }
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                    total = total.saturating_sub(size);
                    self.removed_bytes.fetch_add(size, Ordering::Relaxed);
                }
            }
        }
        self.gc_removed.fetch_add(removed, Ordering::Relaxed);
        removed
    }
}

impl SummaryStore for DiskStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        match self.load_validated(key, scopes) {
            Some((_, summaries, _)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(summaries)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        if let Some(encoded) = encode_entry(key, summaries, scopes) {
            self.store_encoded(key, &encoded);
            self.stored.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> Vec<StoreStats> {
        vec![StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stored.load(Ordering::Relaxed),
            corrupt_evictions: self.evictions(),
            gc_evictions: self.gc_evictions(),
            evicted_bytes: self.removed_bytes(),
            ..StoreStats::named("disk")
        }]
    }
}
