//! The standard store stack: memory in front of disk in front of an
//! optional remote fleet cache, packaged behind the historical
//! [`TieredStore`] API.

use super::disk::DiskStore;
use super::layered::{Layered, StoreTier, TierHit};
use super::mem::MemTier;
use super::remote::RemoteStore;
use super::{load_histogram, StoreStats, SummaryStore};
use crate::analysis::ProcedureSummary;
use crate::cache::{encode_entry, NullScopes, ScopeResolver};
use chora_ir::Fingerprint;
use chora_telemetry::metrics::Histogram;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sizing and expiry policy of a [`TieredStore`].
#[derive(Clone, Copy, Debug)]
pub struct TieredConfig {
    /// Byte budget of the in-memory tier (serialized entry bytes, split
    /// evenly across shards).  `None` = unbounded.  The same cap also
    /// bounds the disk tier during [`TieredStore::gc`].
    pub cap_bytes: Option<u64>,
    /// Entries older than this are evicted instead of served (both local
    /// tiers).  `None` = entries never expire.
    pub max_age: Option<Duration>,
    /// Number of independently-locked shards of the memory tier.
    pub shards: usize,
}

impl Default for TieredConfig {
    /// 64 MiB in memory, no expiry, 8 shards.
    fn default() -> Self {
        TieredConfig {
            cap_bytes: Some(64 << 20),
            max_age: None,
            shards: 8,
        }
    }
}

/// The disk level of a layered stack: wraps a [`DiskStore`] with the
/// stack's age limit, so expired entries are removed on sight instead of
/// served, and reports the entry's on-disk age upward so promotion into
/// memory never extends a lifetime.
pub struct DiskTier {
    store: DiskStore,
    max_age: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    stored: AtomicU64,
    age_evictions: AtomicU64,
    load_hist: &'static Histogram,
}

impl DiskTier {
    /// Wraps an open disk store with an expiry limit.
    pub fn new(store: DiskStore, max_age: Option<Duration>) -> DiskTier {
        DiskTier {
            store,
            max_age,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            age_evictions: AtomicU64::new(0),
            load_hist: load_histogram("disk"),
        }
    }

    /// The wrapped disk store.
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    /// Loads this tier answered.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads this tier was probed for but could not answer.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries removed because they outlived the age limit.
    pub fn age_evictions(&self) -> u64 {
        self.age_evictions.load(Ordering::Relaxed)
    }
}

impl StoreTier for DiskTier {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<TierHit> {
        let started = Instant::now();
        let result = match self.store.load_validated(key, scopes) {
            Some((_, _, Some(age))) if self.max_age.is_some_and(|limit| age > limit) => {
                self.store.remove(key);
                self.age_evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some((text, summaries, age)) => Some(TierHit {
                summaries,
                promote: Some((text, age)),
            }),
            None => None,
        };
        match &result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        self.load_hist
            .observe_ms(started.elapsed().as_secs_f64() * 1e3);
        result
    }

    fn store(
        &self,
        key: &Fingerprint,
        text: &str,
        _age: Option<Duration>,
        _scopes: &dyn ScopeResolver,
    ) {
        self.store.store_encoded(key, text);
        self.stored.fetch_add(1, Ordering::Relaxed);
    }

    fn load_text(&self, key: &Fingerprint) -> Option<String> {
        self.store.load_text(key)
    }

    fn append_stats(&self, out: &mut Vec<StoreStats>) {
        out.push(StoreStats {
            hits: self.hits(),
            misses: self.misses(),
            stores: self.stored.load(Ordering::Relaxed),
            corrupt_evictions: self.store.evictions(),
            // Age expiries both remove the file (counted by the store's GC
            // counter) and are counted here — kept additive so the
            // cross-tier total matches the historical trait-method total.
            gc_evictions: self.age_evictions() + self.store.gc_evictions(),
            evicted_bytes: self.store.removed_bytes(),
            bytes: self.store.disk_bytes(),
            ..StoreStats::named("disk")
        });
    }
}

/// Cumulative counters and current gauges of a [`TieredStore`], as one
/// flat snapshot (the shape `/v1/stats` has always served).
#[derive(Clone, Copy, Debug, Default)]
pub struct TierCounters {
    /// Loads served by the in-memory tier (zero filesystem work).
    pub mem_hits: u64,
    /// Loads served by the disk tier (and promoted into memory).
    pub disk_hits: u64,
    /// Loads answered by no tier.
    pub misses: u64,
    /// Entries written (to memory, and through to farther tiers).
    pub stores: u64,
    /// Times the disk tier was consulted at all (memory misses).
    pub disk_probes: u64,
    /// Memory-tier entries evicted by LRU pressure against the byte cap.
    pub lru_evictions: u64,
    /// Entries evicted (memory or disk) because they outlived `max_age`.
    pub age_evictions: u64,
    /// Entries discarded as corrupt (any tier).
    pub corrupt_evictions: u64,
    /// Disk entries removed by [`TieredStore::gc`] passes.
    pub disk_gc_removed: u64,
    /// Total bytes removed from either local tier, for any reason (LRU or
    /// age pressure, corruption, GC) — the churn number `/v1/stats`
    /// reports.
    pub evicted_bytes: u64,
    /// Current number of entries in the memory tier.
    pub mem_entries: u64,
    /// Current serialized bytes held by the memory tier.
    pub mem_bytes: u64,
}

/// The standard layered store: L1 memory, L2 disk (optional), L3 remote
/// fleet cache (optional), composed from [`Layered`] with promote-on-hit
/// and write-through on at every level.
///
/// This type is a thin adapter: the tier mechanics live in [`MemTier`],
/// [`DiskTier`], and [`RemoteStore`]; `TieredStore` encodes/decodes at the
/// [`SummaryStore`] boundary, keeps the historical counter snapshot
/// ([`TierCounters`]), and exposes the local-only raw-entry accessors a
/// summary server needs.
pub struct TieredStore {
    tiers: Layered<MemTier, Layered<Option<DiskTier>, Option<RemoteStore>>>,
    config: TieredConfig,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl TieredStore {
    /// A tiered store over an already-open disk tier (`None` = memory only).
    pub fn new(disk: Option<DiskStore>, config: TieredConfig) -> TieredStore {
        TieredStore::build(disk, None, config)
    }

    /// A tiered store with a remote fleet cache behind memory and disk.
    pub fn with_remote(
        disk: Option<DiskStore>,
        remote: RemoteStore,
        config: TieredConfig,
    ) -> TieredStore {
        TieredStore::build(disk, Some(remote), config)
    }

    fn build(
        disk: Option<DiskStore>,
        remote: Option<RemoteStore>,
        config: TieredConfig,
    ) -> TieredStore {
        let mem = MemTier::new(config.shards, config.cap_bytes, config.max_age);
        let disk = disk.map(|d| DiskTier::new(d, config.max_age));
        TieredStore {
            tiers: Layered::new(mem, Layered::new(disk, remote)),
            config,
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// Convenience: a tiered store whose disk tier lives under `root`.
    pub fn open(root: impl AsRef<Path>, config: TieredConfig) -> std::io::Result<TieredStore> {
        Ok(TieredStore::new(Some(DiskStore::open(root)?), config))
    }

    /// The disk tier's backing store, when one is configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.tiers.far.near.as_ref().map(DiskTier::store)
    }

    /// The remote tier, when one is configured.
    pub fn remote(&self) -> Option<&RemoteStore> {
        self.tiers.far.far.as_ref()
    }

    /// The sizing/expiry configuration this store resolved to.
    pub fn config(&self) -> TieredConfig {
        self.config
    }

    /// The raw serialized entry under `key` from the *local* tiers only
    /// (memory, then disk) — what this daemon serves to peers asking
    /// `GET /v1/summaries/{key}`.  The remote tier is structurally mute
    /// here ([`RemoteStore`] never answers `load_text`), so a ring of
    /// daemons pointing at each other cannot forward a request in a loop.
    pub fn load_local_text(&self, key: &Fingerprint) -> Option<String> {
        self.tiers.load_text(key)
    }

    /// Adopts an already-encoded entry into the *local* tiers (memory and
    /// disk, never back out to the remote) — what `PUT /v1/summaries/{key}`
    /// does with an entry uploaded by a peer.  The caller has already
    /// validated the envelope against `key`.
    pub fn store_local_text(&self, key: &Fingerprint, text: &str) {
        self.tiers.near.store(key, text, None, &NullScopes);
        self.tiers.far.near.store(key, text, None, &NullScopes);
    }

    /// Snapshot of every counter (cumulative) and gauge (current).
    pub fn counters(&self) -> TierCounters {
        let mem = &self.tiers.near;
        let disk = self.tiers.far.near.as_ref();
        let remote = self.tiers.far.far.as_ref();
        let (mem_entries, mem_bytes) = mem.usage();
        TierCounters {
            mem_hits: mem.hits(),
            disk_hits: disk.map_or(0, DiskTier::hits),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            disk_probes: disk.map_or(0, |d| d.hits() + d.misses()),
            lru_evictions: mem.lru_evictions(),
            age_evictions: mem.age_evictions() + disk.map_or(0, DiskTier::age_evictions),
            corrupt_evictions: mem.corrupt_evictions()
                + disk.map_or(0, |d| d.store().evictions())
                + remote.map_or(0, RemoteStore::corrupt),
            disk_gc_removed: disk.map_or(0, |d| d.store().gc_evictions()),
            evicted_bytes: mem.evicted_bytes() + disk.map_or(0, |d| d.store().removed_bytes()),
            mem_entries,
            mem_bytes,
        }
    }

    /// One garbage-collection pass over the local tiers: drops expired
    /// memory entries and runs [`DiskStore::gc`] with this store's age and
    /// byte limits.  The remote tier is its owner's to collect.
    pub fn gc(&self) {
        self.tiers.near.sweep_expired();
        if let Some(disk) = self.disk() {
            disk.gc(self.config.max_age, self.config.cap_bytes);
        }
    }
}

impl SummaryStore for TieredStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        match self.tiers.load(key, scopes) {
            Some(hit) => Some(hit.summaries),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        let Some(encoded) = encode_entry(key, summaries, scopes) else {
            return;
        };
        self.tiers.store(key, &encoded, None, scopes);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> Vec<StoreStats> {
        let mut out = Vec::new();
        self.tiers.append_stats(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{summary, temp_dir};
    use super::*;
    use crate::cache::NullScopes;

    #[test]
    fn tiered_store_serves_warm_hits_from_memory() {
        let root = temp_dir("tiered-warm");
        let store = TieredStore::open(&root, TieredConfig::default()).expect("open");
        let key = Fingerprint(11);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f")], &NullScopes);
        // First and every following load is a pure memory hit: the disk
        // tier was probed exactly once (the initial miss).
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");
        let c = store.counters();
        assert_eq!(c.mem_hits, 2);
        assert_eq!(c.disk_probes, 1, "only the cold miss touched disk");
        assert_eq!(c.misses, 1);
        assert_eq!(c.mem_entries, 1);
        assert!(c.mem_bytes > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_promotes_disk_entries_into_memory() {
        let root = temp_dir("tiered-promote");
        let key = Fingerprint(12);
        // A different handle (think: another process) populated the disk.
        DiskStore::open(&root)
            .expect("open")
            .store(&key, &[summary("g")], &NullScopes);
        let store = TieredStore::open(&root, TieredConfig::default()).expect("open");
        assert_eq!(
            store.load(&key, &NullScopes).expect("disk hit")[0].name,
            "g"
        );
        assert_eq!(store.load(&key, &NullScopes).expect("mem hit")[0].name, "g");
        let c = store.counters();
        assert_eq!(c.disk_hits, 1);
        assert_eq!(c.mem_hits, 1);
        assert_eq!(c.disk_probes, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_evicts_lru_under_byte_pressure() {
        // One shard so the LRU order is global and observable; cap sized
        // for roughly two entries.
        let store = TieredStore::new(
            None,
            TieredConfig {
                cap_bytes: None,
                max_age: None,
                shards: 1,
            },
        );
        store.store(&Fingerprint(1), &[summary("a")], &NullScopes);
        let entry_bytes = store.counters().mem_bytes;
        let store = TieredStore::new(
            None,
            TieredConfig {
                cap_bytes: Some(entry_bytes * 2 + entry_bytes / 2),
                max_age: None,
                shards: 1,
            },
        );
        store.store(&Fingerprint(1), &[summary("a")], &NullScopes);
        store.store(&Fingerprint(2), &[summary("b")], &NullScopes);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.load(&Fingerprint(1), &NullScopes).is_some());
        store.store(&Fingerprint(3), &[summary("c")], &NullScopes);
        let c = store.counters();
        assert_eq!(c.lru_evictions, 1);
        assert_eq!(c.mem_entries, 2);
        assert!(
            store.load(&Fingerprint(1), &NullScopes).is_some(),
            "recently used stays"
        );
        assert!(
            store.load(&Fingerprint(3), &NullScopes).is_some(),
            "newest stays"
        );
        assert!(
            store.load(&Fingerprint(2), &NullScopes).is_none(),
            "least-recently-used entry must be the one evicted"
        );
        let c = store.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.corrupt_evictions, 0);
    }

    #[test]
    fn promotion_preserves_an_entrys_true_age() {
        let root = temp_dir("tiered-backdate");
        let key = Fingerprint(31);
        DiskStore::open(&root)
            .expect("open")
            .store(&key, &[summary("f")], &NullScopes);
        // Entry is ~35ms old by the time the tiered handle promotes it.
        std::thread::sleep(Duration::from_millis(35));
        let store = TieredStore::open(
            &root,
            TieredConfig {
                cap_bytes: None,
                max_age: Some(Duration::from_millis(60)),
                shards: 1,
            },
        )
        .expect("open tiered");
        assert!(
            store.load(&key, &NullScopes).is_some(),
            "still within max_age"
        );
        // 35ms + 40ms > 60ms: the promoted copy must expire on its *true*
        // age, not on time-since-promotion.
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            store.load(&key, &NullScopes).is_none(),
            "promotion must not reset the expiry clock"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_expires_entries_by_age() {
        let root = temp_dir("tiered-age");
        let store = TieredStore::open(
            &root,
            TieredConfig {
                cap_bytes: None,
                max_age: Some(Duration::from_millis(30)),
                shards: 2,
            },
        )
        .expect("open");
        let key = Fingerprint(21);
        store.store(&key, &[summary("f")], &NullScopes);
        assert!(store.load(&key, &NullScopes).is_some(), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            store.load(&key, &NullScopes).is_none(),
            "expired entry must not hit"
        );
        let c = store.counters();
        assert!(c.age_evictions >= 1, "expiry must be counted: {c:?}");
        assert_eq!(c.corrupt_evictions, 0);
        // gc() sweeps the disk tier too: after it, the directory is empty.
        store.store(&key, &[summary("f")], &NullScopes);
        std::thread::sleep(Duration::from_millis(60));
        store.gc();
        assert_eq!(store.disk().expect("disk tier").disk_bytes(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn local_text_accessors_skip_the_remote_tier() {
        let root = temp_dir("tiered-localtext");
        let store = TieredStore::open(&root, TieredConfig::default()).expect("open");
        let key = Fingerprint(41);
        assert!(store.load_local_text(&key).is_none());
        store.store(&key, &[summary("f")], &NullScopes);
        let text = store.load_local_text(&key).expect("stored entry");
        assert_eq!(crate::cache::entry_key(&text), Some(key));
        // A second store adopts the raw entry without decoding it.
        let other = TieredStore::new(None, TieredConfig::default());
        other.store_local_text(&key, &text);
        assert_eq!(other.load(&key, &NullScopes).expect("adopted")[0].name, "f");
        // Adoption is not an analysis-facing store: the counter that
        // feeds CacheStats must not move.
        assert_eq!(other.counters().stores, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
