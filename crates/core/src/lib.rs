//! # chora-core
//!
//! The CHORA analysis itself — a Rust reproduction of *"Templates and
//! Recurrences: Better Together"* (PLDI 2020):
//!
//! * [`summarize::Summarizer`] — intra-procedural summarization
//!   (`Summary(P, φ)` of §3) over the structured IR, with CRA-style loop
//!   summarization,
//! * [`height`] — height-based recurrence analysis: Alg. 2 (hypothetical
//!   summaries and candidate recurrence inequations), Alg. 3 (stratified
//!   recurrence construction), recurrence solving (§4.1, §4.4),
//! * [`depth`] — depth-bound analysis `ζ_P` (§4.2, Alg. 4),
//! * [`analysis::Analyzer`] — the bottom-up interprocedural driver producing
//!   [`analysis::ProcedureSummary`]s and assertion verdicts,
//! * [`complexity`] — resource-bound extraction and asymptotic
//!   classification (Table 1),
//! * [`baseline::BaselineAnalyzer`] — the ICRA-style comparator that falls
//!   back to Kleene iteration on non-linear recursion.
//!
//! ```
//! use chora_core::{Analyzer, complexity};
//! use chora_ir::{Cond, Expr, Procedure, Program, Stmt};
//! use chora_expr::Symbol;
//!
//! // The Tower-of-Hanoi cost model (Table 1, row "hanoi").
//! let mut prog = Program::new();
//! prog.add_global("cost");
//! prog.add_procedure(Procedure::new(
//!     "hanoi",
//!     &["n"],
//!     &[],
//!     Stmt::seq(vec![
//!         Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
//!         Stmt::if_then(
//!             Cond::gt(Expr::var("n"), Expr::int(0)),
//!             Stmt::seq(vec![
//!                 Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
//!                 Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
//!             ]),
//!         ),
//!     ]),
//! ));
//! let result = Analyzer::new().analyze(&prog);
//! let summary = result.summary("hanoi").unwrap();
//! let (bound, class) = complexity::table1_row(summary, &Symbol::new("cost"), &Symbol::new("n"));
//! assert!(bound.is_some());
//! assert_eq!(class.to_string(), "O(2^n)");
//! ```

pub mod analysis;
pub mod baseline;
pub mod cache;
pub mod complexity;
pub mod depth;
pub mod height;
pub mod lower;
pub mod store;
pub mod summarize;

pub use analysis::{
    AnalysisConfig, AnalysisResult, Analyzer, AssertionResult, BoundFact, PhaseTimings,
    ProcedureSummary,
};
pub use baseline::BaselineAnalyzer;
pub use cache::{entry_key, next_flight_group, ComponentScopes, NullScopes, ScopeResolver};
pub use complexity::ComplexityClass;
pub use depth::DepthBound;
pub use store::{
    total_corrupt_evictions, total_gc_evictions, CacheStats, DiskStore, DiskTier, FlightCounters,
    Layered, MemTier, MemoryStore, RemoteConfig, RemoteStore, SingleFlight, StoreStats, StoreTier,
    SummaryStore, TierCounters, TierHit, TieredConfig, TieredStore,
};
