//! Resource-bound extraction and asymptotic classification (the reporting
//! layer behind Table 1).
//!
//! The analysis materializes cost as an ordinary program variable (`cost`,
//! `nTicks`, ...); a bound on the final value of that variable as a function
//! of a designated size parameter is extracted from the procedure summary and
//! classified into the asymptotic classes the paper reports
//! (`O(2^n)`, `O(n log n)`, `O(n^log2(7))`, ...).

use crate::analysis::{upper_bound_on_post, ProcedureSummary};
use chora_expr::{Polynomial, Symbol, Term};
use std::collections::BTreeMap;
use std::fmt;

/// Asymptotic growth classes used in the evaluation tables.
#[derive(Clone, Debug, PartialEq)]
pub enum ComplexityClass {
    /// `O(1)`
    Constant,
    /// `O(log n)`
    Logarithmic,
    /// `O(n)`
    Linear,
    /// `O(n log n)`
    NLogN,
    /// `O(n^d)` for an integer degree `d ≥ 2`.
    Polynomial(u32),
    /// `O(n^e)` for a non-integer exponent `e` (e.g. `log2 3`, `log2 7`).
    PolyExponent(f64),
    /// `O(b^n)` (optionally with a polynomial factor, which the paper's
    /// table also folds into the exponential class).
    Exponential(f64),
    /// No bound was found ("n.b." in Table 1).
    NoBound,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityClass::Constant => write!(f, "O(1)"),
            ComplexityClass::Logarithmic => write!(f, "O(log n)"),
            ComplexityClass::Linear => write!(f, "O(n)"),
            ComplexityClass::NLogN => write!(f, "O(n log n)"),
            ComplexityClass::Polynomial(d) => write!(f, "O(n^{d})"),
            ComplexityClass::PolyExponent(e) => {
                if (e - 3f64.log2()).abs() < 0.01 {
                    write!(f, "O(n^log2(3))")
                } else if (e - 7f64.log2()).abs() < 0.01 {
                    write!(f, "O(n^log2(7))")
                } else {
                    write!(f, "O(n^{e:.3})")
                }
            }
            ComplexityClass::Exponential(b) => {
                if (b - b.round()).abs() < 1e-6 {
                    write!(f, "O({}^n)", b.round() as i64)
                } else {
                    write!(f, "O({b:.2}^n)")
                }
            }
            ComplexityClass::NoBound => write!(f, "n.b."),
        }
    }
}

/// Extracts an upper bound on the final value of `cost_var` from the summary
/// of the analysed (usually recursive) procedure, assuming the counter starts
/// at zero.
pub fn cost_bound(summary: &ProcedureSummary, cost_var: &Symbol) -> Option<Term> {
    let bound = upper_bound_on_post(summary, cost_var)?;
    // The counter starts at zero: substitute 0 for its pre-state value.
    Some(bound.substitute(cost_var, &Term::zero()))
}

/// Classifies a bound term's growth in the designated size parameter.
///
/// The classification is numeric: the term is evaluated at geometrically
/// spaced values of the parameter (all other symbols set to zero) and the
/// growth rate is matched against the classes of Table 1.  Exponents close to
/// `log2 3` and `log2 7` are reported as such, matching the paper's
/// `karatsuba`/`strassen` rows.
pub fn classify(bound: &Term, size_param: &Symbol) -> ComplexityClass {
    let eval = |n: f64| -> Option<f64> {
        let mut env: BTreeMap<Symbol, f64> = BTreeMap::new();
        for s in bound.symbols() {
            env.insert(s, 0.0);
        }
        env.insert(*size_param, n);
        bound.eval_f64(&env)
    };
    // Detect exponential growth on small arguments first.
    let (e1, e2) = match (eval(24.0), eval(30.0)) {
        (Some(a), Some(b)) if a > 0.0 && b > 0.0 && b >= a => (a, b),
        _ => return ComplexityClass::NoBound,
    };
    let per_step = (e2 / e1).powf(1.0 / 6.0);
    if per_step > 1.25 {
        return ComplexityClass::Exponential(per_step);
    }
    // Polynomial / logarithmic growth: slope of log f against log n.
    let n1 = (1u64 << 12) as f64;
    let n2 = (1u64 << 20) as f64;
    let (p1, p2) = match (eval(n1), eval(n2)) {
        (Some(a), Some(b)) if a.is_finite() && b.is_finite() => (a.max(1e-9), b.max(1e-9)),
        _ => return ComplexityClass::NoBound,
    };
    let slope = (p2.ln() - p1.ln()) / (n2.ln() - n1.ln());
    classify_from_slope(slope, p1, p2)
}

fn classify_from_slope(slope: f64, p1: f64, p2: f64) -> ComplexityClass {
    if slope < 0.1 {
        // Constant or logarithmic: does the value grow at all?
        if p2 / p1 > 1.3 {
            return ComplexityClass::Logarithmic;
        }
        return ComplexityClass::Constant;
    }
    if (slope - 1.0).abs() < 0.15 {
        // Linear or n log n: look at f(n)/n.
        let ratio = (p2 / (1u64 << 20) as f64) / (p1 / (1u64 << 12) as f64);
        if ratio > 1.3 {
            return ComplexityClass::NLogN;
        }
        return ComplexityClass::Linear;
    }
    let rounded = slope.round();
    if (slope - rounded).abs() < 0.05 && rounded >= 2.0 {
        return ComplexityClass::Polynomial(rounded as u32);
    }
    // Known irrational exponents from the paper's divide-and-conquer rows.
    for special in [3f64.log2(), 7f64.log2()] {
        if (slope - special).abs() < 0.05 {
            return ComplexityClass::PolyExponent(special);
        }
    }
    ComplexityClass::PolyExponent(slope)
}

/// Converts a polynomial-valued [`Term`] back into a [`Polynomial`] (used to
/// push linear depth bounds into the polyhedral summary).  Returns `None` for
/// terms containing `pow`, `log`, `max`, or `min`.
pub fn term_to_polynomial(t: &Term) -> Option<Polynomial> {
    match t {
        Term::Const(c) => Some(Polynomial::constant(c.clone())),
        Term::Var(s) => Some(Polynomial::var(*s)),
        Term::Add(ts) => {
            let mut acc = Polynomial::zero();
            for x in ts {
                acc = &acc + &term_to_polynomial(x)?;
            }
            Some(acc)
        }
        Term::Mul(ts) => {
            let mut acc = Polynomial::one();
            for x in ts {
                acc = &acc * &term_to_polynomial(x)?;
            }
            Some(acc)
        }
        Term::Pow(base, exp) => {
            // Constant integer exponents are still polynomial.
            let e = exp.as_constant()?;
            let e = e.to_i64()?;
            if !(0..=8).contains(&e) {
                return None;
            }
            let b = term_to_polynomial(base)?;
            Some(b.pow(e as u32))
        }
        Term::Max(ts) => {
            // `max(1, e)`-style depth bounds: use the non-constant branch
            // (sound for substitution into non-decreasing closed forms only;
            // callers guard on the sign of the expression).
            let non_const: Vec<&Term> = ts.iter().filter(|x| x.as_constant().is_none()).collect();
            if non_const.len() == 1 {
                term_to_polynomial(non_const[0])
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Builds the `O(...)`-style row of Table 1 for one benchmark: the bound term
/// (if any) and its classification.
pub fn table1_row(
    summary: &ProcedureSummary,
    cost_var: &Symbol,
    size_param: &Symbol,
) -> (Option<Term>, ComplexityClass) {
    match cost_bound(summary, cost_var) {
        None => (None, ComplexityClass::NoBound),
        Some(bound) => {
            let class = classify(&bound, size_param);
            (Some(bound), class)
        }
    }
}

/// The `BigRational`-valued evaluation of a bound term at an integer size
/// (other symbols zero) — used by differential tests to compare against the
/// interpreter's measured cost.
pub fn eval_bound_at(bound: &Term, size_param: &Symbol, n: i64) -> Option<f64> {
    let mut env: BTreeMap<Symbol, f64> = BTreeMap::new();
    for s in bound.symbols() {
        env.insert(s, 0.0);
    }
    env.insert(*size_param, n as f64);
    bound.eval_f64(&env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Symbol {
        Symbol::new("n")
    }

    #[test]
    fn classify_standard_shapes() {
        let nv = Term::var(n());
        assert_eq!(classify(&Term::int(5), &n()), ComplexityClass::Constant);
        assert_eq!(
            classify(&Term::log2(nv.clone()), &n()),
            ComplexityClass::Logarithmic
        );
        assert_eq!(classify(&nv, &n()), ComplexityClass::Linear);
        assert_eq!(
            classify(&Term::mul(vec![nv.clone(), Term::log2(nv.clone())]), &n()),
            ComplexityClass::NLogN
        );
        assert_eq!(
            classify(&Term::mul(vec![nv.clone(), nv.clone()]), &n()),
            ComplexityClass::Polynomial(2)
        );
        assert_eq!(
            classify(&Term::pow(Term::int(2), nv.clone()), &n()),
            ComplexityClass::Exponential(2.0)
        );
        assert_eq!(
            classify(&Term::pow(Term::int(3), nv.clone()), &n()),
            ComplexityClass::Exponential(3.0)
        );
    }

    #[test]
    fn classify_divide_and_conquer_exponents() {
        // 3^(log2 n) = n^(log2 3)
        let nv = Term::var(n());
        let karatsuba = Term::pow(Term::int(3), Term::log2(nv.clone()));
        match classify(&karatsuba, &n()) {
            ComplexityClass::PolyExponent(e) => assert!((e - 3f64.log2()).abs() < 0.05),
            other => panic!("expected n^log2(3), got {other}"),
        }
        let strassen = Term::pow(Term::int(7), Term::log2(nv));
        match classify(&strassen, &n()) {
            ComplexityClass::PolyExponent(e) => assert!((e - 7f64.log2()).abs() < 0.05),
            other => panic!("expected n^log2(7), got {other}"),
        }
    }

    #[test]
    fn display_matches_table_notation() {
        assert_eq!(ComplexityClass::Exponential(2.0).to_string(), "O(2^n)");
        assert_eq!(ComplexityClass::NLogN.to_string(), "O(n log n)");
        assert_eq!(ComplexityClass::NoBound.to_string(), "n.b.");
        assert_eq!(ComplexityClass::Polynomial(2).to_string(), "O(n^2)");
    }

    #[test]
    fn term_to_polynomial_round_trips() {
        let t = Term::add(vec![
            Term::mul(vec![Term::int(2), Term::var(n())]),
            Term::int(3),
        ]);
        let p = term_to_polynomial(&t).unwrap();
        assert_eq!(p.to_string(), "2·n + 3");
        assert!(term_to_polynomial(&Term::pow(Term::int(2), Term::var(n()))).is_none());
        let maxed = Term::max(vec![Term::one(), Term::var(n())]);
        assert_eq!(term_to_polynomial(&maxed).unwrap().to_string(), "n");
    }
}
