//! Pluggable summary stores: where the analyzer keeps procedure summaries
//! between runs.
//!
//! The driver looks components up by their transitive fingerprint
//! ([`chora_ir::fingerprint`]) before summarizing: a hit restores the
//! component's summaries exactly (skipping height/depth/recurrence solving
//! entirely), a miss summarizes and stores.  Two backends are provided:
//!
//! * [`MemoryStore`] — an in-process map, useful for repeated analyses in
//!   one process (e.g. `chora bench` warm runs) and for tests.  Entries are
//!   kept in the *serialized* form so the memory and disk backends exercise
//!   the identical codec path.
//! * [`DiskStore`] — one file per component key under a versioned cache
//!   directory.  Corrupted, truncated, or version-mismatched files are
//!   discarded and counted as evictions, never fatal; writes go through a
//!   temporary file plus rename so concurrent readers see whole entries.

use crate::analysis::ProcedureSummary;
use crate::cache::{decode_entry, encode_entry, CACHE_VERSION};
use chora_ir::Fingerprint;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters reported by a cache-backed analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Components restored from the store.
    pub hits: u64,
    /// Components summarized from scratch.
    pub misses: u64,
    /// Store entries discarded as corrupted or version-mismatched.
    pub evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions",
            self.hits, self.misses, self.evictions
        )
    }
}

/// A keyed store of per-component summary lists.
///
/// Implementations must be best-effort: `load` returns `None` for anything
/// it cannot produce intact, and `store` may silently drop entries (the
/// analysis is correct with an empty store; the store only buys speed).
/// `Sync` is required because the driver probes the store from its worker
/// threads (one load per component, concurrently within a level).
pub trait SummaryStore: Sync {
    /// The summaries cached under `key`, if present and intact.
    fn load(&self, key: &Fingerprint) -> Option<Vec<ProcedureSummary>>;

    /// Caches the summaries of one component under its key.
    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary]);

    /// How many entries this store has discarded as invalid.
    fn evictions(&self) -> u64 {
        0
    }
}

/// An in-memory store keyed by fingerprint, holding serialized entries.
#[derive(Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<Fingerprint, String>>,
    evicted: AtomicU64,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memory store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SummaryStore for MemoryStore {
    fn load(&self, key: &Fingerprint) -> Option<Vec<ProcedureSummary>> {
        let text = self
            .entries
            .lock()
            .expect("memory store lock")
            .get(key)
            .cloned()?;
        match decode_entry(&text, key) {
            Some(summaries) => Some(summaries),
            None => {
                self.entries.lock().expect("memory store lock").remove(key);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary]) {
        let encoded = encode_entry(key, summaries);
        self.entries
            .lock()
            .expect("memory store lock")
            .insert(*key, encoded);
    }

    fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// A persistent on-disk store: one JSON file per component key under
/// `<root>/v<CACHE_VERSION>/`.
///
/// The version directory means a future encoding bump simply starts a fresh
/// namespace; stray files from other versions are never read.  Within the
/// directory, any file that fails to decode (truncated write, manual edit,
/// hash collision on `key`) is deleted and counted as an eviction.
pub struct DiskStore {
    dir: PathBuf,
    evicted: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if necessary) a cache rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<DiskStore> {
        let dir = root.as_ref().join(format!("v{CACHE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            evicted: AtomicU64::new(0),
        })
    }

    /// The versioned directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }
}

impl SummaryStore for DiskStore {
    fn load(&self, key: &Fingerprint) -> Option<Vec<ProcedureSummary>> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_entry(&text, key) {
            Some(summaries) => Some(summaries),
            None => {
                // Corrupt or stale: evict, never fail.
                let _ = std::fs::remove_file(&path);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary]) {
        let path = self.entry_path(key);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.to_hex(), std::process::id()));
        let encoded = encode_entry(key, summaries);
        // Best-effort: a failed write leaves the cache without this entry,
        // and never leaves a partial temp file behind (disk-full writes
        // would otherwise leak one per attempt).
        match std::fs::write(&tmp, encoded) {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ProcedureSummary;
    use chora_logic::TransitionFormula;

    fn summary(name: &str) -> ProcedureSummary {
        ProcedureSummary {
            name: name.to_string(),
            formula: TransitionFormula::top(),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chora-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryStore::new();
        let key = Fingerprint(7);
        assert!(store.load(&key).is_none());
        store.store(&key, &[summary("f"), summary("g")]);
        let loaded = store.load(&key).expect("hit");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "f");
        assert_eq!(loaded[1].name, "g");
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn disk_store_round_trips_and_evicts_corruption() {
        let root = temp_dir("roundtrip");
        let store = DiskStore::open(&root).expect("open");
        let key = Fingerprint(9);
        assert!(store.load(&key).is_none());
        store.store(&key, &[summary("f")]);
        assert_eq!(store.load(&key).expect("hit")[0].name, "f");

        // Corrupt the entry on disk: next load evicts it instead of failing.
        let path = store.dir().join(format!("{}.json", key.to_hex()));
        std::fs::write(&path, "{ definitely not a cache entry").expect("corrupt");
        assert!(store.load(&key).is_none());
        assert_eq!(store.evictions(), 1);
        assert!(!path.exists(), "corrupt entry must be deleted");
        // And the slot is usable again.
        store.store(&key, &[summary("f")]);
        assert!(store.load(&key).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_store_namespaces_by_version() {
        let root = temp_dir("version");
        let store = DiskStore::open(&root).expect("open");
        assert!(store.dir().ends_with(format!("v{CACHE_VERSION}")));
        let _ = std::fs::remove_dir_all(&root);
    }
}
