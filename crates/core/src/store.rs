//! Pluggable summary stores: where the analyzer keeps procedure summaries
//! between runs.
//!
//! The driver looks components up by their transitive fingerprint
//! ([`chora_ir::fingerprint`]) before summarizing: a hit restores the
//! component's summaries exactly (skipping height/depth/recurrence solving
//! entirely), a miss summarizes and stores.  Three backends are provided:
//!
//! * [`MemoryStore`] — an in-process map, useful for repeated analyses in
//!   one process (e.g. `chora bench` warm runs) and for tests.  Entries are
//!   kept in the *serialized* form so the memory and disk backends exercise
//!   the identical codec path.
//! * [`DiskStore`] — one file per component key under a versioned cache
//!   directory.  Corrupted, truncated, or version-mismatched files are
//!   discarded and counted as evictions, never fatal; writes go through a
//!   uniquely-named temporary file plus rename, so any number of concurrent
//!   readers and writers (threads *or* processes) only ever see whole
//!   entries.  [`DiskStore::gc`] is a lock-free garbage-collection pass
//!   that deletes expired entries (and, under a byte cap, the oldest ones):
//!   because entries are content-addressed, deleting one can never cause a
//!   stale result — only a re-summarization.
//! * [`TieredStore`] — a sharded in-memory LRU front backed by an optional
//!   [`DiskStore`]: the hot set is served without touching the filesystem
//!   (the `chora serve` warm path), sized by [`TieredConfig::cap_bytes`]
//!   and aged out by [`TieredConfig::max_age`].

use crate::analysis::ProcedureSummary;
use crate::cache::{decode_entry, encode_entry, ScopeResolver, CACHE_VERSION};
use chora_ir::Fingerprint;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

/// Counters reported by a cache-backed analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Components restored from the store.
    pub hits: u64,
    /// Components summarized from scratch.
    pub misses: u64,
    /// Store entries discarded as corrupted or version-mismatched.
    pub evictions: u64,
    /// Store entries removed by garbage collection — LRU pressure against
    /// the byte cap or age expiry — as opposed to corruption.
    pub gc_evictions: u64,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions, {} gc evictions",
            self.hits, self.misses, self.evictions, self.gc_evictions
        )
    }
}

/// A keyed store of per-component summary lists.
///
/// Implementations must be best-effort: `load` returns `None` for anything
/// it cannot produce intact, and `store` may silently drop entries (the
/// analysis is correct with an empty store; the store only buys speed).
/// `Sync` is required because the driver probes the store from its worker
/// threads (one load per component, concurrently within a level).
///
/// Both operations take the caller's [`ScopeResolver`]: entries are kept
/// in a scope-canonical form independent of the bottom-up component order,
/// and the resolver supplies this run's component-key ↔ scope assignment so
/// loads rescope restored fresh symbols into the current schedule (see
/// `crate::cache`).  A load whose rescope is impossible is discarded and
/// counted as a corruption eviction, never a panic.
pub trait SummaryStore: Sync {
    /// The summaries cached under `key`, if present, intact, and
    /// rescopable into the current run — already rescoped.
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>>;

    /// Caches the summaries of one component under its key.
    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver);

    /// How many entries this store has discarded as *invalid* (corrupted,
    /// truncated, or version-mismatched).
    fn evictions(&self) -> u64 {
        0
    }

    /// How many entries this store has removed for *space or age* reasons
    /// (LRU pressure, expiry, disk GC) — kept separate from [`evictions`]
    /// so operational dashboards can tell corruption from normal turnover.
    ///
    /// [`evictions`]: SummaryStore::evictions
    fn gc_evictions(&self) -> u64 {
        0
    }
}

/// An in-memory store keyed by fingerprint, holding serialized entries.
#[derive(Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<Fingerprint, String>>,
    evicted: AtomicU64,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("memory store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SummaryStore for MemoryStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        let text = self
            .entries
            .lock()
            .expect("memory store lock")
            .get(key)
            .cloned()?;
        match decode_entry(&text, key, scopes) {
            Some(summaries) => Some(summaries),
            None => {
                self.entries.lock().expect("memory store lock").remove(key);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        let Some(encoded) = encode_entry(key, summaries, scopes) else {
            return;
        };
        self.entries
            .lock()
            .expect("memory store lock")
            .insert(*key, encoded);
    }

    fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Distinguishes temp files (`<key>.tmp.<pid>.<seq>`) written by this
/// process from those of concurrent writers, and two writer threads of one
/// process from each other — two in-process writers racing on the same key
/// must never share a temp path, or one can rename the other's half-written
/// file into place.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A persistent on-disk store: one JSON file per component key under
/// `<root>/v<CACHE_VERSION>/`.
///
/// The version directory means a future encoding bump simply starts a fresh
/// namespace; stray files from other versions are never read.  Within the
/// directory, any file that fails to decode (truncated write, manual edit,
/// hash collision on `key`) is deleted and counted as an eviction.
///
/// The layout is safe for any number of concurrent readers and writers,
/// across threads and processes: writes land under a unique temp name and
/// are renamed into place atomically, reads that race a GC deletion see a
/// plain miss, and keys are content-addressed so a "lost" rename race
/// between two writers of the same key is harmless (both wrote identical
/// bytes for identical inputs).
pub struct DiskStore {
    dir: PathBuf,
    evicted: AtomicU64,
    gc_removed: AtomicU64,
    removed_bytes: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if necessary) a cache rooted at `root`.
    ///
    /// Version directories left behind by *older* encodings (`v1/` after
    /// the v2 bump, and so on) are deleted on open: this binary can never
    /// read them, and leaving them would let the cache silently exceed its
    /// byte budget forever — `disk_bytes` and [`DiskStore::gc`] only scan
    /// the current version's directory.  Newer versions' directories are
    /// left alone so a mixed-version fleet sharing one root does not
    /// thrash each other's caches.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<DiskStore> {
        let root = root.as_ref();
        let dir = root.join(format!("v{CACHE_VERSION}"));
        std::fs::create_dir_all(&dir)?;
        if let Ok(entries) = std::fs::read_dir(root) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name();
                let stale = name
                    .to_str()
                    .and_then(|n| n.strip_prefix('v'))
                    .and_then(|n| n.parse::<i64>().ok())
                    .is_some_and(|version| version < CACHE_VERSION);
                if stale {
                    let _ = std::fs::remove_dir_all(entry.path());
                }
            }
        }
        Ok(DiskStore {
            dir,
            evicted: AtomicU64::new(0),
            gc_removed: AtomicU64::new(0),
            removed_bytes: AtomicU64::new(0),
        })
    }

    /// The versioned directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    /// Loads, validates, and decodes the entry under `key`, also reporting
    /// its age (time since last write) when the filesystem can say.
    /// Corrupt (or unrescopable) entries are deleted and counted, exactly
    /// like [`load`].
    ///
    /// Returns the *serialized* text alongside the decoded summaries so a
    /// fronting tier ([`TieredStore`]) can keep the validated bytes without
    /// re-encoding.
    ///
    /// [`load`]: SummaryStore::load
    pub fn load_validated(
        &self,
        key: &Fingerprint,
        scopes: &dyn ScopeResolver,
    ) -> Option<(String, Vec<ProcedureSummary>, Option<Duration>)> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match decode_entry(&text, key, scopes) {
            Some(summaries) => {
                let age = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| SystemTime::now().duration_since(mtime).ok());
                Some((text, summaries, age))
            }
            None => {
                // Corrupt or stale: evict, never fail.
                let _ = std::fs::remove_file(&path);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                self.removed_bytes
                    .fetch_add(text.len() as u64, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes an already-encoded entry (temp file + rename, best-effort).
    pub fn store_encoded(&self, key: &Fingerprint, encoded: &str) {
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.to_hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Best-effort: a failed write leaves the cache without this entry,
        // and never leaves a partial temp file behind (disk-full writes
        // would otherwise leak one per attempt).
        match std::fs::write(&tmp, encoded) {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_err() {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// Removes the entry under `key` (a GC deletion, not a corruption
    /// eviction).  Racing readers see a miss; racing writers re-create it.
    pub fn remove(&self, key: &Fingerprint) {
        let path = self.entry_path(key);
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(path).is_ok() {
            self.gc_removed.fetch_add(1, Ordering::Relaxed);
            self.removed_bytes.fetch_add(size, Ordering::Relaxed);
        }
    }

    /// Total bytes this store has deleted — corruption evictions, explicit
    /// removals, and GC passes combined (the operational "how much has the
    /// cache churned" number surfaced by `/v1/stats`).
    pub fn removed_bytes(&self) -> u64 {
        self.removed_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes currently held by cache entries.
    pub fn disk_bytes(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }

    /// One lock-free garbage-collection pass: deletes entries older than
    /// `max_age`, then — if the directory still exceeds `cap_bytes` —
    /// deletes oldest-first until it fits.  Also sweeps temp files from
    /// crashed writers (older than one minute).  Returns how many entries
    /// were removed.
    ///
    /// Safe to run concurrently with readers and writers of any process:
    /// deletion of a whole entry can only turn a would-be hit into a miss,
    /// and only ever deletes *expired or excess* keys — a racing writer
    /// that re-creates one simply refreshes its age.
    pub fn gc(&self, max_age: Option<Duration>, cap_bytes: Option<u64>) -> u64 {
        let Ok(dir_entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let now = SystemTime::now();
        let mut removed = 0u64;
        // (path, age, size) of every surviving cache entry.
        let mut live: Vec<(PathBuf, Duration, u64)> = Vec::new();
        for entry in dir_entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Ok(meta) = entry.metadata() else { continue };
            let age = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .unwrap_or_default();
            // Orphaned temp files (a writer died between write and rename):
            // anything past a minute is garbage, no live writer keeps a
            // temp file open that long.
            if name.as_deref().is_some_and(|n| n.contains(".tmp.")) {
                if age > Duration::from_secs(60) {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            }
            if path.extension().is_none_or(|ext| ext != "json") {
                continue;
            }
            if max_age.is_some_and(|limit| age > limit) {
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                    self.removed_bytes.fetch_add(meta.len(), Ordering::Relaxed);
                }
                continue;
            }
            live.push((path, age, meta.len()));
        }
        if let Some(cap) = cap_bytes {
            let mut total: u64 = live.iter().map(|(_, _, size)| size).sum();
            // Oldest first.
            live.sort_by_key(|(_, age, _)| std::cmp::Reverse(*age));
            for (path, _, size) in live {
                if total <= cap {
                    break;
                }
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                    total = total.saturating_sub(size);
                    self.removed_bytes.fetch_add(size, Ordering::Relaxed);
                }
            }
        }
        self.gc_removed.fetch_add(removed, Ordering::Relaxed);
        removed
    }
}

impl SummaryStore for DiskStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        self.load_validated(key, scopes)
            .map(|(_, summaries, _)| summaries)
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        if let Some(encoded) = encode_entry(key, summaries, scopes) {
            self.store_encoded(key, &encoded);
        }
    }

    fn evictions(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn gc_evictions(&self) -> u64 {
        self.gc_removed.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// TieredStore: sharded in-memory LRU front, DiskStore back.
// ---------------------------------------------------------------------------

/// Sizing and expiry knobs of a [`TieredStore`].
#[derive(Clone, Copy, Debug)]
pub struct TieredConfig {
    /// Byte budget of the in-memory tier (serialized entry bytes, split
    /// evenly across shards).  `None` = unbounded.  The same cap also
    /// bounds the disk tier during [`TieredStore::gc`].
    pub cap_bytes: Option<u64>,
    /// Entries older than this are evicted instead of served (both tiers).
    /// `None` = entries never expire.
    pub max_age: Option<Duration>,
    /// Number of independently-locked shards of the memory tier.
    pub shards: usize,
}

impl Default for TieredConfig {
    /// 64 MiB in memory, no expiry, 8 shards.
    fn default() -> Self {
        TieredConfig {
            cap_bytes: Some(64 << 20),
            max_age: None,
            shards: 8,
        }
    }
}

/// One entry of the memory tier: validated serialized bytes plus the LRU
/// clock and insertion time.
struct MemEntry {
    text: String,
    last_used: u64,
    inserted: Instant,
}

/// One lock's worth of the memory tier.
#[derive(Default)]
struct Shard {
    map: HashMap<Fingerprint, MemEntry>,
    bytes: u64,
    /// Logical LRU clock: bumped on every touch, entries carry the stamp.
    tick: u64,
}

/// A point-in-time snapshot of a [`TieredStore`]'s counters (all values
/// cumulative since the store was opened, except the `mem_*` gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Loads served by the in-memory tier (zero filesystem work).
    pub mem_hits: u64,
    /// Loads served by the disk tier (and promoted into memory).
    pub disk_hits: u64,
    /// Loads answered by neither tier.
    pub misses: u64,
    /// Entries written (to memory, and to disk when a disk tier exists).
    pub stores: u64,
    /// Times the disk tier was consulted at all (memory misses).
    pub disk_probes: u64,
    /// Memory-tier entries evicted by LRU pressure against the byte cap.
    pub lru_evictions: u64,
    /// Entries evicted (either tier) because they outlived `max_age`.
    pub age_evictions: u64,
    /// Entries discarded as corrupt (either tier).
    pub corrupt_evictions: u64,
    /// Disk entries removed by [`TieredStore::gc`] passes.
    pub disk_gc_removed: u64,
    /// Total bytes removed from either tier, for any reason (LRU or age
    /// pressure, corruption, GC) — the churn number `/v1/stats` reports.
    pub evicted_bytes: u64,
    /// Current number of entries in the memory tier.
    pub mem_entries: u64,
    /// Current serialized bytes held by the memory tier.
    pub mem_bytes: u64,
}

/// A two-tier summary store: a sharded, byte-capped, LRU-evicting
/// in-memory map in front of an optional [`DiskStore`].
///
/// * **Warm path** — a hit in the memory tier touches no filesystem state
///   at all (the property `chora serve` relies on for its hot set; verified
///   by the `disk_probes` counter staying flat).
/// * **Promotion** — a disk hit re-validates the entry, promotes its bytes
///   into the memory tier, and serves the decoded summaries.
/// * **Eviction** — inserts that push a shard past its share of
///   [`TieredConfig::cap_bytes`] evict least-recently-used entries;
///   entries older than [`TieredConfig::max_age`] are dropped on sight,
///   and [`TieredStore::gc`] sweeps both tiers proactively.
///
/// Because keys are content-addressed (a key names its content), eviction
/// can never surface a stale summary — the worst case is a re-summarize.
pub struct TieredStore {
    shards: Vec<Mutex<Shard>>,
    disk: Option<DiskStore>,
    config: TieredConfig,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    disk_probes: AtomicU64,
    lru_evictions: AtomicU64,
    age_evictions: AtomicU64,
    corrupt_evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl TieredStore {
    /// A tiered store over an already-open disk tier (`None` = memory only).
    pub fn new(disk: Option<DiskStore>, config: TieredConfig) -> TieredStore {
        let shards = config.shards.max(1);
        TieredStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            disk,
            config,
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            disk_probes: AtomicU64::new(0),
            lru_evictions: AtomicU64::new(0),
            age_evictions: AtomicU64::new(0),
            corrupt_evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// Convenience: a tiered store whose disk tier lives under `root`.
    pub fn open(root: impl AsRef<Path>, config: TieredConfig) -> std::io::Result<TieredStore> {
        Ok(TieredStore::new(Some(DiskStore::open(root)?), config))
    }

    /// The disk tier, when one is configured.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref()
    }

    /// The sizing/expiry configuration this store resolved to.
    pub fn config(&self) -> TieredConfig {
        self.config
    }

    /// Snapshot of every counter (cumulative) and gauge (current).
    pub fn counters(&self) -> TierCounters {
        let (mem_entries, mem_bytes) = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("tiered store shard lock");
                (shard.map.len() as u64, shard.bytes)
            })
            .fold((0, 0), |(e, b), (se, sb)| (e + se, b + sb));
        TierCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            disk_probes: self.disk_probes.load(Ordering::Relaxed),
            lru_evictions: self.lru_evictions.load(Ordering::Relaxed),
            age_evictions: self.age_evictions.load(Ordering::Relaxed),
            corrupt_evictions: self.corrupt_evictions.load(Ordering::Relaxed)
                + self.disk.as_ref().map_or(0, |d| d.evictions()),
            disk_gc_removed: self.disk.as_ref().map_or(0, |d| d.gc_evictions()),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed)
                + self.disk.as_ref().map_or(0, |d| d.removed_bytes()),
            mem_entries,
            mem_bytes,
        }
    }

    /// One garbage-collection pass over both tiers: drops expired memory
    /// entries and runs [`DiskStore::gc`] with this store's age and byte
    /// limits.  Lock-free on the disk side; each memory shard is locked
    /// only for its own sweep.
    pub fn gc(&self) {
        if let Some(max_age) = self.config.max_age {
            for shard in &self.shards {
                let mut shard = shard.lock().expect("tiered store shard lock");
                let expired: Vec<Fingerprint> = shard
                    .map
                    .iter()
                    .filter(|(_, e)| e.inserted.elapsed() > max_age)
                    .map(|(k, _)| *k)
                    .collect();
                for key in expired {
                    if let Some(entry) = shard.map.remove(&key) {
                        shard.bytes = shard.bytes.saturating_sub(entry.text.len() as u64);
                        self.age_evictions.fetch_add(1, Ordering::Relaxed);
                        self.evicted_bytes
                            .fetch_add(entry.text.len() as u64, Ordering::Relaxed);
                    }
                }
            }
        }
        if let Some(disk) = &self.disk {
            disk.gc(self.config.max_age, self.config.cap_bytes);
        }
    }

    fn shard(&self, key: &Fingerprint) -> &Mutex<Shard> {
        &self.shards[(key.0 % self.shards.len() as u128) as usize]
    }

    /// Each shard gets an even split of the byte budget.
    fn shard_cap(&self) -> Option<u64> {
        self.config
            .cap_bytes
            .map(|cap| (cap / self.shards.len() as u64).max(1))
    }

    /// Inserts validated serialized bytes into the memory tier, evicting
    /// least-recently-used entries until the shard fits its cap again.
    /// Entries bigger than a whole shard are not kept in memory at all.
    /// `age` backdates the expiry clock for entries promoted from disk,
    /// so `max_age` bounds an entry's *true* age, not its tier residency.
    fn insert_mem(&self, key: &Fingerprint, text: String, age: Option<Duration>) {
        let size = text.len() as u64;
        if self.shard_cap().is_some_and(|cap| size > cap) {
            return;
        }
        let inserted = age
            .and_then(|a| Instant::now().checked_sub(a))
            .unwrap_or_else(Instant::now);
        let mut shard = self.shard(key).lock().expect("tiered store shard lock");
        if let Some(old) = shard.map.remove(key) {
            shard.bytes = shard.bytes.saturating_sub(old.text.len() as u64);
        }
        shard.tick += 1;
        let stamp = shard.tick;
        shard.map.insert(
            *key,
            MemEntry {
                text,
                last_used: stamp,
                inserted,
            },
        );
        shard.bytes += size;
        if let Some(cap) = self.shard_cap() {
            while shard.bytes > cap {
                // The just-inserted entry can never be the LRU minimum: it
                // carries the freshest stamp and fits the cap on its own.
                let Some(victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                else {
                    break;
                };
                if let Some(entry) = shard.map.remove(&victim) {
                    shard.bytes = shard.bytes.saturating_sub(entry.text.len() as u64);
                    self.lru_evictions.fetch_add(1, Ordering::Relaxed);
                    self.evicted_bytes
                        .fetch_add(entry.text.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Memory-tier probe: serves a fresh hit, drops expired or corrupt
    /// entries (falling through to the disk tier).
    fn load_mem(
        &self,
        key: &Fingerprint,
        scopes: &dyn ScopeResolver,
    ) -> Option<Vec<ProcedureSummary>> {
        let mut shard = self.shard(key).lock().expect("tiered store shard lock");
        let expired = {
            let entry = shard.map.get(key)?;
            self.config
                .max_age
                .is_some_and(|limit| entry.inserted.elapsed() > limit)
        };
        if expired {
            if let Some(entry) = shard.map.remove(key) {
                shard.bytes = shard.bytes.saturating_sub(entry.text.len() as u64);
                self.age_evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(entry.text.len() as u64, Ordering::Relaxed);
            }
            return None;
        }
        shard.tick += 1;
        let stamp = shard.tick;
        let entry = shard.map.get_mut(key).expect("entry checked above");
        entry.last_used = stamp;
        match decode_entry(&entry.text, key, scopes) {
            Some(summaries) => {
                self.mem_hits.fetch_add(1, Ordering::Relaxed);
                Some(summaries)
            }
            None => {
                // Can only happen if memory was scribbled on — treat like
                // disk corruption: evict and fall through.
                if let Some(entry) = shard.map.remove(key) {
                    shard.bytes = shard.bytes.saturating_sub(entry.text.len() as u64);
                    self.corrupt_evictions.fetch_add(1, Ordering::Relaxed);
                    self.evicted_bytes
                        .fetch_add(entry.text.len() as u64, Ordering::Relaxed);
                }
                None
            }
        }
    }
}

impl SummaryStore for TieredStore {
    fn load(&self, key: &Fingerprint, scopes: &dyn ScopeResolver) -> Option<Vec<ProcedureSummary>> {
        if let Some(summaries) = self.load_mem(key, scopes) {
            return Some(summaries);
        }
        let Some(disk) = &self.disk else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.disk_probes.fetch_add(1, Ordering::Relaxed);
        match disk.load_validated(key, scopes) {
            Some((_, _, Some(age))) if self.config.max_age.is_some_and(|limit| age > limit) => {
                disk.remove(key);
                self.age_evictions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some((text, summaries, age)) => {
                self.insert_mem(key, text, age);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(summaries)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, summaries: &[ProcedureSummary], scopes: &dyn ScopeResolver) {
        let Some(encoded) = encode_entry(key, summaries, scopes) else {
            return;
        };
        if let Some(disk) = &self.disk {
            disk.store_encoded(key, &encoded);
        }
        self.insert_mem(key, encoded, None);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn evictions(&self) -> u64 {
        self.corrupt_evictions.load(Ordering::Relaxed)
            + self.disk.as_ref().map_or(0, |d| d.evictions())
    }

    fn gc_evictions(&self) -> u64 {
        self.lru_evictions.load(Ordering::Relaxed)
            + self.age_evictions.load(Ordering::Relaxed)
            + self.disk.as_ref().map_or(0, |d| d.gc_evictions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ProcedureSummary;
    use crate::cache::NullScopes;
    use chora_logic::TransitionFormula;

    fn summary(name: &str) -> ProcedureSummary {
        ProcedureSummary {
            name: name.to_string(),
            formula: TransitionFormula::top(),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chora-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A summary whose formula mentions a fresh symbol, plus resolvers that
    /// can and cannot rescope it: the "can" side owns scope 0 under a
    /// synthetic component key, the "cannot" side knows nothing.
    fn fresh_summary() -> ProcedureSummary {
        let t = chora_expr::FreshSource::new(0).fresh();
        ProcedureSummary {
            name: "f".to_string(),
            formula: TransitionFormula::from_polyhedron(chora_logic::Polyhedron::from_atoms(vec![
                chora_logic::Atom::ge(
                    chora_expr::Polynomial::var(t),
                    chora_expr::Polynomial::zero(),
                ),
            ])),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        }
    }

    struct OneScope;
    impl crate::cache::ScopeResolver for OneScope {
        fn scope_of(&self, key: &Fingerprint) -> Option<u32> {
            (key.0 == 0xc0ffee).then_some(0)
        }
        fn key_of(&self, scope: u32) -> Option<Fingerprint> {
            (scope == 0).then_some(Fingerprint(0xc0ffee))
        }
    }

    #[test]
    fn unrescopable_loads_count_as_corruption_evictions_not_panics() {
        for (store, name) in [
            (
                Box::new(MemoryStore::new()) as Box<dyn SummaryStore>,
                "memory",
            ),
            (
                Box::new(TieredStore::new(None, TieredConfig::default())) as Box<dyn SummaryStore>,
                "tiered",
            ),
        ] {
            let key = Fingerprint(0xc0ffee);
            store.store(&key, &[fresh_summary()], &OneScope);
            assert!(
                store.load(&key, &OneScope).is_some(),
                "{name}: rescopable entry must hit"
            );
            assert_eq!(store.evictions(), 0, "{name}");
            // This "run" has no component behind the recorded key: the
            // fresh symbol cannot be rescoped — evict, never panic.
            assert!(
                store.load(&key, &NullScopes).is_none(),
                "{name}: unrescopable entry must miss"
            );
            assert_eq!(
                store.evictions(),
                1,
                "{name}: the discard must count as a corruption eviction"
            );
            // The slot is reusable afterwards.
            assert!(store.load(&key, &OneScope).is_none(), "{name}");
            store.store(&key, &[fresh_summary()], &OneScope);
            assert!(store.load(&key, &OneScope).is_some(), "{name}");
        }
        // Same through a disk store, where the entry file must also be gone.
        let root = temp_dir("rescope-evict");
        let store = DiskStore::open(&root).expect("open");
        let key = Fingerprint(0xc0ffee);
        store.store(&key, &[fresh_summary()], &OneScope);
        let path = store.dir().join(format!("{}.json", key.to_hex()));
        assert!(path.exists());
        assert!(store.load(&key, &NullScopes).is_none());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.gc_evictions(), 0, "rescope failure is not GC");
        assert!(!path.exists(), "unrescopable entry must be deleted");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryStore::new();
        let key = Fingerprint(7);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f"), summary("g")], &NullScopes);
        let loaded = store.load(&key, &NullScopes).expect("hit");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].name, "f");
        assert_eq!(loaded[1].name, "g");
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn disk_store_round_trips_and_evicts_corruption() {
        let root = temp_dir("roundtrip");
        let store = DiskStore::open(&root).expect("open");
        let key = Fingerprint(9);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f")], &NullScopes);
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");

        // Corrupt the entry on disk: next load evicts it instead of failing.
        let path = store.dir().join(format!("{}.json", key.to_hex()));
        std::fs::write(&path, "{ definitely not a cache entry").expect("corrupt");
        assert!(store.load(&key, &NullScopes).is_none());
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.gc_evictions(), 0, "corruption is not GC");
        assert!(!path.exists(), "corrupt entry must be deleted");
        // And the slot is usable again.
        store.store(&key, &[summary("f")], &NullScopes);
        assert!(store.load(&key, &NullScopes).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_store_namespaces_by_version() {
        let root = temp_dir("version");
        let store = DiskStore::open(&root).expect("open");
        assert!(store.dir().ends_with(format!("v{CACHE_VERSION}")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn opening_sweeps_stale_older_version_directories() {
        let root = temp_dir("stale-versions");
        // An unreadable previous-format tree, a future format's tree, and
        // an unrelated directory.
        for sub in ["v1", &format!("v{}", CACHE_VERSION + 1), "not-a-version"] {
            std::fs::create_dir_all(root.join(sub)).expect("mkdir");
            std::fs::write(root.join(sub).join("entry.json"), "old bytes").expect("write");
        }
        let _store = DiskStore::open(&root).expect("open");
        assert!(
            !root.join("v1").exists(),
            "older-version directories must be reclaimed on open"
        );
        assert!(
            root.join(format!("v{}", CACHE_VERSION + 1)).exists(),
            "a newer binary's namespace must be left alone"
        );
        assert!(
            root.join("not-a-version").exists(),
            "unrelated directories must be left alone"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_gc_expires_by_age_and_caps_by_bytes() {
        let root = temp_dir("gc");
        let store = DiskStore::open(&root).expect("open");
        for i in 0..4u128 {
            store.store(&Fingerprint(i), &[summary(&format!("p{i}"))], &NullScopes);
        }
        // Nothing is older than an hour: the age pass removes nothing.
        assert_eq!(store.gc(Some(Duration::from_secs(3600)), None), 0);
        assert_eq!(store.gc_evictions(), 0);

        // Age zero expires everything.
        std::thread::sleep(Duration::from_millis(20));
        let removed = store.gc(Some(Duration::ZERO), None);
        assert_eq!(removed, 4);
        assert_eq!(store.gc_evictions(), 4);
        assert!(store.load(&Fingerprint(0), &NullScopes).is_none());
        assert_eq!(
            store.evictions(),
            0,
            "GC removals must not count as corruption evictions"
        );

        // Byte cap: refill, then shrink to a cap below the total.
        for i in 0..4u128 {
            store.store(&Fingerprint(i), &[summary(&format!("p{i}"))], &NullScopes);
        }
        let total = store.disk_bytes();
        assert!(total > 0);
        let removed = store.gc(None, Some(total / 2));
        assert!(removed >= 1, "cap pass must delete oldest entries");
        assert!(store.disk_bytes() <= total / 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_serves_warm_hits_from_memory() {
        let root = temp_dir("tiered-warm");
        let store = TieredStore::open(&root, TieredConfig::default()).expect("open");
        let key = Fingerprint(11);
        assert!(store.load(&key, &NullScopes).is_none());
        store.store(&key, &[summary("f")], &NullScopes);
        // First and every following load is a pure memory hit: the disk
        // tier was probed exactly once (the initial miss).
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");
        assert_eq!(store.load(&key, &NullScopes).expect("hit")[0].name, "f");
        let c = store.counters();
        assert_eq!(c.mem_hits, 2);
        assert_eq!(c.disk_probes, 1, "only the cold miss touched disk");
        assert_eq!(c.misses, 1);
        assert_eq!(c.mem_entries, 1);
        assert!(c.mem_bytes > 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_promotes_disk_entries_into_memory() {
        let root = temp_dir("tiered-promote");
        let key = Fingerprint(12);
        // A different handle (think: another process) populated the disk.
        DiskStore::open(&root)
            .expect("open")
            .store(&key, &[summary("g")], &NullScopes);
        let store = TieredStore::open(&root, TieredConfig::default()).expect("open");
        assert_eq!(
            store.load(&key, &NullScopes).expect("disk hit")[0].name,
            "g"
        );
        assert_eq!(store.load(&key, &NullScopes).expect("mem hit")[0].name, "g");
        let c = store.counters();
        assert_eq!(c.disk_hits, 1);
        assert_eq!(c.mem_hits, 1);
        assert_eq!(c.disk_probes, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_evicts_lru_under_byte_pressure() {
        // One shard so the LRU order is global and observable; cap sized
        // for roughly two entries.
        let store = TieredStore::new(
            None,
            TieredConfig {
                cap_bytes: None,
                max_age: None,
                shards: 1,
            },
        );
        store.store(&Fingerprint(1), &[summary("a")], &NullScopes);
        let entry_bytes = store.counters().mem_bytes;
        let store = TieredStore::new(
            None,
            TieredConfig {
                cap_bytes: Some(entry_bytes * 2 + entry_bytes / 2),
                max_age: None,
                shards: 1,
            },
        );
        store.store(&Fingerprint(1), &[summary("a")], &NullScopes);
        store.store(&Fingerprint(2), &[summary("b")], &NullScopes);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(store.load(&Fingerprint(1), &NullScopes).is_some());
        store.store(&Fingerprint(3), &[summary("c")], &NullScopes);
        let c = store.counters();
        assert_eq!(c.lru_evictions, 1);
        assert_eq!(c.mem_entries, 2);
        assert!(
            store.load(&Fingerprint(1), &NullScopes).is_some(),
            "recently used stays"
        );
        assert!(
            store.load(&Fingerprint(3), &NullScopes).is_some(),
            "newest stays"
        );
        assert!(
            store.load(&Fingerprint(2), &NullScopes).is_none(),
            "least-recently-used entry must be the one evicted"
        );
        let c = store.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.corrupt_evictions, 0);
    }

    #[test]
    fn promotion_preserves_an_entrys_true_age() {
        let root = temp_dir("tiered-backdate");
        let key = Fingerprint(31);
        DiskStore::open(&root)
            .expect("open")
            .store(&key, &[summary("f")], &NullScopes);
        // Entry is ~35ms old by the time the tiered handle promotes it.
        std::thread::sleep(Duration::from_millis(35));
        let store = TieredStore::open(
            &root,
            TieredConfig {
                cap_bytes: None,
                max_age: Some(Duration::from_millis(60)),
                shards: 1,
            },
        )
        .expect("open tiered");
        assert!(
            store.load(&key, &NullScopes).is_some(),
            "still within max_age"
        );
        // 35ms + 40ms > 60ms: the promoted copy must expire on its *true*
        // age, not on time-since-promotion.
        std::thread::sleep(Duration::from_millis(40));
        assert!(
            store.load(&key, &NullScopes).is_none(),
            "promotion must not reset the expiry clock"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tiered_store_expires_entries_by_age() {
        let root = temp_dir("tiered-age");
        let store = TieredStore::open(
            &root,
            TieredConfig {
                cap_bytes: None,
                max_age: Some(Duration::from_millis(30)),
                shards: 2,
            },
        )
        .expect("open");
        let key = Fingerprint(21);
        store.store(&key, &[summary("f")], &NullScopes);
        assert!(store.load(&key, &NullScopes).is_some(), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            store.load(&key, &NullScopes).is_none(),
            "expired entry must not hit"
        );
        let c = store.counters();
        assert!(c.age_evictions >= 1, "expiry must be counted: {c:?}");
        assert_eq!(c.corrupt_evictions, 0);
        // gc() sweeps the disk tier too: after it, the directory is empty.
        store.store(&key, &[summary("f")], &NullScopes);
        std::thread::sleep(Duration::from_millis(60));
        store.gc();
        assert_eq!(store.disk().expect("disk tier").disk_bytes(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
