//! Intra-procedural summarization (the `Summary(P, φ)` / `PathSummary`
//! primitives of §3), realized over the structured IR.
//!
//! A statement is summarized bottom-up into a [`TransitionFormula`]; loops
//! are summarized by Compositional-Recurrence-Analysis-style extraction of
//! per-variable difference recurrences, closed under an explicit iteration
//! counter, and bounded by syntactic ranking candidates.  Calls are replaced
//! by the summary supplied for the callee (the *hypothetical summary*
//! `φ_call` of Alg. 2 for calls within the strongly connected component
//! under analysis, the already-computed summary otherwise).

use crate::lower::{lower_cond, lower_cond_negated, lower_expr};
use chora_expr::{FreshSource, Polynomial, Symbol};
use chora_ir::{Cond, Procedure, Program, Stmt};
use chora_logic::{Atom, Polyhedron, TransitionFormula};
use chora_numeric::BigRational;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::RwLock;

/// The summary of a statement: behaviours that fall through plus behaviours
/// that exit the enclosing procedure through a `return`.
#[derive(Clone, Debug)]
pub struct StmtSummary {
    /// Behaviours that reach the statement's sequential successor.
    pub fall_through: TransitionFormula,
    /// Behaviours that execute `return` somewhere inside the statement.
    pub returned: TransitionFormula,
}

/// The local variable used to carry a procedure's return value; its primed
/// version is the `return'` symbol of the paper.
pub fn return_variable() -> Symbol {
    Symbol::new("ret")
}

/// Intra-procedural summarizer.
///
/// The summary table sits behind an [`RwLock`] so that a single `Summarizer`
/// can be shared by reference across the concurrently-summarized components
/// of one call-graph level (reads vastly outnumber the one write per
/// component); every summarization method takes the analysis task's
/// [`FreshSource`] so that fresh existential symbols are deterministic per
/// task rather than drawn from global mutable state.
pub struct Summarizer<'a> {
    program: &'a Program,
    /// Summaries of procedures outside the SCC currently being analysed,
    /// expressed over `globals ∪ params (pre)` and `globals' ∪ ret'`.
    summaries: RwLock<BTreeMap<String, TransitionFormula>>,
}

impl<'a> Summarizer<'a> {
    /// Creates a summarizer for a program.
    pub fn new(program: &'a Program) -> Summarizer<'a> {
        Summarizer {
            program,
            summaries: RwLock::new(BTreeMap::new()),
        }
    }

    /// The program being analysed.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Records the finished summary of a procedure.
    pub fn insert_summary(&self, name: impl Into<String>, formula: TransitionFormula) {
        self.summaries
            .write()
            .expect("summary table lock")
            .insert(name.into(), formula);
    }

    /// The already-computed summary of a procedure, if any.
    pub fn summary_of(&self, name: &str) -> Option<TransitionFormula> {
        self.summaries
            .read()
            .expect("summary table lock")
            .get(name)
            .cloned()
    }

    /// The full variable vocabulary of a procedure: globals, parameters,
    /// locals, every assigned temporary, and the return carrier.
    pub fn proc_vars(&self, proc: &Procedure) -> Vec<Symbol> {
        let mut vars: Vec<Symbol> = self.program.globals.clone();
        for p in &proc.params {
            if !vars.contains(p) {
                vars.push(*p);
            }
        }
        for l in &proc.locals {
            if !vars.contains(l) {
                vars.push(*l);
            }
        }
        for v in proc.body.assigned_variables() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let ret = return_variable();
        if !vars.contains(&ret) {
            vars.push(ret);
        }
        vars
    }

    /// The externally visible vocabulary of a procedure summary:
    /// `globals ∪ params` (pre-state) and `globals' ∪ ret'` (post-state).
    pub fn summary_vocabulary(&self, proc: &Procedure) -> BTreeSet<Symbol> {
        let mut keep: BTreeSet<Symbol> = BTreeSet::new();
        for g in &self.program.globals {
            keep.insert(*g);
            keep.insert(g.primed());
        }
        for p in &proc.params {
            keep.insert(*p);
        }
        keep.insert(return_variable().primed());
        keep
    }

    /// `Summary(P, φ)`: summarizes the whole procedure, interpreting calls to
    /// procedures in `scc_override` by the given formulas (e.g. `false` for
    /// the base-case summary β, or the hypothetical summary `φ_call`), and
    /// all other calls by their already-computed summaries.
    ///
    /// The result is expressed over the summary vocabulary (locals and
    /// parameters' post-state are projected away) and additionally keeps any
    /// rigid symbols (such as `b_k(h)`) introduced by `scc_override`.
    pub fn summarize_procedure(
        &self,
        proc: &Procedure,
        scc_override: &BTreeMap<String, TransitionFormula>,
        fresh: &FreshSource,
    ) -> TransitionFormula {
        let vars = self.proc_vars(proc);
        let body = self.summarize_stmt(&proc.body, &vars, scc_override, fresh);
        let total = body.fall_through.union(&body.returned);
        let keep = self.summary_vocabulary(proc);
        // Keep rigid symbols (anything that is not a program variable of this
        // procedure, primed or not).
        let mut keep_with_rigid = keep.clone();
        for s in total.symbols() {
            let base = s.unprimed();
            if !vars.contains(&base) {
                keep_with_rigid.insert(s);
            }
        }
        total.project_onto(&keep_with_rigid).simplify()
    }

    /// Summarizes a statement over the given variable vocabulary.
    pub fn summarize_stmt(
        &self,
        stmt: &Stmt,
        vars: &[Symbol],
        scc_override: &BTreeMap<String, TransitionFormula>,
        fresh: &FreshSource,
    ) -> StmtSummary {
        match stmt {
            Stmt::Skip | Stmt::Assert(_, _) => StmtSummary {
                fall_through: TransitionFormula::identity(vars),
                returned: TransitionFormula::bottom(),
            },
            Stmt::Assign(v, e) => {
                let lowered = lower_expr(e, fresh);
                let mut atoms = vec![Atom::eq(Polynomial::var(v.primed()), lowered.value.clone())];
                atoms.extend(lowered.constraints.clone());
                for w in vars {
                    if w != v {
                        atoms.push(Atom::eq(Polynomial::var(w.primed()), Polynomial::var(*w)));
                    }
                }
                let mut tf = TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms));
                if !lowered.fresh.is_empty() {
                    let drop: BTreeSet<Symbol> = lowered.fresh.into_iter().collect();
                    tf = tf.eliminate(&drop);
                }
                StmtSummary {
                    fall_through: tf,
                    returned: TransitionFormula::bottom(),
                }
            }
            Stmt::Havoc(v) => StmtSummary {
                fall_through: TransitionFormula::havoc(std::slice::from_ref(v), vars),
                returned: TransitionFormula::bottom(),
            },
            Stmt::Assume(c) => StmtSummary {
                fall_through: self.assume_formula(c, vars, fresh),
                returned: TransitionFormula::bottom(),
            },
            Stmt::Seq(stmts) => {
                let mut fall = TransitionFormula::identity(vars);
                let mut returned = TransitionFormula::bottom();
                for s in stmts {
                    let sub = self.summarize_stmt(s, vars, scc_override, fresh);
                    returned = returned.union(&fall.sequence(&sub.returned, vars));
                    fall = fall.sequence(&sub.fall_through, vars);
                    if fall.is_bottom() && returned.is_bottom() {
                        break;
                    }
                }
                StmtSummary {
                    fall_through: fall,
                    returned,
                }
            }
            Stmt::If(c, then_branch, else_branch) => {
                let then_sum = self.summarize_stmt(then_branch, vars, scc_override, fresh);
                let else_sum = self.summarize_stmt(else_branch, vars, scc_override, fresh);
                let guard_t = self.assume_formula(c, vars, fresh);
                let guard_f = self.assume_negation(c, vars, fresh);
                StmtSummary {
                    fall_through: guard_t
                        .sequence(&then_sum.fall_through, vars)
                        .union(&guard_f.sequence(&else_sum.fall_through, vars)),
                    returned: guard_t
                        .sequence(&then_sum.returned, vars)
                        .union(&guard_f.sequence(&else_sum.returned, vars)),
                }
            }
            Stmt::While(c, body) => {
                let body_sum = self.summarize_stmt(body, vars, scc_override, fresh);
                let guard_t = self.assume_formula(c, vars, fresh);
                let guard_f = self.assume_negation(c, vars, fresh);
                let one_iteration = guard_t.sequence(&body_sum.fall_through, vars);
                let iterations = self.loop_summary(&one_iteration, vars, fresh);
                StmtSummary {
                    fall_through: iterations.sequence(&guard_f, vars),
                    returned: iterations
                        .sequence(&guard_t, vars)
                        .sequence(&body_sum.returned, vars),
                }
            }
            Stmt::Return(e) => {
                let assign = match e {
                    None => TransitionFormula::identity(vars),
                    Some(expr) => {
                        let sub = self.summarize_stmt(
                            &Stmt::Assign(return_variable(), expr.clone()),
                            vars,
                            scc_override,
                            fresh,
                        );
                        sub.fall_through
                    }
                };
                StmtSummary {
                    fall_through: TransitionFormula::bottom(),
                    returned: assign,
                }
            }
            Stmt::Call { callee, args, ret } => {
                let callee_summary = match scc_override.get(callee) {
                    Some(f) => f.clone(),
                    None => self
                        .summary_of(callee)
                        .unwrap_or_else(|| self.unknown_call_summary()),
                };
                let tf = self.apply_call(&callee_summary, callee, args, ret.as_ref(), vars, fresh);
                StmtSummary {
                    fall_through: tf,
                    returned: TransitionFormula::bottom(),
                }
            }
        }
    }

    /// Summary used for calls to procedures with no known summary (undefined
    /// externals): globals and the return value are havocked.
    fn unknown_call_summary(&self) -> TransitionFormula {
        TransitionFormula::top()
    }

    fn assume_formula(&self, c: &Cond, vars: &[Symbol], fresh: &FreshSource) -> TransitionFormula {
        let mut out = TransitionFormula::bottom();
        for conj in lower_cond(c, fresh) {
            out = out.union(&TransitionFormula::assume(conj, vars));
        }
        out
    }

    fn assume_negation(&self, c: &Cond, vars: &[Symbol], fresh: &FreshSource) -> TransitionFormula {
        let mut out = TransitionFormula::bottom();
        for conj in lower_cond_negated(c, fresh) {
            out = out.union(&TransitionFormula::assume(conj, vars));
        }
        out
    }

    /// Binds a callee summary at a call site.
    fn apply_call(
        &self,
        callee_summary: &TransitionFormula,
        callee: &str,
        args: &[chora_ir::Expr],
        ret: Option<&Symbol>,
        vars: &[Symbol],
        fresh: &FreshSource,
    ) -> TransitionFormula {
        let formals: Vec<Symbol> = self
            .program
            .procedure(callee)
            .map(|p| p.params.clone())
            .unwrap_or_default();
        // Fresh names for formals and for the callee's return value.
        let arg_syms: Vec<Symbol> = formals.iter().map(|_| fresh.fresh()).collect();
        let rv = fresh.fresh();
        let renamed = callee_summary.rename(&mut |s| {
            if let Some(pos) = formals.iter().position(|f| f == s) {
                return arg_syms[pos];
            }
            if *s == return_variable().primed() {
                return rv;
            }
            *s
        });
        // Argument bindings and the caller-side frame.
        let mut atoms: Vec<Atom> = Vec::new();
        let mut to_drop: BTreeSet<Symbol> = arg_syms.iter().cloned().collect();
        to_drop.insert(rv);
        for (i, a) in args.iter().enumerate() {
            if i >= arg_syms.len() {
                break;
            }
            let lowered = lower_expr(a, fresh);
            atoms.push(Atom::eq(
                Polynomial::var(arg_syms[i]),
                lowered.value.clone(),
            ));
            atoms.extend(lowered.constraints);
            to_drop.extend(lowered.fresh);
        }
        if let Some(r) = ret {
            atoms.push(Atom::eq(Polynomial::var(r.primed()), Polynomial::var(rv)));
        }
        let globals: BTreeSet<Symbol> = self.program.globals.iter().cloned().collect();
        for v in vars {
            let is_written = globals.contains(v) || Some(v) == ret;
            if !is_written {
                atoms.push(Atom::eq(Polynomial::var(v.primed()), Polynomial::var(*v)));
            }
        }
        let bindings = Polyhedron::from_atoms(atoms);
        renamed.conjoin(&bindings).eliminate(&to_drop)
    }

    /// Summarizes `body^k` for `k ≥ 0`: the reflexive-transitive closure of a
    /// loop body, via difference-recurrence extraction plus a ranking-based
    /// bound on the number of iterations.
    pub fn loop_summary(
        &self,
        body: &TransitionFormula,
        vars: &[Symbol],
        fresh: &FreshSource,
    ) -> TransitionFormula {
        if body.is_bottom() {
            return TransitionFormula::identity(vars);
        }
        let mut keep: BTreeSet<Symbol> = BTreeSet::new();
        for v in vars {
            keep.insert(*v);
            keep.insert(v.primed());
        }
        for s in body.symbols() {
            let base = s.unprimed();
            if !vars.contains(&base) {
                keep.insert(s);
            }
        }
        let hull = body.abstract_hull(&keep);
        let k = fresh.fresh();
        let kp = Polynomial::var(k);
        let mut atoms: Vec<Atom> = vec![Atom::ge(kp.clone(), Polynomial::zero())];
        // Invariant pre-state symbols (unchanged program variables plus rigid
        // symbols).
        let invariant: BTreeSet<Symbol> = {
            let mut inv: BTreeSet<Symbol> = body
                .symbols()
                .iter()
                .filter(|s| !s.is_post() && !vars.contains(&s.unprimed()))
                .cloned()
                .collect();
            for v in vars {
                let eq = Atom::eq(Polynomial::var(v.primed()), Polynomial::var(*v));
                if hull.implies_atom(&eq) {
                    inv.insert(*v);
                }
            }
            inv
        };
        // The bound on the iteration count, if a ranking candidate is found.
        let k_bound = self.iteration_bound(&hull, vars);
        if let Some(bound) = &k_bound {
            atoms.push(Atom::le(kp.clone(), bound.clone()));
        }
        // Case splits on the sign of a symbolic per-iteration increment: for
        // `v' ≤ v + e·k` with non-constant `e`, the iterated bound
        // `v' ≤ v + e·kbound` is only sound when `e ≥ 0`, so a disjunctive
        // split on the sign of `e` is generated (capped to keep the number of
        // disjuncts small).
        let mut splits: Vec<(Polynomial, Polynomial, Symbol)> = Vec::new();
        for v in vars {
            let vp = Polynomial::var(v.primed());
            let v0 = Polynomial::var(*v);
            if hull.implies_atom(&Atom::eq(vp.clone(), v0.clone())) {
                atoms.push(Atom::eq(vp, v0));
                continue;
            }
            // Additive difference bounds: v' ≤ v + e·k and v' ≥ v + e·k.
            // Equalities are examined in both orientations.
            let mut oriented: Vec<Atom> = Vec::new();
            for atom in hull.atoms() {
                match atom.kind {
                    chora_logic::AtomKind::Eq => {
                        oriented.push(Atom::le_zero(atom.poly.clone()));
                        oriented.push(Atom::le_zero(-&atom.poly));
                    }
                    _ => oriented.push(atom.clone()),
                }
            }
            for atom in &oriented {
                if let Some(ub) = atom.upper_bound_on(&v.primed()) {
                    if let Some(delta) = invariant_difference(&ub, &v0, &invariant) {
                        atoms.push(Atom::le(vp.clone(), &v0 + &(&delta * &kp)));
                        if let Some(bound) = &k_bound {
                            if hull.implies_atom(&Atom::ge(delta.clone(), Polynomial::zero()))
                                || delta
                                    .as_constant()
                                    .map(|c| !c.is_negative())
                                    .unwrap_or(false)
                            {
                                // e ≥ 0 and k ≤ bound  ⇒  v' ≤ v + e·bound.
                                atoms.push(Atom::le(vp.clone(), &v0 + &(&delta * bound)));
                            } else if !delta.is_constant() && splits.len() < 2 {
                                splits.push((delta.clone(), bound.clone(), *v));
                            }
                        }
                    }
                }
                if let Some(lb) = atom.lower_bound_on(&v.primed()) {
                    if let Some(delta) = invariant_difference(&lb, &v0, &invariant) {
                        atoms.push(Atom::ge(vp.clone(), &v0 + &(&delta * &kp)));
                    }
                }
            }
        }
        // Expand the sign splits into disjuncts.
        let mut disjunct_atom_sets: Vec<Vec<Atom>> = vec![atoms];
        for (delta, bound, v) in &splits {
            let mut expanded = Vec::new();
            for base in &disjunct_atom_sets {
                let vp = Polynomial::var(v.primed());
                let v0 = Polynomial::var(*v);
                let mut pos = base.clone();
                pos.push(Atom::ge(delta.clone(), Polynomial::zero()));
                pos.push(Atom::le(vp.clone(), &v0 + &(delta * bound)));
                let mut neg = base.clone();
                neg.push(Atom::le(delta.clone(), Polynomial::zero()));
                neg.push(Atom::le(vp, v0));
                expanded.push(pos);
                expanded.push(neg);
            }
            disjunct_atom_sets = expanded;
        }
        let closure = TransitionFormula::from_disjuncts(
            disjunct_atom_sets
                .into_iter()
                .map(Polyhedron::from_atoms)
                .collect(),
        );
        let drop: BTreeSet<Symbol> = [k].into_iter().collect();
        let closure = closure.eliminate(&drop);
        // k = 0 is included (identity), so the closure alone over-approximates
        // any number of iterations; union with identity keeps precision for
        // the common zero-iteration exit.
        closure.union(&TransitionFormula::identity(vars)).simplify()
    }

    /// Finds a syntactic ranking bound on the number of loop iterations: a
    /// pre-state expression `r` such that each iteration decreases `r` by at
    /// least one and requires `r ≥ lo`; the iteration count is then at most
    /// `r − lo + 1`.
    fn iteration_bound(&self, hull: &Polyhedron, vars: &[Symbol]) -> Option<Polynomial> {
        let mut candidates: Vec<Polynomial> = Vec::new();
        for v in vars {
            candidates.push(Polynomial::var(*v));
            for w in vars {
                if v != w {
                    candidates.push(&Polynomial::var(*v) - &Polynomial::var(*w));
                }
            }
            // Constant-bounded counters (`for (i = ..; i < 18; i++)`): the
            // quantity `c - i` decreases and stays non-negative.
            for atom in hull.atoms() {
                if let Some(ub) = atom.upper_bound_on(v) {
                    if ub.is_constant() {
                        candidates.push(&ub - &Polynomial::var(*v));
                    }
                }
            }
        }
        for r in candidates {
            let r_post = r.rename(&mut |s| {
                if vars.contains(s) {
                    s.primed()
                } else {
                    *s
                }
            });
            let decreases = hull.implies_atom(&Atom::le(r_post.clone(), &r - &Polynomial::one()));
            if !decreases {
                continue;
            }
            for lo in [1i64, 0] {
                let lo_poly = Polynomial::constant(BigRational::from(lo));
                if hull.implies_atom(&Atom::ge(r.clone(), lo_poly.clone())) {
                    // k ≤ r − lo + 1
                    return Some(&(&r - &lo_poly) + &Polynomial::one());
                }
            }
        }
        None
    }
}

/// If `bound − base` is a polynomial over invariant symbols only (and does
/// not mention `base`'s variable), returns that difference.
fn invariant_difference(
    bound: &Polynomial,
    base: &Polynomial,
    invariant: &BTreeSet<Symbol>,
) -> Option<Polynomial> {
    let delta = bound - base;
    if delta.symbols().iter().all(|s| invariant.contains(s)) {
        Some(delta)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_ir::{Expr, Procedure};
    use chora_numeric::rat;

    fn pvar(name: &str) -> Polynomial {
        Polynomial::var(Symbol::new(name))
    }
    fn fs() -> FreshSource {
        FreshSource::new(0)
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn straight_line_procedure() {
        let mut prog = Program::new();
        prog.add_global("g");
        prog.add_procedure(Procedure::new(
            "bump",
            &["x"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("g", Expr::var("g").add(Expr::var("x"))),
                Stmt::Return(Some(Expr::var("x").add(Expr::int(1)))),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let proc = prog.procedure("bump").unwrap();
        let summary = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fs());
        assert!(summary.implies_atom(&Atom::eq(pvar("g'"), &pvar("g") + &pvar("x"))));
        assert!(summary.implies_atom(&Atom::eq(pvar("ret'"), &pvar("x") + &c(1))));
    }

    #[test]
    fn branches_join() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "absolute",
            &["x"],
            &[],
            Stmt::if_else(
                Cond::ge(Expr::var("x"), Expr::int(0)),
                Stmt::Return(Some(Expr::var("x"))),
                Stmt::Return(Some(Expr::int(0).sub(Expr::var("x")))),
            ),
        ));
        let summarizer = Summarizer::new(&prog);
        let proc = prog.procedure("absolute").unwrap();
        let summary = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fs());
        assert!(summary.implies_atom(&Atom::ge(pvar("ret'"), Polynomial::zero())));
        assert!(summary.implies_atom(&Atom::ge(pvar("ret'"), pvar("x"))));
    }

    #[test]
    fn counting_loop() {
        // i := 0; cost := 0; while (i < n) { i := i + 1; cost := cost + 1 }
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new(
            "count",
            &["n"],
            &["i"],
            Stmt::seq(vec![
                Stmt::Assume(Cond::ge(Expr::var("n"), Expr::int(0))),
                Stmt::assign("i", Expr::int(0)),
                Stmt::assign("cost", Expr::int(0)),
                Stmt::while_loop(
                    Cond::lt(Expr::var("i"), Expr::var("n")),
                    Stmt::seq(vec![
                        Stmt::assign("i", Expr::var("i").add(Expr::int(1))),
                        Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                    ]),
                ),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let proc = prog.procedure("count").unwrap();
        let summary = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fs());
        // cost' ≤ n  (and cost' ≤ n + 1 certainly)
        assert!(summary.implies_atom(&Atom::le(pvar("cost'"), &pvar("n") + &c(1))));
        assert!(summary.implies_atom(&Atom::ge(pvar("cost'"), Polynomial::zero())));
    }

    #[test]
    fn call_binds_arguments_and_return() {
        let mut prog = Program::new();
        prog.add_global("g");
        prog.add_procedure(Procedure::new(
            "callee",
            &["a"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("g", Expr::var("g").add(Expr::var("a"))),
                Stmt::Return(Some(Expr::var("a").mul(Expr::int(2)))),
            ]),
        ));
        prog.add_procedure(Procedure::new(
            "caller",
            &["n"],
            &["r"],
            Stmt::seq(vec![
                Stmt::call_assign("r", "callee", vec![Expr::var("n").add(Expr::int(3))]),
                Stmt::Return(Some(Expr::var("r"))),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let callee_summary = summarizer.summarize_procedure(
            prog.procedure("callee").unwrap(),
            &BTreeMap::new(),
            &fs(),
        );
        summarizer.insert_summary("callee", callee_summary);
        let caller_summary = summarizer.summarize_procedure(
            prog.procedure("caller").unwrap(),
            &BTreeMap::new(),
            &fs(),
        );
        // ret' = 2n + 6, g' = g + n + 3
        assert!(
            caller_summary.implies_atom(&Atom::eq(pvar("ret'"), &pvar("n").scale(&rat(2)) + &c(6)))
        );
        assert!(
            caller_summary.implies_atom(&Atom::eq(pvar("g'"), &(&pvar("g") + &pvar("n")) + &c(3)))
        );
    }

    #[test]
    fn loop_with_symbolic_increment() {
        // Ex. 4.1 shape: for (i = 0; i < 18; i++) { g := g + w; }  with w a
        // loop-invariant parameter (standing for the callee contribution).
        let mut prog = Program::new();
        prog.add_global("g");
        prog.add_procedure(Procedure::new(
            "rep",
            &["w"],
            &["i"],
            Stmt::seq(vec![
                Stmt::Assume(Cond::ge(Expr::var("w"), Expr::int(0))),
                Stmt::assign("i", Expr::int(0)),
                Stmt::while_loop(
                    Cond::lt(Expr::var("i"), Expr::int(18)),
                    Stmt::seq(vec![
                        Stmt::assign("g", Expr::var("g").add(Expr::var("w"))),
                        Stmt::assign("i", Expr::var("i").add(Expr::int(1))),
                    ]),
                ),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let proc = prog.procedure("rep").unwrap();
        let summary = summarizer.summarize_procedure(proc, &BTreeMap::new(), &fs());
        // g' ≤ g + 19·w  (the ranking bound k ≤ 18 − i + 1 instantiated at i = 0).
        let bound = &pvar("g") + &pvar("w").scale(&rat(19));
        assert!(summary.implies_atom(&Atom::le(pvar("g'"), bound)));
    }

    #[test]
    fn returns_inside_branches_terminate_paths() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "early",
            &["x"],
            &[],
            Stmt::seq(vec![
                Stmt::if_then(
                    Cond::le(Expr::var("x"), Expr::int(0)),
                    Stmt::Return(Some(Expr::int(0))),
                ),
                Stmt::Return(Some(Expr::int(1))),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let summary = summarizer.summarize_procedure(
            prog.procedure("early").unwrap(),
            &BTreeMap::new(),
            &fs(),
        );
        assert!(summary.implies_atom(&Atom::ge(pvar("ret'"), Polynomial::zero())));
        assert!(summary.implies_atom(&Atom::le(pvar("ret'"), Polynomial::one())));
    }
}
