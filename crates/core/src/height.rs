//! Height-based recurrence analysis (§4.1) and its mutual-recursion
//! generalization (§4.4): Algorithm 2 (candidate recurrence-inequation
//! extraction via hypothetical summaries) and Algorithm 3 (stratified
//! recurrence construction), followed by recurrence solving.

use crate::summarize::Summarizer;
use chora_expr::{ExpPoly, FreshSource, Polynomial, Symbol};
use chora_ir::Procedure;
use chora_logic::{Atom, AtomKind, Polyhedron, TransitionFormula};
use chora_numeric::BigRational;
use chora_recurrence::RecurrenceSystem;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum number of candidate bounded terms kept per procedure.
const MAX_TERMS_PER_PROC: usize = 10;

/// The result of height-based recurrence analysis on one strongly connected
/// component of the call graph.
#[derive(Clone, Debug, Default)]
pub struct HeightAnalysis {
    /// For each procedure: the candidate relational expressions `τ_k`
    /// (indexed by the *global* bound index `k`).
    pub terms: BTreeMap<String, Vec<(usize, Polynomial)>>,
    /// Closed forms `b_k(h)` for every bound index that survived Alg. 3 and
    /// recurrence solving, together with an exactness flag.
    pub solutions: BTreeMap<usize, (ExpPoly, bool)>,
    /// The hypothetical summaries `φ_call(P_i)` (useful for diagnostics and
    /// for the two-region extension).
    pub hypothetical: BTreeMap<String, TransitionFormula>,
}

impl HeightAnalysis {
    /// The solved bound facts of one procedure: pairs `(τ_k, b_k)`.
    pub fn solved_terms(&self, proc: &str) -> Vec<(Polynomial, ExpPoly, bool)> {
        let mut out = Vec::new();
        if let Some(terms) = self.terms.get(proc) {
            for (k, tau) in terms {
                if let Some((cf, exact)) = self.solutions.get(k) {
                    out.push((tau.clone(), cf.clone(), *exact));
                }
            }
        }
        out
    }
}

/// Runs height-based recurrence analysis on a (possibly mutually) recursive
/// strongly connected component `members`.
pub fn analyze_scc(
    summarizer: &Summarizer<'_>,
    members: &[String],
    fresh: &FreshSource,
) -> HeightAnalysis {
    let program = summarizer.program();
    let procs: Vec<&Procedure> = members
        .iter()
        .filter_map(|m| program.procedure(m))
        .collect();
    if procs.is_empty() {
        return HeightAnalysis::default();
    }
    // Step 1 (Alg. 2 lines 1-6): base-case summaries and candidate terms.
    let bottom_override: BTreeMap<String, TransitionFormula> = members
        .iter()
        .map(|m| (m.clone(), TransitionFormula::bottom()))
        .collect();
    let mut analysis = HeightAnalysis::default();
    let mut next_index = 1usize;
    for proc in &procs {
        let beta = summarizer.summarize_procedure(proc, &bottom_override, fresh);
        let vocab = summarizer.summary_vocabulary(proc);
        let wbase = beta.abstract_hull(&vocab);
        let mut taus: Vec<Polynomial> = Vec::new();
        if !beta.is_bottom() {
            for atom in wbase.atoms() {
                match atom.kind {
                    AtomKind::Le | AtomKind::Lt => push_tau(&mut taus, atom.poly.clone()),
                    AtomKind::Eq => {
                        push_tau(&mut taus, atom.poly.clone());
                        push_tau(&mut taus, -&atom.poly);
                    }
                }
            }
        }
        taus.truncate(MAX_TERMS_PER_PROC);
        let indexed: Vec<(usize, Polynomial)> = taus
            .into_iter()
            .map(|t| {
                let k = next_index;
                next_index += 1;
                (k, t)
            })
            .collect();
        analysis.terms.insert(proc.name.clone(), indexed);
    }
    // Step 2 (Alg. 2 line 7): hypothetical summaries φ_call.
    for proc in &procs {
        let mut atoms = Vec::new();
        for (k, tau) in &analysis.terms[&proc.name] {
            let b = Polynomial::var(Symbol::bound_at_h(*k));
            atoms.push(Atom::le(tau.clone(), b.clone()));
            atoms.push(Atom::ge(b, Polynomial::zero()));
        }
        analysis.hypothetical.insert(
            proc.name.clone(),
            TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms)),
        );
    }
    // Steps 3-5 (Alg. 2 lines 8-14): extract candidate recurrence inequations.
    let call_override: BTreeMap<String, TransitionFormula> = analysis.hypothetical.clone();
    let all_bound_syms: BTreeSet<Symbol> = analysis
        .terms
        .values()
        .flat_map(|v| v.iter().map(|(k, _)| Symbol::bound_at_h(*k)))
        .collect();
    let mut candidates: Vec<(usize, Polynomial)> = Vec::new(); // (k, rhs upper bound on b_k(h+1))
    for proc in &procs {
        if analysis.terms[&proc.name].is_empty() {
            continue;
        }
        let phi_rec = summarizer.summarize_procedure(proc, &call_override, fresh);
        if phi_rec.is_bottom() {
            continue;
        }
        // φ_ext = φ_rec ∧ b_k(h+1) = τ_k for this procedure's terms.  The
        // non-negativity of every hypothetical bounding function (asserted by
        // φ_call along recursive paths) is a global assumption of the
        // analysis, so it is conjoined here as well; without it the base-case
        // disjunct would not entail the recurrence inequations.
        let mut ext_atoms = Vec::new();
        for (k, tau) in &analysis.terms[&proc.name] {
            ext_atoms.push(Atom::eq(
                Polynomial::var(Symbol::bound_at_h1(*k)),
                tau.clone(),
            ));
        }
        for b in &all_bound_syms {
            ext_atoms.push(Atom::ge(Polynomial::var(*b), Polynomial::zero()));
        }
        let phi_ext = phi_rec.conjoin(&Polyhedron::from_atoms(ext_atoms));
        for (k, _) in &analysis.terms[&proc.name] {
            let mut keep: BTreeSet<Symbol> = all_bound_syms.clone();
            keep.insert(Symbol::bound_at_h1(*k));
            let wext = phi_ext.abstract_hull(&keep);
            for atom in wext.atoms() {
                let target = Symbol::bound_at_h1(*k);
                let bound = match atom.kind {
                    AtomKind::Le | AtomKind::Lt => atom.upper_bound_on(&target),
                    AtomKind::Eq => Atom::le_zero(atom.poly.clone())
                        .upper_bound_on(&target)
                        .or_else(|| Atom::le_zero(-&atom.poly).upper_bound_on(&target)),
                };
                if let Some(rhs) = bound {
                    // The RHS may only mention b_*(h) symbols.
                    if rhs.symbols().iter().all(|s| s.as_bound_at_h().is_some()) {
                        candidates.push((*k, rhs));
                    }
                }
            }
        }
    }
    // Alg. 3: drop negative coefficients, then select a stratified subset.
    let selected = stratify(candidates);
    // Solve the resulting stratified recurrence (maximal solution: ≤ as =).
    let mut system = RecurrenceSystem::new();
    for (k, rhs) in &selected {
        system.add_equation(*k, rhs.clone());
    }
    if system.is_empty() {
        return analysis;
    }
    if let Ok(solved) = system.solve() {
        for s in solved {
            analysis.solutions.insert(s.index, (s.closed_form, s.exact));
        }
    }
    analysis
}

fn push_tau(taus: &mut Vec<Polynomial>, tau: Polynomial) {
    if tau.is_constant() {
        return;
    }
    if !taus.contains(&tau) {
        taus.push(tau);
    }
}

/// Alg. 3: builds a stratified recurrence from candidate inequations
/// `b_k(h+1) ≤ rhs` (negative coefficients are clamped to zero, each bound
/// gets at most one defining inequation, linear dependencies may stay within
/// a stratum while non-linear dependencies must point strictly downwards).
pub fn stratify(candidates: Vec<(usize, Polynomial)>) -> Vec<(usize, Polynomial)> {
    // Clamp negative coefficients (Alg. 3 line 6) and record usage kinds.
    struct Cand {
        index: usize,
        rhs: Polynomial,
        uses: BTreeSet<usize>,
        uses_nonlinear: BTreeSet<usize>,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (k, rhs) in candidates {
        let clamped = Polynomial::from_terms(rhs.terms().filter_map(|(m, c)| {
            // Only powers of b_*(h) symbols are allowed in the monomial.
            if !m.symbols().iter().all(|s| s.as_bound_at_h().is_some()) {
                return None;
            }
            if c.is_negative() {
                None
            } else {
                Some((c.clone(), m.clone()))
            }
        }));
        let mut uses = BTreeSet::new();
        let mut uses_nonlinear = BTreeSet::new();
        for (m, _) in clamped.terms() {
            for s in m.symbols() {
                if let Some(j) = s.as_bound_at_h() {
                    uses.insert(j);
                    if m.degree() > 1 {
                        uses_nonlinear.insert(j);
                    }
                }
            }
        }
        cands.push(Cand {
            index: k,
            rhs: clamped,
            uses,
            uses_nonlinear,
        });
    }
    // Prefer tighter candidates when several define the same bound: Alg. 3
    // chooses arbitrarily, we order by (degree, coefficient mass) so the
    // smallest right-hand side wins the "arbitrary" choice.
    cands.sort_by(|a, b| {
        let mass = |c: &Cand| {
            let mut sum = BigRational::zero();
            for (_, coeff) in c.rhs.terms() {
                sum += &coeff.abs();
            }
            (c.rhs.degree(), sum)
        };
        (a.index, mass(a)).cmp(&(b.index, mass(b)))
    });
    // Iteratively build the accepted set A (Alg. 3 lines 13-25).
    let mut accepted: Vec<usize> = Vec::new(); // indices into `cands`
    let mut accepted_defines: BTreeSet<usize> = BTreeSet::new();
    loop {
        let mut v: Vec<usize> = (0..cands.len()).filter(|i| !accepted.contains(i)).collect();
        loop {
            let defines_in_v: BTreeSet<usize> = v.iter().map(|&i| cands[i].index).collect();
            let before = v.len();
            v.retain(|&i| {
                let c = &cands[i];
                // Every (linearly) used bound must be defined in V ∪ A ...
                let uses_ok = c
                    .uses
                    .iter()
                    .all(|j| defines_in_v.contains(j) || accepted_defines.contains(j));
                // ... and every non-linearly used bound must already be in A
                // (a strictly lower stratum).
                let nonlinear_ok = c
                    .uses_nonlinear
                    .iter()
                    .all(|j| accepted_defines.contains(j));
                uses_ok && nonlinear_ok
            });
            if v.len() == before {
                break;
            }
        }
        // At most one definition per bound index: keep the first.
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        v.retain(|&i| seen.insert(cands[i].index));
        // Drop definitions for bounds already accepted.
        v.retain(|&i| !accepted_defines.contains(&cands[i].index));
        if v.is_empty() {
            break;
        }
        for &i in &v {
            accepted_defines.insert(cands[i].index);
        }
        accepted.extend(v);
    }
    accepted.sort_unstable();
    accepted
        .into_iter()
        .map(|i| (cands[i].index, cands[i].rhs.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_ir::{Cond, Expr, Procedure, Program, Stmt};
    use chora_numeric::rat;

    fn b(k: usize) -> Polynomial {
        Polynomial::var(Symbol::bound_at_h(k))
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn stratify_selects_consistent_subset() {
        // b1(h+1) ≤ 2 b1(h) + 1   and a competing looser bound; only one kept.
        let cands = vec![
            (1, &b(1).scale(&rat(2)) + &c(1)),
            (1, &b(1).scale(&rat(3)) + &c(5)),
            (2, &(&b(2) + &b(1)) + &c(1)),
        ];
        let selected = stratify(cands);
        assert_eq!(selected.len(), 2);
        assert_eq!(selected.iter().filter(|(k, _)| *k == 1).count(), 1);
    }

    #[test]
    fn stratify_rejects_undefined_uses() {
        // b1 uses b9 which is never defined: dropped.
        let cands = vec![(1, &b(1) + &b(9))];
        assert!(stratify(cands).is_empty());
    }

    #[test]
    fn stratify_clamps_negative_coefficients() {
        let cands = vec![(1, &b(1).scale(&rat(2)) - &c(5))];
        let selected = stratify(cands);
        assert_eq!(selected.len(), 1);
        // -5 clamped away
        assert_eq!(selected[0].1, b(1).scale(&rat(2)));
    }

    #[test]
    fn stratify_nonlinear_needs_lower_stratum() {
        // b2 uses b1 non-linearly; fine because b1 is defined without using b2.
        let cands = vec![
            (1, &b(1).scale(&rat(2)) + &c(1)),
            (2, &(&b(1) * &b(1)) + &b(2)),
        ];
        let selected = stratify(cands);
        assert_eq!(selected.len(), 2);
        // A self non-linear use is rejected.
        let bad = vec![(3, &b(3) * &b(3))];
        assert!(stratify(bad).is_empty());
    }

    /// End-to-end check of Alg. 2 + Alg. 3 + solving on the Tower-of-Hanoi
    /// cost model (the subsetSum example of §2 has the same recurrence shape).
    #[test]
    fn hanoi_height_analysis() {
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new(
            "hanoi",
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                Stmt::if_then(
                    Cond::gt(Expr::var("n"), Expr::int(0)),
                    Stmt::seq(vec![
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                        Stmt::call("hanoi", vec![Expr::var("n").sub(Expr::int(1))]),
                    ]),
                ),
            ]),
        ));
        let summarizer = Summarizer::new(&prog);
        let result = analyze_scc(&summarizer, &["hanoi".to_string()], &FreshSource::new(0));
        // Some bounded term of the form cost' - cost - 1 must get an
        // exponential closed form with base 2.
        let facts = result.solved_terms("hanoi");
        assert!(!facts.is_empty(), "no solved terms");
        let cost_fact = facts.iter().find(|(tau, _, _)| {
            tau.symbols().contains(&Symbol::new("cost'"))
                && tau.symbols().contains(&Symbol::new("cost"))
        });
        let (_, cf, _) = cost_fact.expect("cost difference term solved");
        assert_eq!(
            cf.dominant_base_abs(),
            Some(rat(2)),
            "closed form {cf} should be exponential base 2"
        );
    }
}
