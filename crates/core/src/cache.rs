//! Stable (de)serialization of procedure summaries for the persistent
//! summary cache.
//!
//! The encoding is a hand-rolled compact JSON document (the build
//! environment is offline — no serde), designed for *exact* round-trips:
//! decoding an encoded [`ProcedureSummary`] reproduces the original value
//! bit-for-bit, including the internal order of polyhedron atoms and
//! transition-formula disjuncts, so a cache hit leaves no observable trace
//! in the analysis output.
//!
//! Symbols are serialized **by name and kind**, never by interner index
//! (indices depend on process history); on load they are re-interned
//! through [`Symbol::new`] and friends.  Rationals are serialized as
//! `"num"` / `"num/den"` strings so no precision is lost.  Every decoder is
//! fallible: a corrupted or version-mismatched document yields `None` and
//! the caller discards the cache entry — corruption is never fatal.
//!
//! # Scope-independent entries and rescope-on-load
//!
//! Fresh existential symbols carry a `(scope, serial)` pair where the scope
//! is the component's index in the driver's bottom-up schedule — a number
//! that shifts whenever a procedure is inserted or reordered, even though
//! the component's content is untouched.  To keep cache entries (and their
//! keys) independent of that schedule, fresh symbols are stored under
//! **canonical scope indices**: the entry carries a `"scopes"` table mapping
//! each canonical index to the *component key* that owned the scope, and
//! the serialized symbols say `f:<canonical>:<serial>`.  On load, the
//! decoder asks a [`ScopeResolver`] (built by the driver from this run's
//! schedule) which scope each of those component keys was assigned *this*
//! run and re-homes every fresh symbol accordingly — so a hit restores
//! summaries bit-compatible with a cold run of the current program, no
//! matter how the components moved around.  A rescope that cannot be
//! performed (unknown component key, packed-ceiling overflow) makes the
//! decoder return `None`, which the stores count as a corruption eviction.

use crate::analysis::{BoundFact, ProcedureSummary};
use crate::depth::DepthBound;
use chora_expr::{ExpPoly, Monomial, Polynomial, Symbol, SymbolKind, Term};
use chora_ir::{Fingerprint, FingerprintBuilder};
use chora_logic::{Atom, AtomKind, Polyhedron, TransitionFormula};
use chora_numeric::BigRational;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag and version of the cache entry layout.  Bump the version on
/// any change to the encoding; readers ignore entries from other versions.
pub const CACHE_FORMAT: &str = "chora-summary-cache";
/// Current version of the on-disk encoding.  v2 made entries independent of
/// the bottom-up component order: fresh symbols are stored under canonical
/// scope indices plus a component-key table and rescoped on load.
pub const CACHE_VERSION: i64 = 2;

// ---------------------------------------------------------------------------
// Scope translation.
// ---------------------------------------------------------------------------

/// Two-way mapping between fresh-symbol scopes and the component keys that
/// own them, for one analysis run.
///
/// The driver assigns every call-graph component a deterministic scope (its
/// index in the flattened bottom-up level order); the codec uses this trait
/// to translate those run-local scope numbers into run-independent component
/// keys when writing an entry, and back when restoring one.
pub trait ScopeResolver: Sync {
    /// The scope this run assigned to the component with the given key.
    fn scope_of(&self, key: &Fingerprint) -> Option<u32>;
    /// The key of the component that owns `scope` in this run.
    fn key_of(&self, scope: u32) -> Option<Fingerprint>;

    /// The single-flight group of the analysis run behind this resolver.
    ///
    /// All store probes of one driver batch share a nonzero group (see
    /// [`next_flight_group`]); a `SingleFlight` store never blocks a probe
    /// on a lease held by the *same* group, because the leaseholder's
    /// result is only published at the batch's fold — waiting on a sibling
    /// task would stall until the wait timed out.  Group `0` (the default)
    /// means "no group": always eligible to wait.
    fn flight_group(&self) -> u64 {
        0
    }

    /// A content identity for the *source program* behind this run, stable
    /// across machines (a digest of all component keys).  Remote stores
    /// attach it to GET/PUT traffic so a summary server can count hits
    /// whose key was first published by a different program — the
    /// cross-program dedup the content-only keys enable.
    fn source_tag(&self) -> Option<Fingerprint> {
        None
    }
}

/// Hands out process-unique nonzero single-flight groups, one per driver
/// batch (see [`ScopeResolver::flight_group`]).
pub fn next_flight_group() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A resolver that knows no scopes at all.  Sufficient for summaries that
/// contain no fresh symbols (encoding fails, and decoding evicts, anything
/// that does) — useful for tests and tools that handle synthetic entries.
pub struct NullScopes;

impl ScopeResolver for NullScopes {
    fn scope_of(&self, _key: &Fingerprint) -> Option<u32> {
        None
    }

    fn key_of(&self, _scope: u32) -> Option<Fingerprint> {
        None
    }
}

/// The driver's scope assignment for one run: component `i` of the
/// flattened bottom-up level order gets scope `i`.
///
/// Component keys are unique within a program (each key hashes its member
/// names), so the mapping is bijective.
pub struct ComponentScopes {
    by_scope: Vec<Fingerprint>,
    by_key: HashMap<Fingerprint, u32>,
    flight_group: u64,
    source_tag: Option<Fingerprint>,
}

impl ComponentScopes {
    /// Builds the assignment from per-level component keys (the output of
    /// [`chora_ir::fingerprint::level_keys`]), flattened in level order —
    /// exactly the order in which the driver hands out scopes.  Also
    /// derives the run's [`source tag`](ScopeResolver::source_tag): a
    /// digest of every component key, i.e. a content identity of the whole
    /// program.
    pub fn from_level_keys(levels: &[Vec<Fingerprint>]) -> ComponentScopes {
        let by_scope: Vec<Fingerprint> = levels.iter().flatten().copied().collect();
        let by_key = by_scope
            .iter()
            .enumerate()
            .map(|(scope, key)| (*key, scope as u32))
            .collect();
        let mut tag = FingerprintBuilder::new();
        tag.write_str("chora-source-tag-v1");
        for key in &by_scope {
            tag.write_fingerprint(*key);
        }
        ComponentScopes {
            by_scope,
            by_key,
            flight_group: 0,
            source_tag: Some(tag.finish()),
        }
    }

    /// Stamps the resolver with a driver batch's single-flight group.
    pub fn with_flight_group(mut self, group: u64) -> ComponentScopes {
        self.flight_group = group;
        self
    }
}

impl ScopeResolver for ComponentScopes {
    fn scope_of(&self, key: &Fingerprint) -> Option<u32> {
        self.by_key.get(key).copied()
    }

    fn key_of(&self, scope: u32) -> Option<Fingerprint> {
        self.by_scope.get(scope as usize).copied()
    }

    fn flight_group(&self) -> u64 {
        self.flight_group
    }

    fn source_tag(&self) -> Option<Fingerprint> {
        self.source_tag
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON value, writer, and parser.
// ---------------------------------------------------------------------------

/// A JSON value (only the subset the cache encoding uses).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// A tiny recursive-descent JSON parser.  Returns `None` on any malformed
/// input (including trailing garbage).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'n' => self.eat_literal("null").then_some(Value::Null),
            b't' => self.eat_literal("true").then_some(Value::Bool(true)),
            b'f' => self.eat_literal("false").then_some(Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Some(Value::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Some(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Some(Value::Obj(fields));
                        }
                        _ => return None,
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Re-decode UTF-8 starting here (multi-byte sequences).
                    if b < 0x80 {
                        out.push(b as char);
                        self.pos += 1;
                    } else {
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                        let c = rest.chars().next()?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Int)
    }
}

// ---------------------------------------------------------------------------
// Symbol / rational / polynomial codecs.
// ---------------------------------------------------------------------------

/// Bit-field ceilings re-exported from `chora_expr` so the decode guards
/// track the real `Symbol` layout (a widened layout widens these with it).
const MAX_PAYLOAD: u64 = chora_expr::MAX_SYMBOL_PAYLOAD as u64;
const MAX_FRESH_SERIAL: u64 = chora_expr::MAX_FRESH_SERIAL as u64;

/// Encode-side scope canonicalizer: assigns fresh scopes canonical indices
/// in first-encounter order (a deterministic walk, so two runs that produce
/// the same summaries up to scope renaming emit identical bytes) and
/// remembers the component key behind each.
struct ScopeEncoder<'a> {
    resolver: &'a dyn ScopeResolver,
    /// Canonical index -> owning component key (the entry's `"scopes"`).
    table: Vec<Fingerprint>,
    /// Run scope -> canonical index.
    canonical: HashMap<u32, u32>,
    /// Set when a scope has no component key: the entry cannot be made
    /// order-independent, so it is not written at all.
    failed: bool,
}

impl<'a> ScopeEncoder<'a> {
    fn new(resolver: &'a dyn ScopeResolver) -> ScopeEncoder<'a> {
        ScopeEncoder {
            resolver,
            table: Vec::new(),
            canonical: HashMap::new(),
            failed: false,
        }
    }

    fn canonical_scope(&mut self, scope: u32) -> u32 {
        if let Some(&c) = self.canonical.get(&scope) {
            return c;
        }
        match self.resolver.key_of(scope) {
            Some(key) => {
                let c = self.table.len() as u32;
                self.table.push(key);
                self.canonical.insert(scope, c);
                c
            }
            None => {
                self.failed = true;
                0
            }
        }
    }
}

/// Decode-side rescoper: translates the entry's canonical scope indices,
/// through its component-key table, into the scopes this run assigned.
struct ScopeDecoder<'a> {
    resolver: &'a dyn ScopeResolver,
    /// The entry's `"scopes"` table (canonical index -> component key).
    table: Vec<Fingerprint>,
}

impl ScopeDecoder<'_> {
    /// `None` when the canonical index is out of table range, the component
    /// key is unknown to this run, or the rescoped pair overflows the
    /// packed symbol ceilings — the caller evicts the entry.
    fn rescope(&self, canonical: u64, serial: u64) -> Option<Symbol> {
        let key = self.table.get(usize::try_from(canonical).ok()?)?;
        let scope = self.resolver.scope_of(key)?;
        if serial > MAX_FRESH_SERIAL {
            return None;
        }
        Symbol::try_fresh_at(scope, serial as u32)
    }
}

fn encode_symbol(s: &Symbol, enc: &mut ScopeEncoder<'_>) -> Value {
    let text = match s.kind() {
        SymbolKind::Named => format!("n:{s}"),
        SymbolKind::Post => format!("p:{}", s.unprimed()),
        SymbolKind::BoundAtH(k) => format!("b:{k}"),
        SymbolKind::BoundAtH1(k) => format!("B:{k}"),
        SymbolKind::Height => "h".to_string(),
        SymbolKind::Depth => "D".to_string(),
        SymbolKind::Fresh { scope, serial } => {
            format!("f:{}:{serial}", enc.canonical_scope(scope))
        }
        SymbolKind::Dimension(i) => format!("d:{i}"),
        SymbolKind::Scratch(i) => format!("a:{i}"),
    };
    Value::Str(text)
}

fn decode_symbol(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Symbol> {
    let text = v.as_str()?;
    match text {
        "h" => return Some(Symbol::height()),
        "D" => return Some(Symbol::depth()),
        _ => {}
    }
    let (tag, rest) = text.split_once(':')?;
    match tag {
        "n" => Some(Symbol::new(rest)),
        "p" => Some(Symbol::new(rest).primed()),
        "b" => {
            let k: u64 = rest.parse().ok()?;
            (k <= MAX_PAYLOAD).then(|| Symbol::bound_at_h(k as usize))
        }
        "B" => {
            let k: u64 = rest.parse().ok()?;
            (k <= MAX_PAYLOAD).then(|| Symbol::bound_at_h1(k as usize))
        }
        "f" => {
            let (canonical, serial) = rest.split_once(':')?;
            dec.rescope(canonical.parse().ok()?, serial.parse().ok()?)
        }
        "d" => {
            let i: u64 = rest.parse().ok()?;
            (i <= MAX_PAYLOAD).then(|| Symbol::dimension(i as u32))
        }
        "a" => {
            let i: u64 = rest.parse().ok()?;
            (i <= MAX_PAYLOAD).then(|| Symbol::scratch(i as u32))
        }
        _ => None,
    }
}

fn encode_rational(r: &BigRational) -> Value {
    Value::Str(r.to_string())
}

fn decode_rational(v: &Value) -> Option<BigRational> {
    v.as_str()?.parse().ok()
}

fn encode_monomial(m: &Monomial, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::Arr(
        m.powers()
            .map(|(s, e)| Value::Arr(vec![encode_symbol(s, enc), Value::Int(i64::from(e))]))
            .collect(),
    )
}

fn decode_monomial(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Monomial> {
    let mut powers = Vec::new();
    for item in v.as_arr()? {
        let [sym, exp] = item.as_arr()? else {
            return None;
        };
        let e = exp.as_int()?;
        if !(0..=i64::from(u32::MAX)).contains(&e) {
            return None;
        }
        powers.push((decode_symbol(sym, dec)?, e as u32));
    }
    Some(Monomial::from_powers(powers))
}

fn encode_polynomial(p: &Polynomial, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::Arr(
        p.terms()
            .map(|(m, c)| Value::Arr(vec![encode_rational(c), encode_monomial(m, enc)]))
            .collect(),
    )
}

fn decode_polynomial(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Polynomial> {
    let mut terms = Vec::new();
    for item in v.as_arr()? {
        let [coeff, mono] = item.as_arr()? else {
            return None;
        };
        terms.push((decode_rational(coeff)?, decode_monomial(mono, dec)?));
    }
    Some(Polynomial::from_terms(terms))
}

fn encode_exppoly(e: &ExpPoly, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::obj(vec![
        ("param", encode_symbol(e.param(), enc)),
        (
            "terms",
            Value::Arr(
                e.terms()
                    .map(|(base, poly)| {
                        Value::Arr(vec![encode_rational(base), encode_polynomial(poly, enc)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_exppoly(v: &Value, dec: &ScopeDecoder<'_>) -> Option<ExpPoly> {
    let param = decode_symbol(v.field("param")?, dec)?;
    let mut out = ExpPoly::zero(&param);
    for item in v.field("terms")?.as_arr()? {
        let [base, poly] = item.as_arr()? else {
            return None;
        };
        let base = decode_rational(base)?;
        let poly = decode_polynomial(poly, dec)?;
        // Guard the constructor invariants (they panic on violation).
        if base.is_zero() || poly.symbols().iter().any(|s| s != &param) {
            return None;
        }
        out = out.add(&ExpPoly::exp_poly_term(base, poly, &param));
    }
    Some(out)
}

fn encode_term(t: &Term, enc: &mut ScopeEncoder<'_>) -> Value {
    match t {
        Term::Const(c) => Value::Arr(vec![Value::Str("c".into()), encode_rational(c)]),
        Term::Var(s) => Value::Arr(vec![Value::Str("v".into()), encode_symbol(s, enc)]),
        Term::Add(ts) => encode_term_list("+", ts, enc),
        Term::Mul(ts) => encode_term_list("*", ts, enc),
        Term::Pow(b, e) => Value::Arr(vec![
            Value::Str("^".into()),
            encode_term(b, enc),
            encode_term(e, enc),
        ]),
        Term::Log2(x) => Value::Arr(vec![Value::Str("log2".into()), encode_term(x, enc)]),
        Term::Max(ts) => encode_term_list("max", ts, enc),
        Term::Min(ts) => encode_term_list("min", ts, enc),
    }
}

fn encode_term_list(tag: &str, ts: &[Term], enc: &mut ScopeEncoder<'_>) -> Value {
    let mut items = vec![Value::Str(tag.into())];
    items.extend(ts.iter().map(|t| encode_term(t, enc)));
    Value::Arr(items)
}

fn decode_term(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Term> {
    let items = v.as_arr()?;
    let (tag, rest) = items.split_first()?;
    let tag = tag.as_str()?;
    let list = |rest: &[Value]| -> Option<Vec<Term>> {
        rest.iter().map(|t| decode_term(t, dec)).collect()
    };
    match (tag, rest) {
        ("c", [c]) => Some(Term::Const(decode_rational(c)?)),
        ("v", [s]) => Some(Term::Var(decode_symbol(s, dec)?)),
        ("+", _) => Some(Term::Add(list(rest)?)),
        ("*", _) => Some(Term::Mul(list(rest)?)),
        ("^", [b, e]) => Some(Term::Pow(
            Box::new(decode_term(b, dec)?),
            Box::new(decode_term(e, dec)?),
        )),
        ("log2", [x]) => Some(Term::Log2(Box::new(decode_term(x, dec)?))),
        ("max", _) => Some(Term::Max(list(rest)?)),
        ("min", _) => Some(Term::Min(list(rest)?)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Logic codecs.
// ---------------------------------------------------------------------------

fn encode_atom(a: &Atom, enc: &mut ScopeEncoder<'_>) -> Value {
    let kind = match a.kind {
        AtomKind::Le => 0,
        AtomKind::Lt => 1,
        AtomKind::Eq => 2,
    };
    Value::Arr(vec![Value::Int(kind), encode_polynomial(&a.poly, enc)])
}

fn decode_atom(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Atom> {
    let [kind, poly] = v.as_arr()? else {
        return None;
    };
    let poly = decode_polynomial(poly, dec)?;
    Some(match kind.as_int()? {
        0 => Atom::le_zero(poly),
        1 => Atom::lt_zero(poly),
        2 => Atom::eq_zero(poly),
        _ => return None,
    })
}

fn encode_polyhedron(p: &Polyhedron, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::Arr(p.atoms().iter().map(|a| encode_atom(a, enc)).collect())
}

fn decode_polyhedron(v: &Value, dec: &ScopeDecoder<'_>) -> Option<Polyhedron> {
    let atoms: Option<Vec<Atom>> = v.as_arr()?.iter().map(|a| decode_atom(a, dec)).collect();
    Some(Polyhedron::from_parts(atoms?))
}

fn encode_formula(f: &TransitionFormula, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::obj(vec![
        ("cap", Value::Int(f.cap() as i64)),
        (
            "disjuncts",
            Value::Arr(
                f.disjuncts()
                    .iter()
                    .map(|d| encode_polyhedron(d, enc))
                    .collect(),
            ),
        ),
    ])
}

fn decode_formula(v: &Value, dec: &ScopeDecoder<'_>) -> Option<TransitionFormula> {
    let cap = v.field("cap")?.as_int()?;
    if !(1..=1_000_000).contains(&cap) {
        return None;
    }
    let disjuncts: Option<Vec<Polyhedron>> = v
        .field("disjuncts")?
        .as_arr()?
        .iter()
        .map(|d| decode_polyhedron(d, dec))
        .collect();
    Some(TransitionFormula::from_parts(disjuncts?, cap as usize))
}

// ---------------------------------------------------------------------------
// Summary codecs.
// ---------------------------------------------------------------------------

fn encode_depth(d: &DepthBound, enc: &mut ScopeEncoder<'_>) -> Value {
    let (tag, t) = match d {
        DepthBound::Linear(t) => ("lin", t),
        DepthBound::Logarithmic(t) => ("log", t),
    };
    Value::Arr(vec![Value::Str(tag.into()), encode_term(t, enc)])
}

fn decode_depth(v: &Value, dec: &ScopeDecoder<'_>) -> Option<DepthBound> {
    let [tag, t] = v.as_arr()? else {
        return None;
    };
    let t = decode_term(t, dec)?;
    match tag.as_str()? {
        "lin" => Some(DepthBound::Linear(t)),
        "log" => Some(DepthBound::Logarithmic(t)),
        _ => None,
    }
}

fn encode_bound_fact(f: &BoundFact, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::obj(vec![
        ("term", encode_polynomial(&f.term, enc)),
        ("closed_form", encode_exppoly(&f.closed_form, enc)),
        (
            "bound",
            match &f.bound {
                Some(b) => encode_term(b, enc),
                None => Value::Null,
            },
        ),
        ("exact", Value::Bool(f.exact)),
    ])
}

fn decode_bound_fact(v: &Value, dec: &ScopeDecoder<'_>) -> Option<BoundFact> {
    Some(BoundFact {
        term: decode_polynomial(v.field("term")?, dec)?,
        closed_form: decode_exppoly(v.field("closed_form")?, dec)?,
        bound: match v.field("bound")? {
            Value::Null => None,
            b => Some(decode_term(b, dec)?),
        },
        exact: v.field("exact")?.as_bool()?,
    })
}

fn encode_summary(s: &ProcedureSummary, enc: &mut ScopeEncoder<'_>) -> Value {
    Value::obj(vec![
        ("name", Value::Str(s.name.clone())),
        ("recursive", Value::Bool(s.recursive)),
        ("formula", encode_formula(&s.formula, enc)),
        (
            "bound_facts",
            Value::Arr(
                s.bound_facts
                    .iter()
                    .map(|f| encode_bound_fact(f, enc))
                    .collect(),
            ),
        ),
        (
            "depth",
            match &s.depth {
                Some(d) => encode_depth(d, enc),
                None => Value::Null,
            },
        ),
    ])
}

fn decode_summary(v: &Value, dec: &ScopeDecoder<'_>) -> Option<ProcedureSummary> {
    let bound_facts: Option<Vec<BoundFact>> = v
        .field("bound_facts")?
        .as_arr()?
        .iter()
        .map(|f| decode_bound_fact(f, dec))
        .collect();
    Some(ProcedureSummary {
        name: v.field("name")?.as_str()?.to_string(),
        formula: decode_formula(v.field("formula")?, dec)?,
        bound_facts: bound_facts?,
        depth: match v.field("depth")? {
            Value::Null => None,
            d => Some(decode_depth(d, dec)?),
        },
        recursive: v.field("recursive")?.as_bool()?,
    })
}

// ---------------------------------------------------------------------------
// Cache-entry envelope.
// ---------------------------------------------------------------------------

/// Encodes the summaries of one call-graph component under its transitive
/// key as a single-line JSON document.
///
/// Fresh-symbol scopes are replaced by canonical indices into the entry's
/// `"scopes"` table of owning component keys (looked up through `scopes`),
/// so the document is independent of the bottom-up component order — two
/// runs that place the component at different schedule positions write
/// identical bytes.  Returns `None` when a fresh scope has no component
/// key (the entry would not be restorable); callers simply skip caching.
pub fn encode_entry(
    key: &Fingerprint,
    summaries: &[ProcedureSummary],
    scopes: &dyn ScopeResolver,
) -> Option<String> {
    let mut enc = ScopeEncoder::new(scopes);
    let encoded: Vec<Value> = summaries
        .iter()
        .map(|s| encode_summary(s, &mut enc))
        .collect();
    if enc.failed {
        return None;
    }
    let doc = Value::obj(vec![
        ("format", Value::Str(CACHE_FORMAT.into())),
        ("version", Value::Int(CACHE_VERSION)),
        ("key", Value::Str(key.to_hex())),
        (
            "scopes",
            Value::Arr(enc.table.iter().map(|k| Value::Str(k.to_hex())).collect()),
        ),
        ("summaries", Value::Arr(encoded)),
    ]);
    Some(doc.to_json())
}

/// Decodes a cache entry, verifying the format tag, version, and key, and
/// rescoping every fresh symbol into the scope this run assigned to its
/// owning component (resolved through `scopes` via the entry's component-key
/// table).  Returns `None` (never panics) on any mismatch, corruption, or
/// impossible rescope — including scopes/serials beyond the packed symbol
/// ceilings; the stores treat that as a corruption eviction.
pub fn decode_entry(
    text: &str,
    expected_key: &Fingerprint,
    scopes: &dyn ScopeResolver,
) -> Option<Vec<ProcedureSummary>> {
    let doc = Parser::parse(text)?;
    if doc.field("format")?.as_str()? != CACHE_FORMAT {
        return None;
    }
    if doc.field("version")?.as_int()? != CACHE_VERSION {
        return None;
    }
    if Fingerprint::from_hex(doc.field("key")?.as_str()?)? != *expected_key {
        return None;
    }
    let table: Option<Vec<Fingerprint>> = doc
        .field("scopes")?
        .as_arr()?
        .iter()
        .map(|v| Fingerprint::from_hex(v.as_str()?))
        .collect();
    let dec = ScopeDecoder {
        resolver: scopes,
        table: table?,
    };
    doc.field("summaries")?
        .as_arr()?
        .iter()
        .map(|s| decode_summary(s, &dec))
        .collect()
}

/// Checks a cache entry's *envelope* — format tag, version, and embedded
/// key — and returns the key, without decoding (or rescoping) the
/// summaries themselves.  This is the plausibility gate a summary server
/// applies to `PUT /v1/summaries/{key}` bodies and to entries it serves:
/// full decoding needs the *consumer's* scope assignment, which only the
/// analyzing peer has.
pub fn entry_key(text: &str) -> Option<Fingerprint> {
    let doc = Parser::parse(text)?;
    if doc.field("format")?.as_str()? != CACHE_FORMAT {
        return None;
    }
    if doc.field("version")?.as_int()? != CACHE_VERSION {
        return None;
    }
    doc.field("summaries")?.as_arr()?;
    Fingerprint::from_hex(doc.field("key")?.as_str()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_expr::FreshSource;
    use chora_numeric::{rat, ratio};

    fn pvar(name: &str) -> Polynomial {
        Polynomial::var(Symbol::new(name))
    }

    /// A bijective test assignment: scope `s` is owned by the synthetic
    /// component key `BASE + s`, shifted by `offset` — so decoding with a
    /// different offset than encoding mimics a program whose components
    /// moved to new schedule positions.
    struct ShiftScopes(u32);

    const KEY_BASE: u128 = 0xfeed_0000;

    impl ScopeResolver for ShiftScopes {
        fn scope_of(&self, key: &Fingerprint) -> Option<u32> {
            let raw = key.0.checked_sub(KEY_BASE)?;
            u32::try_from(raw).ok()?.checked_add(self.0)
        }

        fn key_of(&self, scope: u32) -> Option<Fingerprint> {
            Some(Fingerprint(
                KEY_BASE + u128::from(scope.checked_sub(self.0)?),
            ))
        }
    }

    /// The identity assignment (offset zero).
    fn same_scopes() -> ShiftScopes {
        ShiftScopes(0)
    }

    fn sample_summary() -> ProcedureSummary {
        let h = Symbol::height();
        let fresh = FreshSource::new(6);
        let t0 = fresh.fresh();
        let formula = TransitionFormula::from_disjuncts(vec![
            Polyhedron::from_atoms(vec![
                Atom::le(pvar("cost'"), &pvar("cost") + &pvar("n")),
                Atom::eq(&pvar("x") * &pvar("x"), pvar("y")),
                Atom::ge(Polynomial::var(t0), Polynomial::constant(ratio(-7, 3))),
            ]),
            Polyhedron::from_atoms(vec![Atom::lt(pvar("n"), Polynomial::zero())]),
        ])
        .with_cap(9);
        let closed_form = ExpPoly::exponential(rat(2), &h).add(&ExpPoly::constant(rat(-1), &h));
        let bound = Term::add(vec![
            Term::pow(Term::int(2), Term::var(Symbol::new("n"))),
            Term::log2(Term::max(vec![Term::one(), Term::var(Symbol::new("n"))])),
            Term::Min(vec![Term::var(Symbol::new("n")), Term::int(5)]),
        ]);
        ProcedureSummary {
            name: "p".to_string(),
            formula,
            bound_facts: vec![BoundFact {
                term: &pvar("cost'") - &pvar("cost"),
                closed_form,
                bound: Some(bound),
                exact: true,
            }],
            depth: Some(DepthBound::Logarithmic(Term::var(Symbol::new("n")))),
            recursive: true,
        }
    }

    #[test]
    fn entry_round_trip_is_exact() {
        let key = Fingerprint(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let summary = sample_summary();
        let encoded =
            encode_entry(&key, std::slice::from_ref(&summary), &same_scopes()).expect("encodes");
        let decoded = decode_entry(&encoded, &key, &same_scopes()).expect("decodes");
        assert_eq!(decoded.len(), 1);
        let d = &decoded[0];
        assert_eq!(d.name, summary.name);
        assert_eq!(d.recursive, summary.recursive);
        assert_eq!(d.formula, summary.formula);
        assert_eq!(d.formula.cap(), 9);
        assert_eq!(d.depth, summary.depth);
        assert_eq!(d.bound_facts.len(), 1);
        assert_eq!(d.bound_facts[0].term, summary.bound_facts[0].term);
        assert_eq!(
            d.bound_facts[0].closed_form,
            summary.bound_facts[0].closed_form
        );
        assert_eq!(d.bound_facts[0].bound, summary.bound_facts[0].bound);
        assert_eq!(d.bound_facts[0].exact, summary.bound_facts[0].exact);
        // Encoding the decoded value reproduces the exact document.
        assert_eq!(
            encode_entry(&key, &decoded, &same_scopes()).expect("re-encodes"),
            encoded
        );
    }

    #[test]
    fn entries_rescope_fresh_symbols_into_the_current_schedule() {
        // The summary was produced by a run where its component sat at
        // scope 6; this run placed the same component (same key) at scope
        // 16.  The restored summary must mention scope-16 symbols.
        let key = Fingerprint(77);
        let summary = sample_summary();
        let encoded =
            encode_entry(&key, std::slice::from_ref(&summary), &same_scopes()).expect("encodes");
        let restored = decode_entry(&encoded, &key, &ShiftScopes(10)).expect("decodes");
        let shifted_symbol = Symbol::fresh_at(16, 0);
        let mentions_shifted = restored[0]
            .formula
            .symbols()
            .iter()
            .any(|s| s == &shifted_symbol);
        assert!(
            mentions_shifted,
            "fresh symbols must be rescoped 6 -> 16: {:?}",
            restored[0].formula.symbols()
        );
        // ... and the document itself is scope-independent: re-encoding the
        // shifted summaries under the shifted schedule reproduces the exact
        // bytes the original run wrote.
        assert_eq!(
            encode_entry(&key, &restored, &ShiftScopes(10)).expect("re-encodes"),
            encoded,
            "serialized form must not depend on the component order"
        );
    }

    #[test]
    fn unrescopable_entries_are_rejected_not_fatal() {
        let key = Fingerprint(78);
        let summary = sample_summary();
        let encoded =
            encode_entry(&key, std::slice::from_ref(&summary), &same_scopes()).expect("encodes");
        // This run has no component with the recorded key at all.
        assert!(
            decode_entry(&encoded, &key, &NullScopes).is_none(),
            "unknown component keys must reject the entry"
        );
        // The component exists but its scope would exceed the packed
        // 14-bit ceiling: reject, never panic (the old fresh_at asserted).
        struct HugeScopes;
        impl ScopeResolver for HugeScopes {
            fn scope_of(&self, _key: &Fingerprint) -> Option<u32> {
                Some(chora_expr::MAX_FRESH_SCOPE + 1)
            }
            fn key_of(&self, scope: u32) -> Option<Fingerprint> {
                Some(Fingerprint(KEY_BASE + u128::from(scope)))
            }
        }
        assert!(
            decode_entry(&encoded, &key, &HugeScopes).is_none(),
            "over-ceiling rescopes must reject the entry"
        );
        // A canonical index pointing past the scopes table is corruption.
        let truncated_table = encoded.replace("\"scopes\":[\"", "\"scopes\":[], \"unused\":[\"");
        assert!(decode_entry(&truncated_table, &key, &same_scopes()).is_none());
        // Encoding is equally careful: with no key for the scope, the
        // entry is not produced at all (the store just skips caching).
        assert!(encode_entry(&key, std::slice::from_ref(&summary), &NullScopes).is_none());
    }

    #[test]
    fn summaries_without_fresh_symbols_need_no_scope_table() {
        let key = Fingerprint(79);
        let summary = ProcedureSummary {
            name: "plain".to_string(),
            formula: TransitionFormula::from_polyhedron(Polyhedron::from_atoms(vec![Atom::le(
                pvar("cost'"),
                &pvar("cost") + &pvar("n"),
            )])),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        };
        let encoded = encode_entry(&key, std::slice::from_ref(&summary), &NullScopes)
            .expect("no fresh symbols, no scope lookups");
        assert!(encoded.contains("\"scopes\":[]"));
        let decoded = decode_entry(&encoded, &key, &NullScopes).expect("decodes");
        assert_eq!(decoded[0].formula, summary.formula);
    }

    #[test]
    fn subsumed_disjuncts_survive_the_round_trip() {
        // Live formulas can carry semantically subsumed disjuncts (conjoin,
        // project_onto, and simplify bypass push_disjunct's filter); the
        // restore path must reproduce them verbatim, not re-filter.
        let wide = Polyhedron::from_atoms(vec![
            Atom::ge(pvar("x"), Polynomial::zero()),
            Atom::le(pvar("x"), Polynomial::constant(rat(5))),
        ]);
        let narrow =
            Polyhedron::from_atoms(vec![Atom::eq(pvar("x"), Polynomial::constant(rat(2)))]);
        let formula = TransitionFormula::from_parts(vec![wide, narrow], 12);
        assert_eq!(formula.disjuncts().len(), 2);
        let summary = ProcedureSummary {
            name: "p".to_string(),
            formula: formula.clone(),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        };
        let key = Fingerprint(5);
        let encoded = encode_entry(&key, &[summary], &NullScopes).expect("encodes");
        let decoded = decode_entry(&encoded, &key, &NullScopes).expect("decodes");
        assert_eq!(decoded[0].formula, formula);
        assert_eq!(decoded[0].formula.disjuncts().len(), 2);
    }

    #[test]
    fn corrupted_entries_are_rejected_not_fatal() {
        let key = Fingerprint(42);
        let good = encode_entry(&key, &[sample_summary()], &same_scopes()).expect("encodes");
        let scopes = same_scopes();
        assert!(decode_entry(&good, &key, &scopes).is_some());
        // Wrong key.
        assert!(decode_entry(&good, &Fingerprint(43), &scopes).is_none());
        // Truncation, garbage, wrong version.
        assert!(decode_entry(&good[..good.len() / 2], &key, &scopes).is_none());
        assert!(decode_entry("not json at all", &key, &scopes).is_none());
        assert!(decode_entry("", &key, &scopes).is_none());
        let versioned = good.replace("\"version\":2", "\"version\":999");
        assert!(decode_entry(&versioned, &key, &scopes).is_none());
        // Entries from the previous (scope-dependent) format version are
        // ignored wholesale.
        let old_version = good.replace("\"version\":2", "\"version\":1");
        assert!(decode_entry(&old_version, &key, &scopes).is_none());
        let wrong_format = good.replace(CACHE_FORMAT, "other-format");
        assert!(decode_entry(&wrong_format, &key, &scopes).is_none());
        // Structurally valid JSON with a malformed symbol.
        let bad_sym = good.replace("n:cost", "zz:cost");
        assert!(decode_entry(&bad_sym, &key, &scopes).is_none());
        // A scopes table with a malformed key.
        let bad_table = good.replacen("\"scopes\":[\"", "\"scopes\":[\"zz", 1);
        assert!(decode_entry(&bad_table, &key, &scopes).is_none());
    }

    #[test]
    fn symbol_codec_covers_every_kind() {
        let fresh = FreshSource::new(11);
        let syms = vec![
            Symbol::new("x"),
            Symbol::post("x"),
            Symbol::new("ret").primed(),
            Symbol::bound_at_h(3),
            Symbol::bound_at_h1(4),
            Symbol::height(),
            Symbol::depth(),
            fresh.fresh(),
            fresh.fresh(),
            Symbol::dimension(7),
            Symbol::scratch(8),
        ];
        let scopes = same_scopes();
        let mut enc = ScopeEncoder::new(&scopes);
        let encoded: Vec<Value> = syms.iter().map(|s| encode_symbol(s, &mut enc)).collect();
        assert!(!enc.failed);
        let dec = ScopeDecoder {
            resolver: &scopes,
            table: enc.table.clone(),
        };
        for (s, v) in syms.iter().zip(&encoded) {
            let decoded = decode_symbol(v, &dec).expect("round-trips");
            assert_eq!(&decoded, s, "symbol {s} must round-trip");
        }
    }

    #[test]
    fn out_of_range_symbols_are_rejected() {
        let scopes = same_scopes();
        let dec = ScopeDecoder {
            resolver: &scopes,
            table: vec![Fingerprint(KEY_BASE)],
        };
        for text in [
            "f:99999:0",   // canonical index beyond the scopes table
            "f:0:99999",   // serial beyond 15 bits
            "b:536870912", // beyond 29-bit payload
            "d:536870912",
            "q:1",
            "f:1",
        ] {
            assert!(
                decode_symbol(&Value::Str(text.into()), &dec).is_none(),
                "{text} must be rejected"
            );
        }
        // In range: canonical index 0 resolves through the table.
        assert_eq!(
            decode_symbol(&Value::Str("f:0:3".into()), &dec),
            Some(Symbol::fresh_at(0, 3))
        );
    }
}
