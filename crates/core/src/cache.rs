//! Stable (de)serialization of procedure summaries for the persistent
//! summary cache.
//!
//! The encoding is a hand-rolled compact JSON document (the build
//! environment is offline — no serde), designed for *exact* round-trips:
//! decoding an encoded [`ProcedureSummary`] reproduces the original value
//! bit-for-bit, including the internal order of polyhedron atoms and
//! transition-formula disjuncts, so a cache hit leaves no observable trace
//! in the analysis output.
//!
//! Symbols are serialized **by name and kind**, never by interner index
//! (indices depend on process history); on load they are re-interned
//! through [`Symbol::new`] and friends.  Rationals are serialized as
//! `"num"` / `"num/den"` strings so no precision is lost.  Every decoder is
//! fallible: a corrupted or version-mismatched document yields `None` and
//! the caller discards the cache entry — corruption is never fatal.

use crate::analysis::{BoundFact, ProcedureSummary};
use crate::depth::DepthBound;
use chora_expr::{ExpPoly, Monomial, Polynomial, Symbol, SymbolKind, Term};
use chora_ir::Fingerprint;
use chora_logic::{Atom, AtomKind, Polyhedron, TransitionFormula};
use chora_numeric::BigRational;
use std::fmt::Write as _;

/// Format tag and version of the cache entry layout.  Bump the version on
/// any change to the encoding; readers ignore entries from other versions.
pub const CACHE_FORMAT: &str = "chora-summary-cache";
/// Current version of the on-disk encoding.
pub const CACHE_VERSION: i64 = 1;

// ---------------------------------------------------------------------------
// A minimal JSON value, writer, and parser.
// ---------------------------------------------------------------------------

/// A JSON value (only the subset the cache encoding uses).
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Value::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// A tiny recursive-descent JSON parser.  Returns `None` on any malformed
/// input (including trailing garbage).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Option<Value> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'n' => self.eat_literal("null").then_some(Value::Null),
            b't' => self.eat_literal("true").then_some(Value::Bool(true)),
            b'f' => self.eat_literal("false").then_some(Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Some(Value::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Some(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Some(Value::Obj(fields));
                        }
                        _ => return None,
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Re-decode UTF-8 starting here (multi-byte sequences).
                    if b < 0x80 {
                        out.push(b as char);
                        self.pos += 1;
                    } else {
                        let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                        let c = rest.chars().next()?;
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Int)
    }
}

// ---------------------------------------------------------------------------
// Symbol / rational / polynomial codecs.
// ---------------------------------------------------------------------------

/// Bit-field ceilings re-exported from `chora_expr` so the decode guards
/// track the real `Symbol` layout (a widened layout widens these with it).
const MAX_PAYLOAD: u64 = chora_expr::MAX_SYMBOL_PAYLOAD as u64;
const MAX_FRESH_SCOPE: u64 = chora_expr::MAX_FRESH_SCOPE as u64;
const MAX_FRESH_SERIAL: u64 = chora_expr::MAX_FRESH_SERIAL as u64;

fn encode_symbol(s: &Symbol) -> Value {
    let text = match s.kind() {
        SymbolKind::Named => format!("n:{s}"),
        SymbolKind::Post => format!("p:{}", s.unprimed()),
        SymbolKind::BoundAtH(k) => format!("b:{k}"),
        SymbolKind::BoundAtH1(k) => format!("B:{k}"),
        SymbolKind::Height => "h".to_string(),
        SymbolKind::Depth => "D".to_string(),
        SymbolKind::Fresh { scope, serial } => format!("f:{scope}:{serial}"),
        SymbolKind::Dimension(i) => format!("d:{i}"),
        SymbolKind::Scratch(i) => format!("a:{i}"),
    };
    Value::Str(text)
}

fn decode_symbol(v: &Value) -> Option<Symbol> {
    let text = v.as_str()?;
    match text {
        "h" => return Some(Symbol::height()),
        "D" => return Some(Symbol::depth()),
        _ => {}
    }
    let (tag, rest) = text.split_once(':')?;
    match tag {
        "n" => Some(Symbol::new(rest)),
        "p" => Some(Symbol::new(rest).primed()),
        "b" => {
            let k: u64 = rest.parse().ok()?;
            (k <= MAX_PAYLOAD).then(|| Symbol::bound_at_h(k as usize))
        }
        "B" => {
            let k: u64 = rest.parse().ok()?;
            (k <= MAX_PAYLOAD).then(|| Symbol::bound_at_h1(k as usize))
        }
        "f" => {
            let (scope, serial) = rest.split_once(':')?;
            let scope: u64 = scope.parse().ok()?;
            let serial: u64 = serial.parse().ok()?;
            (scope <= MAX_FRESH_SCOPE && serial <= MAX_FRESH_SERIAL)
                .then(|| Symbol::fresh_at(scope as u32, serial as u32))
        }
        "d" => {
            let i: u64 = rest.parse().ok()?;
            (i <= MAX_PAYLOAD).then(|| Symbol::dimension(i as u32))
        }
        "a" => {
            let i: u64 = rest.parse().ok()?;
            (i <= MAX_PAYLOAD).then(|| Symbol::scratch(i as u32))
        }
        _ => None,
    }
}

fn encode_rational(r: &BigRational) -> Value {
    Value::Str(r.to_string())
}

fn decode_rational(v: &Value) -> Option<BigRational> {
    v.as_str()?.parse().ok()
}

fn encode_monomial(m: &Monomial) -> Value {
    Value::Arr(
        m.powers()
            .map(|(s, e)| Value::Arr(vec![encode_symbol(s), Value::Int(i64::from(e))]))
            .collect(),
    )
}

fn decode_monomial(v: &Value) -> Option<Monomial> {
    let mut powers = Vec::new();
    for item in v.as_arr()? {
        let [sym, exp] = item.as_arr()? else {
            return None;
        };
        let e = exp.as_int()?;
        if !(0..=i64::from(u32::MAX)).contains(&e) {
            return None;
        }
        powers.push((decode_symbol(sym)?, e as u32));
    }
    Some(Monomial::from_powers(powers))
}

fn encode_polynomial(p: &Polynomial) -> Value {
    Value::Arr(
        p.terms()
            .map(|(m, c)| Value::Arr(vec![encode_rational(c), encode_monomial(m)]))
            .collect(),
    )
}

fn decode_polynomial(v: &Value) -> Option<Polynomial> {
    let mut terms = Vec::new();
    for item in v.as_arr()? {
        let [coeff, mono] = item.as_arr()? else {
            return None;
        };
        terms.push((decode_rational(coeff)?, decode_monomial(mono)?));
    }
    Some(Polynomial::from_terms(terms))
}

fn encode_exppoly(e: &ExpPoly) -> Value {
    Value::obj(vec![
        ("param", encode_symbol(e.param())),
        (
            "terms",
            Value::Arr(
                e.terms()
                    .map(|(base, poly)| {
                        Value::Arr(vec![encode_rational(base), encode_polynomial(poly)])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_exppoly(v: &Value) -> Option<ExpPoly> {
    let param = decode_symbol(v.field("param")?)?;
    let mut out = ExpPoly::zero(&param);
    for item in v.field("terms")?.as_arr()? {
        let [base, poly] = item.as_arr()? else {
            return None;
        };
        let base = decode_rational(base)?;
        let poly = decode_polynomial(poly)?;
        // Guard the constructor invariants (they panic on violation).
        if base.is_zero() || poly.symbols().iter().any(|s| s != &param) {
            return None;
        }
        out = out.add(&ExpPoly::exp_poly_term(base, poly, &param));
    }
    Some(out)
}

fn encode_term(t: &Term) -> Value {
    match t {
        Term::Const(c) => Value::Arr(vec![Value::Str("c".into()), encode_rational(c)]),
        Term::Var(s) => Value::Arr(vec![Value::Str("v".into()), encode_symbol(s)]),
        Term::Add(ts) => encode_term_list("+", ts),
        Term::Mul(ts) => encode_term_list("*", ts),
        Term::Pow(b, e) => Value::Arr(vec![Value::Str("^".into()), encode_term(b), encode_term(e)]),
        Term::Log2(x) => Value::Arr(vec![Value::Str("log2".into()), encode_term(x)]),
        Term::Max(ts) => encode_term_list("max", ts),
        Term::Min(ts) => encode_term_list("min", ts),
    }
}

fn encode_term_list(tag: &str, ts: &[Term]) -> Value {
    let mut items = vec![Value::Str(tag.into())];
    items.extend(ts.iter().map(encode_term));
    Value::Arr(items)
}

fn decode_term(v: &Value) -> Option<Term> {
    let items = v.as_arr()?;
    let (tag, rest) = items.split_first()?;
    let tag = tag.as_str()?;
    let list = |rest: &[Value]| -> Option<Vec<Term>> { rest.iter().map(decode_term).collect() };
    match (tag, rest) {
        ("c", [c]) => Some(Term::Const(decode_rational(c)?)),
        ("v", [s]) => Some(Term::Var(decode_symbol(s)?)),
        ("+", _) => Some(Term::Add(list(rest)?)),
        ("*", _) => Some(Term::Mul(list(rest)?)),
        ("^", [b, e]) => Some(Term::Pow(
            Box::new(decode_term(b)?),
            Box::new(decode_term(e)?),
        )),
        ("log2", [x]) => Some(Term::Log2(Box::new(decode_term(x)?))),
        ("max", _) => Some(Term::Max(list(rest)?)),
        ("min", _) => Some(Term::Min(list(rest)?)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Logic codecs.
// ---------------------------------------------------------------------------

fn encode_atom(a: &Atom) -> Value {
    let kind = match a.kind {
        AtomKind::Le => 0,
        AtomKind::Lt => 1,
        AtomKind::Eq => 2,
    };
    Value::Arr(vec![Value::Int(kind), encode_polynomial(&a.poly)])
}

fn decode_atom(v: &Value) -> Option<Atom> {
    let [kind, poly] = v.as_arr()? else {
        return None;
    };
    let poly = decode_polynomial(poly)?;
    Some(match kind.as_int()? {
        0 => Atom::le_zero(poly),
        1 => Atom::lt_zero(poly),
        2 => Atom::eq_zero(poly),
        _ => return None,
    })
}

fn encode_polyhedron(p: &Polyhedron) -> Value {
    Value::Arr(p.atoms().iter().map(encode_atom).collect())
}

fn decode_polyhedron(v: &Value) -> Option<Polyhedron> {
    let atoms: Option<Vec<Atom>> = v.as_arr()?.iter().map(decode_atom).collect();
    Some(Polyhedron::from_parts(atoms?))
}

fn encode_formula(f: &TransitionFormula) -> Value {
    Value::obj(vec![
        ("cap", Value::Int(f.cap() as i64)),
        (
            "disjuncts",
            Value::Arr(f.disjuncts().iter().map(encode_polyhedron).collect()),
        ),
    ])
}

fn decode_formula(v: &Value) -> Option<TransitionFormula> {
    let cap = v.field("cap")?.as_int()?;
    if !(1..=1_000_000).contains(&cap) {
        return None;
    }
    let disjuncts: Option<Vec<Polyhedron>> = v
        .field("disjuncts")?
        .as_arr()?
        .iter()
        .map(decode_polyhedron)
        .collect();
    Some(TransitionFormula::from_parts(disjuncts?, cap as usize))
}

// ---------------------------------------------------------------------------
// Summary codecs.
// ---------------------------------------------------------------------------

fn encode_depth(d: &DepthBound) -> Value {
    let (tag, t) = match d {
        DepthBound::Linear(t) => ("lin", t),
        DepthBound::Logarithmic(t) => ("log", t),
    };
    Value::Arr(vec![Value::Str(tag.into()), encode_term(t)])
}

fn decode_depth(v: &Value) -> Option<DepthBound> {
    let [tag, t] = v.as_arr()? else {
        return None;
    };
    let t = decode_term(t)?;
    match tag.as_str()? {
        "lin" => Some(DepthBound::Linear(t)),
        "log" => Some(DepthBound::Logarithmic(t)),
        _ => None,
    }
}

fn encode_bound_fact(f: &BoundFact) -> Value {
    Value::obj(vec![
        ("term", encode_polynomial(&f.term)),
        ("closed_form", encode_exppoly(&f.closed_form)),
        (
            "bound",
            match &f.bound {
                Some(b) => encode_term(b),
                None => Value::Null,
            },
        ),
        ("exact", Value::Bool(f.exact)),
    ])
}

fn decode_bound_fact(v: &Value) -> Option<BoundFact> {
    Some(BoundFact {
        term: decode_polynomial(v.field("term")?)?,
        closed_form: decode_exppoly(v.field("closed_form")?)?,
        bound: match v.field("bound")? {
            Value::Null => None,
            b => Some(decode_term(b)?),
        },
        exact: v.field("exact")?.as_bool()?,
    })
}

fn encode_summary(s: &ProcedureSummary) -> Value {
    Value::obj(vec![
        ("name", Value::Str(s.name.clone())),
        ("recursive", Value::Bool(s.recursive)),
        ("formula", encode_formula(&s.formula)),
        (
            "bound_facts",
            Value::Arr(s.bound_facts.iter().map(encode_bound_fact).collect()),
        ),
        (
            "depth",
            match &s.depth {
                Some(d) => encode_depth(d),
                None => Value::Null,
            },
        ),
    ])
}

fn decode_summary(v: &Value) -> Option<ProcedureSummary> {
    let bound_facts: Option<Vec<BoundFact>> = v
        .field("bound_facts")?
        .as_arr()?
        .iter()
        .map(decode_bound_fact)
        .collect();
    Some(ProcedureSummary {
        name: v.field("name")?.as_str()?.to_string(),
        formula: decode_formula(v.field("formula")?)?,
        bound_facts: bound_facts?,
        depth: match v.field("depth")? {
            Value::Null => None,
            d => Some(decode_depth(d)?),
        },
        recursive: v.field("recursive")?.as_bool()?,
    })
}

// ---------------------------------------------------------------------------
// Cache-entry envelope.
// ---------------------------------------------------------------------------

/// Encodes the summaries of one call-graph component under its transitive
/// key as a single-line JSON document.
pub fn encode_entry(key: &Fingerprint, summaries: &[ProcedureSummary]) -> String {
    let doc = Value::obj(vec![
        ("format", Value::Str(CACHE_FORMAT.into())),
        ("version", Value::Int(CACHE_VERSION)),
        ("key", Value::Str(key.to_hex())),
        (
            "summaries",
            Value::Arr(summaries.iter().map(encode_summary).collect()),
        ),
    ]);
    doc.to_json()
}

/// Decodes a cache entry, verifying the format tag, version, and key.
/// Returns `None` (never panics) on any mismatch or corruption.
pub fn decode_entry(text: &str, expected_key: &Fingerprint) -> Option<Vec<ProcedureSummary>> {
    let doc = Parser::parse(text)?;
    if doc.field("format")?.as_str()? != CACHE_FORMAT {
        return None;
    }
    if doc.field("version")?.as_int()? != CACHE_VERSION {
        return None;
    }
    if Fingerprint::from_hex(doc.field("key")?.as_str()?)? != *expected_key {
        return None;
    }
    doc.field("summaries")?
        .as_arr()?
        .iter()
        .map(decode_summary)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_expr::FreshSource;
    use chora_numeric::{rat, ratio};

    fn pvar(name: &str) -> Polynomial {
        Polynomial::var(Symbol::new(name))
    }

    fn sample_summary() -> ProcedureSummary {
        let h = Symbol::height();
        let fresh = FreshSource::new(6);
        let t0 = fresh.fresh();
        let formula = TransitionFormula::from_disjuncts(vec![
            Polyhedron::from_atoms(vec![
                Atom::le(pvar("cost'"), &pvar("cost") + &pvar("n")),
                Atom::eq(&pvar("x") * &pvar("x"), pvar("y")),
                Atom::ge(Polynomial::var(t0), Polynomial::constant(ratio(-7, 3))),
            ]),
            Polyhedron::from_atoms(vec![Atom::lt(pvar("n"), Polynomial::zero())]),
        ])
        .with_cap(9);
        let closed_form = ExpPoly::exponential(rat(2), &h).add(&ExpPoly::constant(rat(-1), &h));
        let bound = Term::add(vec![
            Term::pow(Term::int(2), Term::var(Symbol::new("n"))),
            Term::log2(Term::max(vec![Term::one(), Term::var(Symbol::new("n"))])),
            Term::Min(vec![Term::var(Symbol::new("n")), Term::int(5)]),
        ]);
        ProcedureSummary {
            name: "p".to_string(),
            formula,
            bound_facts: vec![BoundFact {
                term: &pvar("cost'") - &pvar("cost"),
                closed_form,
                bound: Some(bound),
                exact: true,
            }],
            depth: Some(DepthBound::Logarithmic(Term::var(Symbol::new("n")))),
            recursive: true,
        }
    }

    #[test]
    fn entry_round_trip_is_exact() {
        let key = Fingerprint(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let summary = sample_summary();
        let encoded = encode_entry(&key, std::slice::from_ref(&summary));
        let decoded = decode_entry(&encoded, &key).expect("decodes");
        assert_eq!(decoded.len(), 1);
        let d = &decoded[0];
        assert_eq!(d.name, summary.name);
        assert_eq!(d.recursive, summary.recursive);
        assert_eq!(d.formula, summary.formula);
        assert_eq!(d.formula.cap(), 9);
        assert_eq!(d.depth, summary.depth);
        assert_eq!(d.bound_facts.len(), 1);
        assert_eq!(d.bound_facts[0].term, summary.bound_facts[0].term);
        assert_eq!(
            d.bound_facts[0].closed_form,
            summary.bound_facts[0].closed_form
        );
        assert_eq!(d.bound_facts[0].bound, summary.bound_facts[0].bound);
        assert_eq!(d.bound_facts[0].exact, summary.bound_facts[0].exact);
        // Encoding the decoded value reproduces the exact document.
        assert_eq!(encode_entry(&key, &decoded), encoded);
    }

    #[test]
    fn subsumed_disjuncts_survive_the_round_trip() {
        // Live formulas can carry semantically subsumed disjuncts (conjoin,
        // project_onto, and simplify bypass push_disjunct's filter); the
        // restore path must reproduce them verbatim, not re-filter.
        let wide = Polyhedron::from_atoms(vec![
            Atom::ge(pvar("x"), Polynomial::zero()),
            Atom::le(pvar("x"), Polynomial::constant(rat(5))),
        ]);
        let narrow =
            Polyhedron::from_atoms(vec![Atom::eq(pvar("x"), Polynomial::constant(rat(2)))]);
        let formula = TransitionFormula::from_parts(vec![wide, narrow], 12);
        assert_eq!(formula.disjuncts().len(), 2);
        let summary = ProcedureSummary {
            name: "p".to_string(),
            formula: formula.clone(),
            bound_facts: Vec::new(),
            depth: None,
            recursive: false,
        };
        let key = Fingerprint(5);
        let decoded = decode_entry(&encode_entry(&key, &[summary]), &key).expect("decodes");
        assert_eq!(decoded[0].formula, formula);
        assert_eq!(decoded[0].formula.disjuncts().len(), 2);
    }

    #[test]
    fn corrupted_entries_are_rejected_not_fatal() {
        let key = Fingerprint(42);
        let good = encode_entry(&key, &[sample_summary()]);
        assert!(decode_entry(&good, &key).is_some());
        // Wrong key.
        assert!(decode_entry(&good, &Fingerprint(43)).is_none());
        // Truncation, garbage, wrong version.
        assert!(decode_entry(&good[..good.len() / 2], &key).is_none());
        assert!(decode_entry("not json at all", &key).is_none());
        assert!(decode_entry("", &key).is_none());
        let versioned = good.replace("\"version\":1", "\"version\":999");
        assert!(decode_entry(&versioned, &key).is_none());
        let wrong_format = good.replace(CACHE_FORMAT, "other-format");
        assert!(decode_entry(&wrong_format, &key).is_none());
        // Structurally valid JSON with a malformed symbol.
        let bad_sym = good.replace("n:cost", "zz:cost");
        assert!(decode_entry(&bad_sym, &key).is_none());
    }

    #[test]
    fn symbol_codec_covers_every_kind() {
        let fresh = FreshSource::new(11);
        let syms = vec![
            Symbol::new("x"),
            Symbol::post("x"),
            Symbol::new("ret").primed(),
            Symbol::bound_at_h(3),
            Symbol::bound_at_h1(4),
            Symbol::height(),
            Symbol::depth(),
            fresh.fresh(),
            fresh.fresh(),
            Symbol::dimension(7),
            Symbol::scratch(8),
        ];
        for s in syms {
            let decoded = decode_symbol(&encode_symbol(&s)).expect("round-trips");
            assert_eq!(decoded, s, "symbol {s} must round-trip");
        }
    }

    #[test]
    fn out_of_range_symbols_are_rejected() {
        for text in [
            "f:99999:0",   // scope beyond 14 bits
            "f:0:99999",   // serial beyond 15 bits
            "b:536870912", // beyond 29-bit payload
            "d:536870912",
            "q:1",
            "f:1",
        ] {
            assert!(
                decode_symbol(&Value::Str(text.into())).is_none(),
                "{text} must be rejected"
            );
        }
    }
}
