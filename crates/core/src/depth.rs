//! Depth-bound analysis (§4.2, Alg. 4): bounding the maximum recursion depth
//! `H` as a function of the pre-state of the initial call.
//!
//! Alg. 4 builds a depth-bounding model in which descending into a recursive
//! call increments an auxiliary counter `D` and non-descending calls are
//! skipped, and then applies intra-procedural analysis.  Over the structured
//! IR this reproduction computes the same information directly from the
//! *descent relation* — the relation between a procedure's entry state and
//! the arguments of any recursive call it may perform — and recognizes the
//! two descent patterns that drive every benchmark in the paper's
//! evaluation: decrement-by-a-constant (linear depth) and
//! division-by-a-constant (logarithmic depth).

use crate::lower::{lower_cond, lower_cond_negated, lower_expr};
use crate::summarize::Summarizer;
use chora_expr::{FreshSource, Polynomial, Symbol, Term};
use chora_ir::{Procedure, Stmt};
use chora_logic::{Atom, Polyhedron, TransitionFormula};
use chora_numeric::BigRational;
use std::collections::{BTreeMap, BTreeSet};

/// An upper bound on the recursion depth `H` of a procedure, as a function of
/// its parameters and the globals (§4.2's `ζ_P`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DepthBound {
    /// `H ≤ max(1, term)` — typical of decrement-style recursion.
    Linear(Term),
    /// `H ≤ log2(max(1, term)) + 2` — typical of divide-and-conquer.
    Logarithmic(Term),
}

impl DepthBound {
    /// The depth bound as a [`Term`] over the procedure's parameters.
    pub fn to_term(&self) -> Term {
        match self {
            DepthBound::Linear(t) => Term::max(vec![Term::one(), t.clone()]),
            DepthBound::Logarithmic(t) => Term::add(vec![
                Term::log2(Term::max(vec![Term::one(), t.clone()])),
                Term::int(2),
            ]),
        }
    }

    /// The bound with `max(1, ·)` dropped — a polynomial usable for direct
    /// substitution when the argument is known to be at least one.
    pub fn raw_term(&self) -> Term {
        match self {
            DepthBound::Linear(t) => t.clone(),
            DepthBound::Logarithmic(t) => Term::add(vec![
                Term::log2(Term::max(vec![Term::one(), t.clone()])),
                Term::int(2),
            ]),
        }
    }

    /// Whether this is a logarithmic bound.
    pub fn is_logarithmic(&self) -> bool {
        matches!(self, DepthBound::Logarithmic(_))
    }
}

/// Computes a depth bound for `proc`, a member of the recursive strongly
/// connected component `members`.
///
/// Returns `None` when no decreasing descent pattern can be established
/// (e.g. Ackermann-style recursion).
pub fn depth_bound(
    summarizer: &Summarizer<'_>,
    proc: &Procedure,
    members: &[String],
    fresh: &FreshSource,
) -> Option<DepthBound> {
    let descent = descent_relation(summarizer, proc, members, fresh);
    if descent.is_bottom() {
        // No recursive call is reachable: depth 1.
        return Some(DepthBound::Linear(Term::one()));
    }
    let params: Vec<Symbol> = proc.params.clone();
    let mut keep: BTreeSet<Symbol> = BTreeSet::new();
    for p in &params {
        keep.insert(*p);
        keep.insert(p.primed());
    }
    let hull = descent.abstract_hull(&keep);
    // Ranking candidates: parameters and pairwise differences.
    let mut candidates: Vec<Polynomial> = Vec::new();
    for p in &params {
        candidates.push(Polynomial::var(*p));
        for q in &params {
            if p != q {
                candidates.push(&Polynomial::var(*p) - &Polynomial::var(*q));
            }
        }
    }
    let prime = |poly: &Polynomial| {
        poly.rename(&mut |s| {
            if params.contains(s) {
                s.primed()
            } else {
                *s
            }
        })
    };
    // Division-by-constant descent first (tighter bound).
    for r in &candidates {
        let r_post = prime(r);
        let halves = hull.implies_atom(&Atom::le(r_post.scale(&BigRational::from(2)), r.clone()));
        let stays_large = hull.implies_atom(&Atom::ge(r.clone(), Polynomial::one()));
        if halves && stays_large {
            return Some(DepthBound::Logarithmic(polynomial_to_term(r)));
        }
    }
    // Decrement-by-constant descent.
    for r in &candidates {
        let r_post = prime(r);
        let decreases = hull.implies_atom(&Atom::le(r_post, r - &Polynomial::one()));
        if !decreases {
            continue;
        }
        for lo in [1i64, 0] {
            let lo_poly = Polynomial::constant(BigRational::from(lo));
            if hull.implies_atom(&Atom::ge(r.clone(), lo_poly)) {
                // H ≤ r(σ) − lo + 2
                let bound = Term::add(vec![polynomial_to_term(r), Term::int(2 - lo)]);
                return Some(DepthBound::Linear(bound));
            }
        }
    }
    None
}

/// The descent relation of a procedure: the union, over every reachable call
/// to a member of the SCC, of the relation between the procedure's entry
/// state (pre) and the callee's parameters at that call (post, under the
/// callee's parameter names).  Recursive calls occurring *before* the chosen
/// one are skipped (globals and their results havocked), mirroring the
/// "skip" edges of Alg. 4.
pub fn descent_relation(
    summarizer: &Summarizer<'_>,
    proc: &Procedure,
    members: &[String],
    fresh: &FreshSource,
) -> TransitionFormula {
    let vars = summarizer.proc_vars(proc);
    // Override SCC calls with a skip summary (havoc globals and return).
    let skip = TransitionFormula::top();
    let skip_override: BTreeMap<String, TransitionFormula> =
        members.iter().map(|m| (m.clone(), skip.clone())).collect();
    let mut reached = TransitionFormula::bottom();
    let prefix = TransitionFormula::identity(&vars);
    collect_descents(
        summarizer,
        &proc.body,
        &vars,
        members,
        &skip_override,
        prefix,
        &mut reached,
        fresh,
    );
    // Project onto the procedure parameters (pre) and the callee parameter
    // names (post).  For self/mutual recursion in the benchmark suite the
    // callee parameter names coincide positionally with the caller's.
    let mut keep: BTreeSet<Symbol> = BTreeSet::new();
    for p in &proc.params {
        keep.insert(*p);
        keep.insert(p.primed());
    }
    for g in &summarizer.program().globals {
        keep.insert(*g);
        keep.insert(g.primed());
    }
    reached.project_onto(&keep).simplify()
}

/// Walks the body, accumulating `prefix ; (arguments bound to callee formals)`
/// for every call to an SCC member, and returns the prefix after the
/// statement (with SCC calls skipped).
#[allow(clippy::too_many_arguments)]
fn collect_descents(
    summarizer: &Summarizer<'_>,
    stmt: &Stmt,
    vars: &[Symbol],
    members: &[String],
    skip_override: &BTreeMap<String, TransitionFormula>,
    prefix: TransitionFormula,
    reached: &mut TransitionFormula,
    fresh: &FreshSource,
) -> TransitionFormula {
    match stmt {
        Stmt::Call { callee, args, .. } if members.contains(callee) => {
            // Bind the callee's formals (as post-state) to the actuals.
            if let Some(callee_proc) = summarizer.program().procedure(callee) {
                let mut atoms = Vec::new();
                let mut to_drop: BTreeSet<Symbol> = BTreeSet::new();
                for (i, formal) in callee_proc.params.iter().enumerate() {
                    if let Some(arg) = args.get(i) {
                        let lowered = lower_expr(arg, fresh);
                        atoms.push(Atom::eq(Polynomial::var(formal.primed()), lowered.value));
                        atoms.extend(lowered.constraints);
                        to_drop.extend(lowered.fresh);
                    }
                }
                let binding = TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms))
                    .eliminate(&to_drop);
                // `binding` constrains post-state formals in terms of the
                // *pre-state at the call site*; compose the prefix with an
                // identity-extended binding over the caller's vars.
                let descent = prefix.sequence(&binding, vars);
                *reached = reached.union(&descent);
            }
            // Continue past the call with skip semantics.
            let skipped = summarizer.summarize_stmt(stmt, vars, skip_override, fresh);
            prefix.sequence(&skipped.fall_through, vars)
        }
        Stmt::Seq(stmts) => {
            let mut current = prefix;
            for s in stmts {
                current = collect_descents(
                    summarizer,
                    s,
                    vars,
                    members,
                    skip_override,
                    current,
                    reached,
                    fresh,
                );
            }
            current
        }
        Stmt::If(c, then_branch, else_branch) => {
            let guard_t = assume_all(summarizer, c, vars, false, fresh);
            let guard_f = assume_all(summarizer, c, vars, true, fresh);
            let after_then = collect_descents(
                summarizer,
                then_branch,
                vars,
                members,
                skip_override,
                prefix.sequence(&guard_t, vars),
                reached,
                fresh,
            );
            let after_else = collect_descents(
                summarizer,
                else_branch,
                vars,
                members,
                skip_override,
                prefix.sequence(&guard_f, vars),
                reached,
                fresh,
            );
            after_then.union(&after_else)
        }
        Stmt::While(c, body) => {
            let guard_t = assume_all(summarizer, c, vars, false, fresh);
            let guard_f = assume_all(summarizer, c, vars, true, fresh);
            let body_skip = summarizer.summarize_stmt(body, vars, skip_override, fresh);
            let one_iter = guard_t.sequence(&body_skip.fall_through, vars);
            let iterations = summarizer.loop_summary(&one_iter, vars, fresh);
            // Calls inside the body are reachable after any number of
            // iterations plus the guard.
            let in_loop_prefix = prefix.sequence(&iterations, vars).sequence(&guard_t, vars);
            let _ = collect_descents(
                summarizer,
                body,
                vars,
                members,
                skip_override,
                in_loop_prefix,
                reached,
                fresh,
            );
            prefix.sequence(&iterations, vars).sequence(&guard_f, vars)
        }
        Stmt::Return(_) => {
            let _ = summarizer;
            TransitionFormula::bottom()
        }
        other => {
            let summary = summarizer.summarize_stmt(other, vars, skip_override, fresh);
            prefix.sequence(&summary.fall_through, vars)
        }
    }
}

fn assume_all(
    summarizer: &Summarizer<'_>,
    c: &chora_ir::Cond,
    vars: &[Symbol],
    negated: bool,
    fresh: &FreshSource,
) -> TransitionFormula {
    let disjuncts = if negated {
        lower_cond_negated(c, fresh)
    } else {
        lower_cond(c, fresh)
    };
    let mut out = TransitionFormula::bottom();
    for conj in disjuncts {
        out = out.union(&TransitionFormula::assume(conj, vars));
    }
    let _ = summarizer;
    out
}

/// Converts a polynomial over program variables to a [`Term`].
pub fn polynomial_to_term(p: &Polynomial) -> Term {
    let mut summands = Vec::new();
    for (m, c) in p.terms() {
        let mut factors = vec![Term::constant(c.clone())];
        for (s, e) in m.powers() {
            for _ in 0..e {
                factors.push(Term::var(*s));
            }
        }
        summands.push(Term::mul(factors));
    }
    Term::add(summands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_ir::{Cond, Expr, Procedure, Program, Stmt};

    fn summarizer_for(prog: &Program) -> Summarizer<'_> {
        Summarizer::new(prog)
    }

    #[test]
    fn decrement_recursion_gets_linear_bound() {
        // subsetSumAux-style: recurse on i+1 while i < n.
        let mut prog = Program::new();
        prog.add_global("nTicks");
        prog.add_procedure(Procedure::new(
            "aux",
            &["i", "n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("nTicks", Expr::var("nTicks").add(Expr::int(1))),
                Stmt::if_then(
                    Cond::lt(Expr::var("i"), Expr::var("n")),
                    Stmt::seq(vec![
                        Stmt::call(
                            "aux",
                            vec![Expr::var("i").add(Expr::int(1)), Expr::var("n")],
                        ),
                        Stmt::call(
                            "aux",
                            vec![Expr::var("i").add(Expr::int(1)), Expr::var("n")],
                        ),
                    ]),
                ),
            ]),
        ));
        let s = summarizer_for(&prog);
        let proc = prog.procedure("aux").unwrap();
        let bound =
            depth_bound(&s, proc, &["aux".to_string()], &FreshSource::new(0)).expect("depth bound");
        match &bound {
            DepthBound::Linear(t) => {
                // H ≤ (n - i) + 1
                let rendered = t.to_string();
                assert!(
                    rendered.contains('n') && rendered.contains('i'),
                    "bound {rendered}"
                );
            }
            other => panic!("expected linear bound, got {other:?}"),
        }
        assert!(!bound.is_logarithmic());
    }

    #[test]
    fn halving_recursion_gets_logarithmic_bound() {
        // mergesort-style: recurse on n/2 while n > 1.
        let mut prog = Program::new();
        prog.add_global("cost");
        prog.add_procedure(Procedure::new(
            "msort",
            &["n"],
            &[],
            Stmt::if_then(
                Cond::gt(Expr::var("n"), Expr::int(1)),
                Stmt::seq(vec![
                    Stmt::call("msort", vec![Expr::var("n").div(2)]),
                    Stmt::call("msort", vec![Expr::var("n").div(2)]),
                    Stmt::assign("cost", Expr::var("cost").add(Expr::var("n"))),
                ]),
            ),
        ));
        let s = summarizer_for(&prog);
        let proc = prog.procedure("msort").unwrap();
        let bound = depth_bound(&s, proc, &["msort".to_string()], &FreshSource::new(0))
            .expect("depth bound");
        assert!(
            bound.is_logarithmic(),
            "expected logarithmic bound, got {bound:?}"
        );
    }

    #[test]
    fn non_recursive_body_gets_unit_depth() {
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new("leaf", &["n"], &[], Stmt::Skip));
        let s = summarizer_for(&prog);
        let proc = prog.procedure("leaf").unwrap();
        let bound = depth_bound(&s, proc, &["leaf".to_string()], &FreshSource::new(0)).unwrap();
        assert_eq!(bound, DepthBound::Linear(Term::one()));
    }

    #[test]
    fn ackermann_style_recursion_has_no_bound() {
        // ackermann(m, n): the second argument can grow, so neither pattern
        // applies to the pair of parameters as a whole.
        let mut prog = Program::new();
        prog.add_procedure(Procedure::new(
            "ack",
            &["m", "n"],
            &["t"],
            Stmt::if_else(
                Cond::eq(Expr::var("m"), Expr::int(0)),
                Stmt::Return(Some(Expr::var("n").add(Expr::int(1)))),
                Stmt::if_else(
                    Cond::eq(Expr::var("n"), Expr::int(0)),
                    Stmt::seq(vec![Stmt::call_assign(
                        "t",
                        "ack",
                        vec![Expr::var("m").sub(Expr::int(1)), Expr::int(1)],
                    )]),
                    Stmt::seq(vec![
                        Stmt::call_assign(
                            "t",
                            "ack",
                            vec![Expr::var("m"), Expr::var("n").sub(Expr::int(1))],
                        ),
                        Stmt::call_assign(
                            "t",
                            "ack",
                            vec![Expr::var("m").sub(Expr::int(1)), Expr::var("t")],
                        ),
                    ]),
                ),
            ),
        ));
        let s = summarizer_for(&prog);
        let proc = prog.procedure("ack").unwrap();
        assert_eq!(
            depth_bound(&s, proc, &["ack".to_string()], &FreshSource::new(0)),
            None
        );
    }
}
