//! Property tests for the symbol interner and the structural id encoding:
//! intern/resolve round-trips, post/bound payload round-trips, and the
//! consistency of the `Symbol` total order.

use chora_expr::{FreshSource, Symbol, SymbolKind};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random identifier-ish names (a bounded pool so that collisions — i.e.
/// re-interning — are exercised too).
fn arb_names() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec((0u32..400, 0u32..3), 1..24).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(n, style)| match style {
                0 => format!("v{n}"),
                1 => format!("var_{n}"),
                _ => format!("x{n}y"),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn intern_resolve_round_trip(names in arb_names()) {
        for name in &names {
            let sym = Symbol::new(name);
            // Resolving renders the exact name back...
            prop_assert_eq!(&sym.to_string(), name);
            // ... and re-interning finds the same id.
            prop_assert_eq!(Symbol::new(name), sym);
            prop_assert_eq!(sym.kind(), SymbolKind::Named);
        }
    }

    #[test]
    fn post_base_round_trip(names in arb_names()) {
        for name in &names {
            let base = Symbol::new(name);
            let post = base.primed();
            prop_assert!(post.is_post());
            prop_assert_eq!(post.unprimed(), base);
            prop_assert_eq!(post.primed(), post);
            // The rendered convention parses back to the same id.
            prop_assert_eq!(Symbol::new(&format!("{name}'")), post);
            prop_assert_eq!(&post.to_string(), &format!("{name}'"));
        }
    }

    #[test]
    fn bound_payload_round_trip(k in 0usize..100_000, j in 0usize..100_000) {
        let bh = Symbol::bound_at_h(k);
        prop_assert_eq!(bh.as_bound_at_h(), Some(k));
        prop_assert_eq!(bh.as_bound_at_h1(), None);
        prop_assert_eq!(bh.kind(), SymbolKind::BoundAtH(k));
        let bh1 = Symbol::bound_at_h1(j);
        prop_assert_eq!(bh1.as_bound_at_h1(), Some(j));
        prop_assert_eq!(bh1.as_bound_at_h(), None);
        prop_assert_eq!(bh1.kind(), SymbolKind::BoundAtH1(j));
        prop_assert_ne!(bh, bh1);
        // Payload order is preserved by the symbol order.
        prop_assert_eq!(
            Symbol::bound_at_h(k).cmp(&Symbol::bound_at_h(j)),
            k.cmp(&j)
        );
        // Round-trip through the rendered convention.
        prop_assert_eq!(Symbol::new(&bh.to_string()), bh);
        prop_assert_eq!(Symbol::new(&bh1.to_string()), bh1);
    }

    /// Sorting symbols is a lawful total order whose result depends only on
    /// the set of symbols — not on the order they were created (and hence
    /// interned) in, and not on how often sorting is repeated.
    #[test]
    fn sort_is_consistent_before_and_after_interning(names in arb_names()) {
        // "Before interning": pin the expected set down as plain strings.
        let unique: BTreeSet<String> = names.iter().cloned().collect();
        // Create the symbols in input order (first run interns them)...
        let mut forward: Vec<Symbol> = names.iter().map(|n| Symbol::new(n)).collect();
        // ... and again in reversed order ("after interning").
        let mut backward: Vec<Symbol> = names.iter().rev().map(|n| Symbol::new(n)).collect();
        forward.sort();
        forward.dedup();
        backward.sort();
        backward.dedup();
        prop_assert_eq!(&forward, &backward, "sort must not depend on creation order");
        // The sorted sequence enumerates exactly the expected names.
        let sorted_names: BTreeSet<String> = forward.iter().map(|s| s.to_string()).collect();
        prop_assert_eq!(sorted_names, unique);
        // Lawful total order: comparison agrees with equality and is
        // antisymmetric over the sorted run.
        for pair in forward.windows(2) {
            prop_assert!(pair[0] < pair[1]);
            prop_assert!(pair[1] > pair[0]);
            prop_assert_ne!(pair[0], pair[1]);
        }
    }

    /// The order is kind-major: every named symbol precedes every post-state
    /// symbol, which precedes every bound symbol, etc.
    #[test]
    fn sort_groups_kinds(names in arb_names(), k in 0usize..1000) {
        let fresh_source = FreshSource::new(3);
        let mut symbols: Vec<Symbol> = Vec::new();
        for name in &names {
            symbols.push(Symbol::new(name));
            symbols.push(Symbol::post(name));
        }
        symbols.push(Symbol::bound_at_h(k));
        symbols.push(Symbol::bound_at_h1(k));
        symbols.push(Symbol::height());
        symbols.push(Symbol::depth());
        symbols.push(fresh_source.fresh());
        symbols.sort();
        let rank = |s: &Symbol| match s.kind() {
            SymbolKind::Named => 0,
            SymbolKind::Post => 1,
            SymbolKind::BoundAtH(_) => 2,
            SymbolKind::BoundAtH1(_) => 3,
            SymbolKind::Height | SymbolKind::Depth => 4,
            SymbolKind::Fresh { .. } => 5,
            SymbolKind::Dimension(_) => 6,
            SymbolKind::Scratch(_) => 7,
        };
        for pair in symbols.windows(2) {
            prop_assert!(rank(&pair[0]) <= rank(&pair[1]));
        }
    }
}
