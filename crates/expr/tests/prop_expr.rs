//! Property tests for the expression substrate: ring axioms for polynomials,
//! substitution/evaluation commutation, and exp-poly evaluation laws.

use chora_expr::{ExpPoly, LinearExpr, Polynomial, Symbol, Term};
use chora_numeric::{rat, BigRational};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small random polynomial over x, y with coefficients in [-5, 5].
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    prop::collection::vec((0u32..3, 0u32..3, -5i64..6), 0..6).prop_map(|terms| {
        let x = Symbol::new("x");
        let y = Symbol::new("y");
        let mut p = Polynomial::zero();
        for (ex, ey, c) in terms {
            let m = chora_expr::Monomial::from_powers([(x, ex), (y, ey)]);
            p = &p + &Polynomial::term(rat(c), m);
        }
        p
    })
}

fn env(xv: i64, yv: i64) -> BTreeMap<Symbol, BigRational> {
    let mut e = BTreeMap::new();
    e.insert(Symbol::new("x"), rat(xv));
    e.insert(Symbol::new("y"), rat(yv));
    e
}

proptest! {
    #[test]
    fn poly_add_commutes_with_eval(a in arb_poly(), b in arb_poly(), xv in -4i64..5, yv in -4i64..5) {
        let sum = &a + &b;
        let e = env(xv, yv);
        prop_assert_eq!(sum.eval(&e).unwrap(), a.eval(&e).unwrap() + b.eval(&e).unwrap());
    }

    #[test]
    fn poly_mul_commutes_with_eval(a in arb_poly(), b in arb_poly(), xv in -3i64..4, yv in -3i64..4) {
        let prod = &a * &b;
        let e = env(xv, yv);
        prop_assert_eq!(prod.eval(&e).unwrap(), a.eval(&e).unwrap() * b.eval(&e).unwrap());
    }

    #[test]
    fn poly_ring_axioms(a in arb_poly(), b in arb_poly(), c in arb_poly()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert!((&a - &a).is_zero());
    }

    #[test]
    fn poly_substitution_commutes_with_eval(a in arb_poly(), b in arb_poly(), xv in -3i64..4, yv in -3i64..4) {
        // a[x := b] evaluated == a evaluated with x := value(b)
        let substituted = a.substitute(&Symbol::new("x"), &b);
        let e = env(xv, yv);
        let bv = b.eval(&e).unwrap();
        let mut e2 = e.clone();
        e2.insert(Symbol::new("x"), bv);
        prop_assert_eq!(substituted.eval(&e).unwrap(), a.eval(&e2).unwrap());
    }

    #[test]
    fn linear_expr_agrees_with_polynomial(coeffs in prop::collection::vec(-5i64..6, 3), xv in -5i64..6, yv in -5i64..6) {
        let lin = LinearExpr::from_parts(
            [(Symbol::new("x"), rat(coeffs[0])), (Symbol::new("y"), rat(coeffs[1]))],
            rat(coeffs[2]),
        );
        let poly = Polynomial::from(&lin);
        let e = env(xv, yv);
        prop_assert_eq!(lin.eval(&e).unwrap(), poly.eval(&e).unwrap());
    }

    #[test]
    fn exppoly_shift_is_evaluation_shift(c0 in -5i64..6, c1 in -5i64..6, base in 1i64..4, shift in 0i64..4, at in 0i64..8) {
        let h = Symbol::height();
        let poly = Polynomial::var(h).scale(&rat(c1)) + Polynomial::constant(rat(c0));
        let f = ExpPoly::exp_poly_term(rat(base), poly, &h);
        prop_assert_eq!(f.shift(shift).eval_int(at), f.eval_int(at + shift));
    }

    #[test]
    fn exppoly_mul_matches_pointwise(b1 in 1i64..4, b2 in 1i64..4, at in 0i64..10) {
        let h = Symbol::height();
        let f = ExpPoly::exponential(rat(b1), &h);
        let g = ExpPoly::exponential(rat(b2), &h).add(&ExpPoly::param_var(&h));
        let prod = f.mul(&g);
        prop_assert_eq!(prod.eval_int(at), f.eval_int(at) * g.eval_int(at));
    }

    #[test]
    fn term_substitute_then_eval(v in 1i64..20) {
        let n = Symbol::new("n");
        let t = Term::add(vec![
            Term::pow(Term::int(2), Term::var(n)),
            Term::mul(vec![Term::int(3), Term::var(n)]),
        ]);
        let substituted = t.substitute(&n, &Term::int(v));
        let expected = rat(2).pow(v as i32) + rat(3) * rat(v);
        prop_assert_eq!(substituted.as_constant().unwrap(), expected);
    }
}
