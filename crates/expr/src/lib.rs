//! # chora-expr
//!
//! Symbolic expression substrate for the CHORA analysis stack:
//!
//! * [`Symbol`] — interned `u32` identifiers with the pre/post-state and
//!   bounding-function conventions encoded structurally in the id space
//!   (see [`SymbolKind`]); fresh temporaries come from a per-analysis
//!   [`FreshSource`],
//! * [`LinearExpr`] — affine expressions over ℚ (the constraint language of
//!   the polyhedra domain),
//! * [`Polynomial`] / [`Monomial`] — multivariate polynomials over ℚ (the
//!   paper's *relational expressions*, §3),
//! * [`ExpPoly`] — exponential-polynomial closed forms of one parameter (the
//!   solution class of C-finite recurrences, §3),
//! * [`Term`] — a small symbolic bound language with `pow`, `log2`, and
//!   `max`, used for final procedure summaries and complexity reports.
//!
//! ```
//! use chora_expr::{ExpPoly, Symbol, Term};
//! use chora_numeric::rat;
//!
//! // The Tower-of-Hanoi bounding function b(h) = 2^h - 1 ...
//! let h = Symbol::height();
//! let b = ExpPoly::exponential(rat(2), &h).add(&ExpPoly::constant(rat(-1), &h));
//! // ... instantiated with the depth bound h = n gives the familiar 2^n - 1.
//! let bound = b.to_term_with_param(&Term::var(Symbol::new("n")));
//! assert_eq!(bound.to_string(), "2^n - 1");
//! ```

mod exppoly;
mod linear;
mod merge;
mod polynomial;
mod symbol;
mod term;

pub use exppoly::ExpPoly;
pub use linear::LinearExpr;
pub use polynomial::{Monomial, Polynomial};
pub use symbol::{
    FreshSource, Symbol, SymbolKind, MAX_FRESH_SCOPE, MAX_FRESH_SERIAL, MAX_SYMBOL_PAYLOAD,
};
pub use term::Term;
