//! Exponential-polynomial closed forms in a single parameter.
//!
//! Every C-finite sequence — and hence every bounding function produced by
//! the recurrence-solving step of height-based recurrence analysis — admits a
//! closed form of the shape
//!
//! ```text
//!     f(h) = p₁(h)·r₁^h + p₂(h)·r₂^h + ... + pₗ(h)·rₗ^h
//! ```
//!
//! where each `pᵢ` is a polynomial and each `rᵢ` a rational constant (§3,
//! "Recurrence relations").  [`ExpPoly`] represents exactly this class, keyed
//! by the base `rᵢ`.

use crate::polynomial::Polynomial;
use crate::symbol::Symbol;
use crate::term::Term;
use chora_numeric::BigRational;
use std::collections::BTreeMap;
use std::fmt;

/// An exponential-polynomial function of one parameter (by convention the
/// recursion height `h`).
///
/// ```
/// use chora_expr::{ExpPoly, Symbol};
/// use chora_numeric::rat;
/// let h = Symbol::height();
/// // f(h) = 2^h - 1   (the Tower-of-Hanoi closed form)
/// let f = ExpPoly::exponential(rat(2), &h).add(&ExpPoly::constant(rat(-1), &h));
/// assert_eq!(f.eval_int(10), rat(1023));
/// assert_eq!(f.to_string(), "2^h - 1");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct ExpPoly {
    /// The parameter symbol (e.g. `h`).
    param: Symbol,
    /// Map base → polynomial coefficient (no zero polynomials, no base ≤ 0
    /// except the conventional base 1 for the purely polynomial part).
    terms: BTreeMap<BigRational, Polynomial>,
}

impl ExpPoly {
    /// The zero function.
    pub fn zero(param: &Symbol) -> ExpPoly {
        ExpPoly {
            param: *param,
            terms: BTreeMap::new(),
        }
    }

    /// A constant function.
    pub fn constant(c: BigRational, param: &Symbol) -> ExpPoly {
        ExpPoly::from_poly(Polynomial::constant(c), param)
    }

    /// A purely polynomial function `p(param)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` mentions a symbol other than `param`.
    pub fn from_poly(p: Polynomial, param: &Symbol) -> ExpPoly {
        for s in p.symbols() {
            assert_eq!(
                &s, param,
                "ExpPoly polynomial part mentions foreign symbol {s}"
            );
        }
        let mut terms = BTreeMap::new();
        if !p.is_zero() {
            terms.insert(BigRational::one(), p);
        }
        ExpPoly {
            param: *param,
            terms,
        }
    }

    /// The function `base^param`.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0`.
    pub fn exponential(base: BigRational, param: &Symbol) -> ExpPoly {
        ExpPoly::exp_poly_term(base, Polynomial::one(), param)
    }

    /// The function `p(param)·base^param`.
    ///
    /// Negative bases are permitted (they arise from negative eigenvalues of
    /// mutual-recursion systems); use [`ExpPoly::upper_envelope`] to obtain a
    /// monotone non-negative upper bound when one is required.
    ///
    /// # Panics
    ///
    /// Panics if `base == 0` or if `p` mentions a symbol other than `param`.
    pub fn exp_poly_term(base: BigRational, p: Polynomial, param: &Symbol) -> ExpPoly {
        assert!(!base.is_zero(), "ExpPoly base must be non-zero");
        for s in p.symbols() {
            assert_eq!(
                &s, param,
                "ExpPoly polynomial part mentions foreign symbol {s}"
            );
        }
        let mut terms = BTreeMap::new();
        if !p.is_zero() {
            terms.insert(base, p);
        }
        ExpPoly {
            param: *param,
            terms,
        }
    }

    /// The identity function `param`.
    pub fn param_var(param: &Symbol) -> ExpPoly {
        ExpPoly::from_poly(Polynomial::var(*param), param)
    }

    /// The parameter symbol.
    pub fn param(&self) -> &Symbol {
        &self.param
    }

    /// Whether this is the zero function.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the function is a constant, returning it if so.
    pub fn as_constant(&self) -> Option<BigRational> {
        if self.terms.is_empty() {
            return Some(BigRational::zero());
        }
        if self.terms.len() == 1 {
            let (base, p) = self.terms.iter().next().unwrap();
            if base.is_one() {
                return p.as_constant();
            }
        }
        None
    }

    /// Whether the function is a polynomial in the parameter (no exponential
    /// part with base ≠ 1), returning the polynomial if so.
    pub fn as_polynomial(&self) -> Option<Polynomial> {
        if self.terms.is_empty() {
            return Some(Polynomial::zero());
        }
        if self.terms.len() == 1 {
            let (base, p) = self.terms.iter().next().unwrap();
            if base.is_one() {
                return Some(p.clone());
            }
        }
        None
    }

    /// Iterator over `(base, polynomial)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&BigRational, &Polynomial)> {
        self.terms.iter()
    }

    fn add_term(&mut self, base: BigRational, p: Polynomial) {
        if p.is_zero() {
            return;
        }
        let entry = self
            .terms
            .entry(base.clone())
            .or_insert_with(Polynomial::zero);
        *entry = &*entry + &p;
        if entry.is_zero() {
            self.terms.remove(&base);
        }
    }

    /// Pointwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the parameters differ.
    pub fn add(&self, other: &ExpPoly) -> ExpPoly {
        assert_eq!(self.param, other.param, "ExpPoly parameter mismatch");
        let mut out = self.clone();
        for (b, p) in &other.terms {
            out.add_term(b.clone(), p.clone());
        }
        out
    }

    /// Pointwise scaling.
    pub fn scale(&self, c: &BigRational) -> ExpPoly {
        if c.is_zero() {
            return ExpPoly::zero(&self.param);
        }
        ExpPoly {
            param: self.param,
            terms: self
                .terms
                .iter()
                .map(|(b, p)| (b.clone(), p.scale(c)))
                .collect(),
        }
    }

    /// Pointwise product (bases multiply, coefficient polynomials multiply).
    ///
    /// # Panics
    ///
    /// Panics if the parameters differ.
    pub fn mul(&self, other: &ExpPoly) -> ExpPoly {
        assert_eq!(self.param, other.param, "ExpPoly parameter mismatch");
        let mut out = ExpPoly::zero(&self.param);
        for (b1, p1) in &self.terms {
            for (b2, p2) in &other.terms {
                out.add_term(b1 * b2, p1 * p2);
            }
        }
        out
    }

    /// Pointwise negation.
    pub fn neg(&self) -> ExpPoly {
        self.scale(&-BigRational::one())
    }

    /// The function `h ↦ f(h + k)` for an integer shift `k ≥ 0`.
    pub fn shift(&self, k: i64) -> ExpPoly {
        assert!(k >= 0, "ExpPoly::shift expects a non-negative shift");
        let hvar = Polynomial::var(self.param);
        let shifted_param = &hvar + &Polynomial::constant(BigRational::from(k));
        let mut out = ExpPoly::zero(&self.param);
        for (b, p) in &self.terms {
            let shifted_poly = p.substitute(&self.param, &shifted_param);
            let factor = b.pow(k as i32);
            out.add_term(b.clone(), shifted_poly.scale(&factor));
        }
        out
    }

    /// Evaluates at an integer point `n ≥ 0`.
    pub fn eval_int(&self, n: i64) -> BigRational {
        assert!(n >= 0, "ExpPoly::eval_int expects a non-negative argument");
        let x = BigRational::from(n);
        let mut acc = BigRational::zero();
        for (b, p) in &self.terms {
            let pv = p.eval_univariate(&self.param, &x);
            acc += &(&pv * &b.pow(n as i32));
        }
        acc
    }

    /// Maximum exponential base appearing (1 if the function is a pure
    /// polynomial, `None` if zero).
    pub fn dominant_base(&self) -> Option<BigRational> {
        self.terms.keys().max().cloned()
    }

    /// The base with the largest absolute value (drives the asymptotics).
    pub fn dominant_base_abs(&self) -> Option<BigRational> {
        self.terms.keys().max_by_key(|b| b.abs()).cloned()
    }

    /// A pointwise upper bound with non-negative coefficients and positive
    /// bases: every base `r` is replaced by `|r|` and every polynomial
    /// coefficient by its absolute value.  Sound because
    /// `Σ qᵢ(h)·rᵢ^h ≤ Σ |qᵢ|(h)·|rᵢ|^h` for `h ≥ 0`.
    pub fn upper_envelope(&self) -> ExpPoly {
        let mut out = ExpPoly::zero(&self.param);
        for (base, poly) in &self.terms {
            let abs_poly = Polynomial::from_terms(poly.terms().map(|(m, c)| (c.abs(), m.clone())));
            out.add_term(base.abs(), abs_poly);
        }
        out
    }

    /// Degree of the polynomial factor attached to the dominant base.
    pub fn dominant_degree(&self) -> u32 {
        match self.dominant_base() {
            None => 0,
            Some(b) => self.terms[&b].degree(),
        }
    }

    /// Whether the function is eventually non-decreasing and non-negative
    /// (sufficient syntactic check: all coefficients of all polynomial parts
    /// are non-negative).
    pub fn is_syntactically_monotone(&self) -> bool {
        self.terms
            .values()
            .all(|p| p.terms().all(|(_, c)| !c.is_negative()))
    }

    /// Renders the closed form as a [`Term`] with the parameter replaced by
    /// an arbitrary term (used to substitute the depth bound for `h`).
    pub fn to_term_with_param(&self, param_term: &Term) -> Term {
        if self.terms.is_empty() {
            return Term::constant(BigRational::zero());
        }
        let mut summands = Vec::new();
        for (base, poly) in &self.terms {
            let poly_term = poly_to_term(poly, &self.param, param_term);
            if base.is_one() {
                summands.push(poly_term);
            } else {
                let exp = Term::pow(Term::constant(base.clone()), param_term.clone());
                summands.push(Term::mul(vec![poly_term, exp]));
            }
        }
        Term::add(summands)
    }

    /// Renders the closed form as a [`Term`] in the parameter symbol itself.
    pub fn to_term(&self) -> Term {
        self.to_term_with_param(&Term::var(self.param))
    }
}

fn poly_to_term(p: &Polynomial, param: &Symbol, param_term: &Term) -> Term {
    let mut summands = Vec::new();
    for (m, c) in p.terms() {
        let mut factors = vec![Term::constant(c.clone())];
        for (s, e) in m.powers() {
            let base = if s == param {
                param_term.clone()
            } else {
                Term::var(*s)
            };
            for _ in 0..e {
                factors.push(base.clone());
            }
        }
        summands.push(Term::mul(factors));
    }
    Term::add(summands)
}

impl fmt::Display for ExpPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Largest base first.
        let mut first = true;
        for (base, poly) in self.terms.iter().rev() {
            let rendered = if base.is_one() {
                format!("{poly}")
            } else if poly.as_constant() == Some(BigRational::one()) {
                format!("{base}^{}", self.param)
            } else {
                format!("({poly})·{base}^{}", self.param)
            };
            if first {
                write!(f, "{rendered}")?;
                first = false;
            } else if let Some(stripped) = rendered.strip_prefix('-') {
                write!(f, " - {stripped}")?;
            } else {
                write!(f, " + {rendered}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for ExpPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::{rat, ratio};

    fn h() -> Symbol {
        Symbol::height()
    }

    #[test]
    fn constant_and_polynomial() {
        let c = ExpPoly::constant(rat(5), &h());
        assert_eq!(c.as_constant(), Some(rat(5)));
        assert_eq!(c.eval_int(17), rat(5));
        let p = ExpPoly::param_var(&h());
        assert_eq!(p.eval_int(4), rat(4));
        assert!(p.as_constant().is_none());
        assert!(p.as_polynomial().is_some());
    }

    #[test]
    fn hanoi_closed_form() {
        // 2^h - 1
        let f = ExpPoly::exponential(rat(2), &h()).add(&ExpPoly::constant(rat(-1), &h()));
        assert_eq!(f.eval_int(0), rat(0));
        assert_eq!(f.eval_int(3), rat(7));
        assert_eq!(f.eval_int(10), rat(1023));
        assert_eq!(f.dominant_base(), Some(rat(2)));
        assert_eq!(f.to_string(), "2^h - 1");
    }

    #[test]
    fn mergesort_closed_form() {
        // h·2^h  (cost of mergesort in terms of recursion height)
        let f = ExpPoly::exp_poly_term(rat(2), Polynomial::var(h()), &h());
        assert_eq!(f.eval_int(3), rat(24));
        assert_eq!(f.dominant_base(), Some(rat(2)));
        assert_eq!(f.dominant_degree(), 1);
    }

    #[test]
    fn addition_merges_bases() {
        let a = ExpPoly::exponential(rat(2), &h());
        let b = ExpPoly::exponential(rat(2), &h()).scale(&rat(3));
        let s = a.add(&b);
        assert_eq!(s.eval_int(4), rat(64));
        // 2^h and 3^h stay separate
        let t = a.add(&ExpPoly::exponential(rat(3), &h()));
        assert_eq!(t.terms().count(), 2);
        // cancellation removes a base entirely
        let z = a.add(&a.neg());
        assert!(z.is_zero());
    }

    #[test]
    fn multiplication() {
        // (2^h)·(2^h) = 4^h ; (h)·(2^h) = h·2^h
        let two_h = ExpPoly::exponential(rat(2), &h());
        let four_h = two_h.mul(&two_h);
        assert_eq!(four_h.eval_int(3), rat(64));
        assert_eq!(four_h.dominant_base(), Some(rat(4)));
        let hh = ExpPoly::param_var(&h());
        let prod = hh.mul(&two_h);
        assert_eq!(prod.eval_int(5), rat(160));
    }

    #[test]
    fn shift() {
        // f(h) = 2^h - 1 ;  f(h+1) = 2·2^h - 1
        let f = ExpPoly::exponential(rat(2), &h()).add(&ExpPoly::constant(rat(-1), &h()));
        let g = f.shift(1);
        assert_eq!(g.eval_int(3), f.eval_int(4));
        // polynomial shift: (h)^2 -> (h+2)^2
        let sq = ExpPoly::from_poly(Polynomial::var(h()).pow(2), &h());
        assert_eq!(sq.shift(2).eval_int(3), rat(25));
    }

    #[test]
    fn fractional_bases() {
        let half = ExpPoly::exponential(ratio(1, 2), &h());
        assert_eq!(half.eval_int(3), ratio(1, 8));
        assert!(half.dominant_base().unwrap() < rat(1));
    }

    #[test]
    fn monotonicity_check() {
        let good = ExpPoly::exponential(rat(2), &h());
        assert!(good.is_syntactically_monotone());
        let bad = good.add(&ExpPoly::constant(rat(-1), &h()));
        assert!(!bad.is_syntactically_monotone());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_base_panics() {
        let _ = ExpPoly::exponential(rat(0), &h());
    }

    #[test]
    fn negative_bases_and_envelope() {
        // f(h) = 6^h - (-6)^h : 0, 12, 0, 432, ...
        let f = ExpPoly::exponential(rat(6), &h()).add(&ExpPoly::exponential(rat(-6), &h()).neg());
        assert_eq!(f.eval_int(1), rat(12));
        assert_eq!(f.eval_int(2), rat(0));
        assert_eq!(f.eval_int(3), rat(432));
        let env = f.upper_envelope();
        // envelope is 2·6^h
        assert_eq!(env.eval_int(2), rat(72));
        for k in 0..6 {
            assert!(env.eval_int(k) >= f.eval_int(k));
        }
        assert_eq!(f.dominant_base_abs(), Some(rat(6)));
    }

    #[test]
    fn to_term_rendering() {
        let f = ExpPoly::exponential(rat(2), &h()).add(&ExpPoly::constant(rat(-1), &h()));
        let t = f.to_term();
        assert_eq!(t.to_string(), "2^h - 1");
    }
}
