//! A small symbolic term language for *bound expressions*.
//!
//! The final procedure summaries reported by CHORA — e.g.
//! `cost' ≤ cost + 2^n − 1` or `cost' ≤ 3^(log2(n)+1)` — live outside pure
//! polynomial arithmetic: they mix polynomials, exponentials with symbolic
//! exponents, base-2 logarithms, and `max`.  [`Term`] is the common
//! representation for such expressions, used by the depth-bound substitution
//! step (§4.2), the assertion checker, and the complexity classifier.

use crate::symbol::Symbol;
use chora_numeric::BigRational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A symbolic arithmetic term.
///
/// Construct terms through the smart constructors ([`Term::add`],
/// [`Term::mul`], [`Term::pow`], ...) which perform light normalization
/// (flattening, constant folding, unit elimination).
///
/// ```
/// use chora_expr::{Symbol, Term};
/// use chora_numeric::rat;
/// let n = Term::var(Symbol::new("n"));
/// let bound = Term::pow(Term::constant(rat(2)), n.clone());
/// assert_eq!(bound.to_string(), "2^n");
/// let folded = Term::add(vec![Term::constant(rat(1)), Term::constant(rat(2))]);
/// assert_eq!(folded, Term::constant(rat(3)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A rational constant.
    Const(BigRational),
    /// A symbol.
    Var(Symbol),
    /// Sum of terms.
    Add(Vec<Term>),
    /// Product of terms.
    Mul(Vec<Term>),
    /// `base ^ exponent`.
    Pow(Box<Term>, Box<Term>),
    /// Base-2 logarithm.
    Log2(Box<Term>),
    /// Maximum of one or more terms.
    Max(Vec<Term>),
    /// Minimum of one or more terms.
    Min(Vec<Term>),
}

impl Term {
    /// A rational constant term.
    pub fn constant(c: BigRational) -> Term {
        Term::Const(c)
    }

    /// The constant zero.
    pub fn zero() -> Term {
        Term::Const(BigRational::zero())
    }

    /// The constant one.
    pub fn one() -> Term {
        Term::Const(BigRational::one())
    }

    /// An integer constant term.
    pub fn int(v: i64) -> Term {
        Term::Const(BigRational::from(v))
    }

    /// A variable term.
    pub fn var(s: Symbol) -> Term {
        Term::Var(s)
    }

    /// Smart sum: flattens nested sums, folds constants, and drops zeros.
    pub fn add(terms: Vec<Term>) -> Term {
        let mut flat = Vec::new();
        let mut constant = BigRational::zero();
        for t in terms {
            match t {
                Term::Add(inner) => {
                    for x in inner {
                        match x {
                            Term::Const(c) => constant += &c,
                            other => flat.push(other),
                        }
                    }
                }
                Term::Const(c) => constant += &c,
                other => flat.push(other),
            }
        }
        if !constant.is_zero() {
            flat.push(Term::Const(constant));
        }
        match flat.len() {
            0 => Term::zero(),
            1 => flat.pop().expect("len checked"),
            _ => Term::Add(flat),
        }
    }

    /// Smart difference `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::add(vec![a, Term::mul(vec![Term::int(-1), b])])
    }

    /// Smart product: flattens nested products, folds constants, and handles
    /// the zero/one units.
    pub fn mul(terms: Vec<Term>) -> Term {
        let mut flat = Vec::new();
        let mut constant = BigRational::one();
        for t in terms {
            match t {
                Term::Mul(inner) => {
                    for x in inner {
                        match x {
                            Term::Const(c) => constant = &constant * &c,
                            other => flat.push(other),
                        }
                    }
                }
                Term::Const(c) => constant = &constant * &c,
                other => flat.push(other),
            }
        }
        if constant.is_zero() {
            return Term::zero();
        }
        if !constant.is_one() {
            flat.insert(0, Term::Const(constant));
        }
        match flat.len() {
            0 => Term::one(),
            1 => flat.pop().expect("len checked"),
            _ => Term::Mul(flat),
        }
    }

    /// Smart power: folds constant exponents 0/1 and constant integer powers.
    pub fn pow(base: Term, exponent: Term) -> Term {
        if let Term::Const(e) = &exponent {
            if e.is_zero() {
                return Term::one();
            }
            if e.is_one() {
                return base;
            }
            if let (Term::Const(b), Some(ei)) = (&base, e.to_i64()) {
                if (0..=64).contains(&ei) {
                    return Term::Const(b.pow(ei as i32));
                }
            }
        }
        if let Term::Const(b) = &base {
            if b.is_one() {
                return Term::one();
            }
        }
        Term::Pow(Box::new(base), Box::new(exponent))
    }

    /// Smart base-2 logarithm: folds exact powers of two.
    pub fn log2(t: Term) -> Term {
        if let Term::Const(c) = &t {
            if c.is_positive() && c.is_integer() {
                let mut v = c.numer().clone();
                let mut k = 0i64;
                let two = chora_numeric::int(2);
                while (&v % &two).is_zero() && !v.is_one() {
                    v = &v / &two;
                    k += 1;
                }
                if v.is_one() {
                    return Term::int(k);
                }
            }
        }
        Term::Log2(Box::new(t))
    }

    /// Smart maximum: flattens, dedups, folds constants.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn max(terms: Vec<Term>) -> Term {
        Term::minmax(terms, true)
    }

    /// Smart minimum: flattens, dedups, folds constants.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn min(terms: Vec<Term>) -> Term {
        Term::minmax(terms, false)
    }

    fn minmax(terms: Vec<Term>, is_max: bool) -> Term {
        assert!(!terms.is_empty(), "max/min of an empty list");
        let mut flat: Vec<Term> = Vec::new();
        let mut best_const: Option<BigRational> = None;
        for t in terms {
            let inner_list = match (is_max, t) {
                (true, Term::Max(inner)) | (false, Term::Min(inner)) => inner,
                (_, other) => vec![other],
            };
            for x in inner_list {
                if let Term::Const(c) = &x {
                    best_const = Some(match best_const {
                        None => c.clone(),
                        Some(prev) => {
                            if is_max {
                                prev.max(c.clone())
                            } else {
                                prev.min(c.clone())
                            }
                        }
                    });
                } else if !flat.contains(&x) {
                    flat.push(x);
                }
            }
        }
        if let Some(c) = best_const {
            flat.push(Term::Const(c));
        }
        if flat.len() == 1 {
            return flat.pop().expect("len checked");
        }
        if is_max {
            Term::Max(flat)
        } else {
            Term::Min(flat)
        }
    }

    /// Returns the constant value if the term is a constant.
    pub fn as_constant(&self) -> Option<BigRational> {
        match self {
            Term::Const(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// All symbols occurring in the term.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Term::Const(_) => {}
            Term::Var(s) => {
                out.insert(*s);
            }
            Term::Add(ts) | Term::Mul(ts) | Term::Max(ts) | Term::Min(ts) => {
                for t in ts {
                    t.collect_symbols(out);
                }
            }
            Term::Pow(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Term::Log2(a) => a.collect_symbols(out),
        }
    }

    /// Substitutes a term for every occurrence of a symbol.
    pub fn substitute(&self, s: &Symbol, replacement: &Term) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(v) => {
                if v == s {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Term::Add(ts) => Term::add(ts.iter().map(|t| t.substitute(s, replacement)).collect()),
            Term::Mul(ts) => Term::mul(ts.iter().map(|t| t.substitute(s, replacement)).collect()),
            Term::Max(ts) => Term::max(ts.iter().map(|t| t.substitute(s, replacement)).collect()),
            Term::Min(ts) => Term::min(ts.iter().map(|t| t.substitute(s, replacement)).collect()),
            Term::Pow(a, b) => {
                Term::pow(a.substitute(s, replacement), b.substitute(s, replacement))
            }
            Term::Log2(a) => Term::log2(a.substitute(s, replacement)),
        }
    }

    /// Numeric evaluation over `f64` (used by the benchmark harness and by
    /// differential tests against concrete program executions).
    ///
    /// Returns `None` if a symbol is missing from the environment or a
    /// partial operation (log of a non-positive value) is encountered.
    pub fn eval_f64(&self, env: &BTreeMap<Symbol, f64>) -> Option<f64> {
        match self {
            Term::Const(c) => Some(c.to_f64()),
            Term::Var(s) => env.get(s).copied(),
            Term::Add(ts) => {
                let mut acc = 0.0;
                for t in ts {
                    acc += t.eval_f64(env)?;
                }
                Some(acc)
            }
            Term::Mul(ts) => {
                let mut acc = 1.0;
                for t in ts {
                    acc *= t.eval_f64(env)?;
                }
                Some(acc)
            }
            Term::Pow(a, b) => {
                let base = a.eval_f64(env)?;
                let exp = b.eval_f64(env)?;
                Some(base.powf(exp))
            }
            Term::Log2(a) => {
                let v = a.eval_f64(env)?;
                if v > 0.0 {
                    Some(v.log2())
                } else {
                    None
                }
            }
            Term::Max(ts) => {
                let mut acc = f64::NEG_INFINITY;
                for t in ts {
                    acc = acc.max(t.eval_f64(env)?);
                }
                Some(acc)
            }
            Term::Min(ts) => {
                let mut acc = f64::INFINITY;
                for t in ts {
                    acc = acc.min(t.eval_f64(env)?);
                }
                Some(acc)
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Term::Add(_) => 1,
            Term::Mul(_) => 2,
            Term::Pow(_, _) => 3,
            _ => 4,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let needs_parens = self.precedence() < parent_prec;
        if needs_parens {
            write!(f, "(")?;
        }
        self.fmt_inner(f)?;
        if needs_parens {
            write!(f, ")")?;
        }
        Ok(())
    }

    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(s) => write!(f, "{s}"),
            Term::Add(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    // Render `+ (-c)·x` as `- c·x`.
                    let (neg, abs_term) = t.split_negation();
                    if i == 0 {
                        if neg {
                            write!(f, "-")?;
                        }
                    } else if neg {
                        write!(f, " - ")?;
                    } else {
                        write!(f, " + ")?;
                    }
                    abs_term.fmt_with_parens(f, 2)?;
                }
                Ok(())
            }
            Term::Mul(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    t.fmt_with_parens(f, 3)?;
                }
                Ok(())
            }
            Term::Pow(a, b) => {
                a.fmt_with_parens(f, 4)?;
                write!(f, "^")?;
                b.fmt_with_parens(f, 4)
            }
            Term::Log2(a) => write!(f, "log2({a})"),
            Term::Max(ts) => {
                write!(f, "max(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Min(ts) => {
                write!(f, "min(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }

    /// Splits off a leading negation for prettier `a - b` printing: returns
    /// `(true, |t|)` when the term is a negative constant or a product with a
    /// negative constant coefficient.
    fn split_negation(&self) -> (bool, Term) {
        match self {
            Term::Const(c) if c.is_negative() => (true, Term::Const(-c.clone())),
            Term::Mul(ts) => {
                if let Some(Term::Const(c)) = ts.first() {
                    if c.is_negative() {
                        let mut rest = ts.clone();
                        rest[0] = Term::Const(-c.clone());
                        return (true, Term::mul(rest));
                    }
                }
                (false, self.clone())
            }
            _ => (false, self.clone()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_inner(f)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::{rat, ratio};

    fn n() -> Term {
        Term::var(Symbol::new("n"))
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Term::add(vec![Term::int(1), Term::int(2), Term::int(3)]),
            Term::int(6)
        );
        assert_eq!(Term::mul(vec![Term::int(2), Term::int(3)]), Term::int(6));
        assert_eq!(Term::mul(vec![Term::int(0), n()]), Term::zero());
        assert_eq!(Term::mul(vec![Term::int(1), n()]), n());
        assert_eq!(Term::add(vec![Term::zero(), n()]), n());
        assert_eq!(Term::pow(Term::int(2), Term::int(10)), Term::int(1024));
        assert_eq!(Term::pow(n(), Term::int(1)), n());
        assert_eq!(Term::pow(n(), Term::int(0)), Term::one());
        assert_eq!(Term::log2(Term::int(8)), Term::int(3));
        assert_eq!(Term::max(vec![Term::int(3), Term::int(5)]), Term::int(5));
        assert_eq!(Term::min(vec![Term::int(3), Term::int(5)]), Term::int(3));
    }

    #[test]
    fn flattening() {
        let t = Term::add(vec![Term::add(vec![n(), Term::int(1)]), Term::int(2)]);
        assert_eq!(t, Term::add(vec![n(), Term::int(3)]));
        let m = Term::mul(vec![Term::mul(vec![n(), Term::int(2)]), Term::int(3)]);
        assert_eq!(m.to_string(), "6·n");
    }

    #[test]
    fn display() {
        let two_pow_n = Term::pow(Term::int(2), n());
        assert_eq!(two_pow_n.to_string(), "2^n");
        let bound = Term::add(vec![two_pow_n.clone(), Term::int(-1)]);
        assert_eq!(bound.to_string(), "2^n - 1");
        let prod = Term::mul(vec![Term::int(3), Term::add(vec![n(), Term::int(1)])]);
        assert_eq!(prod.to_string(), "3·(n + 1)");
        let mx = Term::max(vec![Term::int(1), n()]);
        assert_eq!(mx.to_string(), "max(n, 1)");
        let lg = Term::mul(vec![n(), Term::log2(n())]);
        assert_eq!(lg.to_string(), "n·log2(n)");
        let neg = Term::sub(n(), Term::mul(vec![Term::int(2), n()]));
        assert_eq!(neg.to_string(), "n - 2·n");
    }

    #[test]
    fn substitution_and_eval() {
        let t = Term::add(vec![
            Term::pow(Term::int(2), n()),
            Term::mul(vec![Term::int(3), n()]),
        ]);
        let s = t.substitute(&Symbol::new("n"), &Term::int(4));
        assert_eq!(s, Term::int(28));
        let mut env = BTreeMap::new();
        env.insert(Symbol::new("n"), 4.0);
        assert_eq!(t.eval_f64(&env), Some(28.0));
        assert_eq!(n().eval_f64(&BTreeMap::new()), None);
    }

    #[test]
    fn eval_log_and_pow() {
        let t = Term::mul(vec![n(), Term::log2(n())]);
        let mut env = BTreeMap::new();
        env.insert(Symbol::new("n"), 8.0);
        assert_eq!(t.eval_f64(&env), Some(24.0));
        let frac_pow = Term::pow(n(), Term::constant(ratio(1, 2)));
        env.insert(Symbol::new("n"), 9.0);
        assert_eq!(frac_pow.eval_f64(&env), Some(3.0));
        // log of a non-positive value is undefined
        env.insert(Symbol::new("n"), 0.0);
        assert_eq!(Term::log2(n()).eval_f64(&env), None);
    }

    #[test]
    fn max_dedup_and_flatten() {
        let t = Term::max(vec![Term::max(vec![n(), Term::int(1)]), n(), Term::int(0)]);
        assert_eq!(t.to_string(), "max(n, 1)");
    }

    #[test]
    fn symbols() {
        let t = Term::add(vec![
            Term::pow(Term::int(2), Term::var(Symbol::new("a"))),
            Term::log2(Term::var(Symbol::new("b"))),
        ]);
        let syms = t.symbols();
        assert!(syms.contains(&Symbol::new("a")));
        assert!(syms.contains(&Symbol::new("b")));
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn folding_keeps_rational_constants_exact() {
        let t = Term::add(vec![
            Term::constant(ratio(1, 3)),
            Term::constant(ratio(1, 6)),
        ]);
        assert_eq!(t, Term::constant(ratio(1, 2)));
        assert_eq!(rat(5), Term::int(5).as_constant().unwrap());
    }
}
