//! Multivariate polynomials over ℚ.
//!
//! A *relational expression* in the paper (§3) is a polynomial over the
//! program variables `Var ∪ Var'`; candidate bounded terms, recurrence
//! right-hand sides, and closed forms are all represented with
//! [`Polynomial`].
//!
//! Both [`Monomial`] and [`Polynomial`] store their entries as vectors kept
//! sorted by the interned-[`Symbol`] order: with integer symbol ids the
//! comparisons behind every merge and lookup are single integer compares, and
//! the flat layout keeps term traversal cache-friendly (the previous
//! `BTreeMap<Symbol, _>` representation paid a pointer chase and a string
//! compare per node).

use crate::linear::LinearExpr;
use crate::merge::merge_sorted;
use crate::symbol::Symbol;
use chora_numeric::{BigInt, BigRational, SmallVec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Power-product storage: monomials in real programs rarely involve more
/// than three variables, so they live inline (no heap allocation).
type Powers = SmallVec<(Symbol, u32), 3>;

/// A power product of symbols, e.g. `x^2·y` (the empty monomial is `1`).
///
/// Invariant: entries are sorted by symbol and exponents are positive.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(Powers);

impl Monomial {
    /// The unit monomial `1`.
    pub fn one() -> Monomial {
        Monomial(Powers::new())
    }

    /// The monomial consisting of a single variable.
    pub fn var(s: Symbol) -> Monomial {
        let mut powers = Powers::new();
        powers.push((s, 1));
        Monomial(powers)
    }

    /// Builds a monomial from `(symbol, exponent)` pairs; zero exponents are
    /// dropped.
    pub fn from_powers(powers: impl IntoIterator<Item = (Symbol, u32)>) -> Monomial {
        let mut entries: Powers = powers.into_iter().filter(|(_, e)| *e > 0).collect();
        entries.sort_by_key(|(s, _)| *s);
        let mut merged = Powers::new();
        for &(s, e) in entries.as_slice() {
            match merged.last_mut() {
                Some((prev, acc)) if *prev == s => *acc += e,
                _ => merged.push((s, e)),
            }
        }
        Monomial(merged)
    }

    /// Whether this is the unit monomial.
    pub fn is_one(&self) -> bool {
        self.0.is_empty()
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.0.iter().map(|(_, e)| e).sum()
    }

    /// Exponent of `s` in this monomial.
    pub fn exponent(&self, s: &Symbol) -> u32 {
        match self.0.binary_search_by_key(s, |(sym, _)| *sym) {
            Ok(i) => self.0[i].1,
            Err(_) => 0,
        }
    }

    /// Iterator over `(symbol, exponent)` pairs.
    pub fn powers(&self) -> impl Iterator<Item = (&Symbol, u32)> {
        self.0.iter().map(|(s, e)| (s, *e))
    }

    /// The set of symbols occurring in the monomial.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        self.0.iter().map(|(s, _)| *s).collect()
    }

    /// Product of two monomials (a sorted merge; exponents add, and never
    /// cancel since both sides are positive).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial(merge_sorted(&self.0, &other.0, |e| *e, |x, y| Some(x + y)))
    }

    /// Whether the monomial is linear (a single variable to the first power)
    /// or constant.
    pub fn is_linear(&self) -> bool {
        self.degree() <= 1
    }

    /// The powers with resolved names, in name order — the canonical key used
    /// wherever output must not depend on interner assignment order.
    fn named_powers(&self) -> Vec<(String, u32)> {
        let mut named: Vec<(String, u32)> =
            self.0.iter().map(|(s, e)| (s.to_string(), *e)).collect();
        named.sort();
        named
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        for (i, (name, e)) in self.named_powers().iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *e == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{name}^{e}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A multivariate polynomial with rational coefficients.
///
/// ```
/// use chora_expr::{Polynomial, Symbol};
/// use chora_numeric::rat;
/// let x = Polynomial::var(Symbol::new("x"));
/// let p = &(&x * &x) + &Polynomial::constant(rat(1)); // x^2 + 1
/// assert_eq!(p.to_string(), "x^2 + 1");
/// assert_eq!(p.degree(), 2);
/// ```
/// Term storage: the constraint polynomials the analysis juggles are mostly
/// one or two terms, which stay inline.
type Terms = SmallVec<(Monomial, BigRational), 2>;

#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    /// Invariant: sorted by monomial, no zero coefficients stored.
    terms: Terms,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial {
            terms: Terms::new(),
        }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Polynomial {
        Polynomial::constant(BigRational::one())
    }

    /// A constant polynomial.
    pub fn constant(c: BigRational) -> Polynomial {
        let mut terms = Terms::new();
        if !c.is_zero() {
            terms.push((Monomial::one(), c));
        }
        Polynomial { terms }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(s: Symbol) -> Polynomial {
        let mut terms = Terms::new();
        terms.push((Monomial::var(s), BigRational::one()));
        Polynomial { terms }
    }

    /// A single term `c·m`.
    pub fn term(c: BigRational, m: Monomial) -> Polynomial {
        let mut terms = Terms::new();
        if !c.is_zero() {
            terms.push((m, c));
        }
        Polynomial { terms }
    }

    /// Builds a polynomial from `(coefficient, monomial)` pairs.
    pub fn from_terms(iter: impl IntoIterator<Item = (BigRational, Monomial)>) -> Polynomial {
        let mut p = Polynomial::zero();
        for (c, m) in iter {
            p.add_term(&c, &m);
        }
        p
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|(m, _)| m.is_one())
    }

    /// Returns the constant value if the polynomial is constant.
    pub fn as_constant(&self) -> Option<BigRational> {
        if self.is_constant() {
            Some(self.constant_term())
        } else {
            None
        }
    }

    /// The coefficient of the unit monomial.
    pub fn constant_term(&self) -> BigRational {
        self.coefficient(&Monomial::one())
    }

    /// The coefficient of an arbitrary monomial.
    pub fn coefficient(&self, m: &Monomial) -> BigRational {
        match self.terms.binary_search_by(|(tm, _)| tm.cmp(m)) {
            Ok(i) => self.terms[i].1.clone(),
            Err(_) => BigRational::zero(),
        }
    }

    /// Iterator over `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &BigRational)> {
        self.terms.iter().map(|(m, c)| (m, c))
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the polynomial has no terms (i.e. is zero).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for constants and for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.degree())
            .max()
            .unwrap_or(0)
    }

    /// Degree in a specific symbol.
    pub fn degree_in(&self, s: &Symbol) -> u32 {
        self.terms
            .iter()
            .map(|(m, _)| m.exponent(s))
            .max()
            .unwrap_or(0)
    }

    /// All symbols occurring in the polynomial.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut set = BTreeSet::new();
        for (m, _) in &self.terms {
            set.extend(m.symbols());
        }
        set
    }

    /// Whether every monomial has degree ≤ 1.
    pub fn is_linear(&self) -> bool {
        self.terms.iter().all(|(m, _)| m.is_linear())
    }

    /// Converts to a linear expression if the polynomial is linear.
    pub fn as_linear(&self) -> Option<LinearExpr> {
        if !self.is_linear() {
            return None;
        }
        let mut lin = LinearExpr::constant(self.constant_term());
        for (m, c) in &self.terms {
            if m.is_one() {
                continue;
            }
            let (sym, _) = m.powers().next().expect("non-unit monomial has a symbol");
            lin.add_coefficient(*sym, c.clone());
        }
        Some(lin)
    }

    fn add_term(&mut self, c: &BigRational, m: &Monomial) {
        if c.is_zero() {
            return;
        }
        match self.terms.binary_search_by(|(tm, _)| tm.cmp(m)) {
            Ok(i) => {
                self.terms[i].1 += c;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (m.clone(), c.clone())),
        }
    }

    /// Multiplies the polynomial by a scalar.
    pub fn scale(&self, c: &BigRational) -> Polynomial {
        if c.is_zero() {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self.terms.iter().map(|(m, k)| (m.clone(), k * c)).collect(),
        }
    }

    /// Raises the polynomial to a non-negative integer power.
    pub fn pow(&self, e: u32) -> Polynomial {
        let mut acc = Polynomial::one();
        for _ in 0..e {
            acc = &acc * self;
        }
        acc
    }

    /// Substitutes a polynomial for a symbol.
    pub fn substitute(&self, s: &Symbol, replacement: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let e = m.exponent(s);
            if e == 0 {
                out.add_term(c, m);
                continue;
            }
            let rest = Monomial::from_powers(
                m.powers()
                    .filter(|(sym, _)| *sym != s)
                    .map(|(sym, k)| (*sym, k)),
            );
            let expanded = replacement.pow(e);
            for (m2, c2) in &expanded.terms {
                out.add_term(&(c * c2), &rest.mul(m2));
            }
        }
        out
    }

    /// Simultaneously renames symbols according to `f`.
    pub fn rename(&self, f: &mut impl FnMut(&Symbol) -> Symbol) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let renamed = Monomial::from_powers(m.powers().map(|(s, e)| (f(s), e)));
            out.add_term(c, &renamed);
        }
        out
    }

    /// Evaluates the polynomial with the given assignment.
    ///
    /// Returns `None` if some symbol is missing from the assignment.
    pub fn eval(&self, assignment: &BTreeMap<Symbol, BigRational>) -> Option<BigRational> {
        let mut acc = BigRational::zero();
        for (m, c) in &self.terms {
            let mut term = c.clone();
            for (s, e) in m.powers() {
                let v = assignment.get(s)?;
                term = &term * &v.pow(e as i32);
            }
            acc += &term;
        }
        Some(acc)
    }

    /// Evaluates a univariate polynomial at an integer point.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial mentions a symbol other than `s`.
    pub fn eval_univariate(&self, s: &Symbol, x: &BigRational) -> BigRational {
        let mut assignment = BTreeMap::new();
        assignment.insert(*s, x.clone());
        for sym in self.symbols() {
            assert_eq!(&sym, s, "eval_univariate: unexpected symbol {sym}");
        }
        self.eval(&assignment)
            .expect("assignment covers the only symbol")
    }

    /// Clears denominators: returns `(k, p)` with `k > 0` integer such that
    /// `k·self = p` and `p` has integer coefficients.
    pub fn clear_denominators(&self) -> (BigInt, Polynomial) {
        let mut lcm = BigInt::one();
        for (_, c) in &self.terms {
            lcm = lcm.lcm(c.denom());
        }
        let k = BigRational::from_integer(lcm.clone());
        (lcm, self.scale(&k))
    }
}

/// Linear merge of two sorted term lists; `negate_right` turns the merge
/// into a subtraction.  (Inserting term-by-term through `add_term` would
/// cost a mid-`Vec` memmove per term.)
fn merge_terms(a: &Polynomial, b: &Polynomial, negate_right: bool) -> Polynomial {
    let signed = |c: &BigRational| if negate_right { -c.clone() } else { c.clone() };
    Polynomial {
        terms: merge_sorted(
            &a.terms,
            &b.terms,
            |c| signed(c),
            |x, y| {
                let sum = x + &signed(y);
                (!sum.is_zero()).then_some(sum)
            },
        ),
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, other: &Polynomial) -> Polynomial {
        merge_terms(self, other, false)
    }
}

impl Add for Polynomial {
    type Output = Polynomial;
    fn add(self, other: Polynomial) -> Polynomial {
        &self + &other
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, other: &Polynomial) -> Polynomial {
        merge_terms(self, other, true)
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;
    fn sub(self, other: Polynomial) -> Polynomial {
        &self - &other
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.scale(&-BigRational::one())
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        -&self
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, other: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                out.add_term(&(c1 * c2), &m1.mul(m2));
            }
        }
        out
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;
    fn mul(self, other: Polynomial) -> Polynomial {
        &self * &other
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Display highest-degree terms first, then in name order — stable no
        // matter in which order the process happened to intern the symbols.
        let mut terms: Vec<(&Monomial, &BigRational)> = self.terms().collect();
        terms.sort_by_cached_key(|(m, _)| (std::cmp::Reverse(m.degree()), m.named_powers()));
        let mut first = true;
        for (m, c) in terms {
            let (sign, mag) = if c.is_negative() {
                ("-", c.abs())
            } else {
                ("+", c.clone())
            };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if m.is_one() {
                write!(f, "{mag}")?;
            } else if mag.is_one() {
                write!(f, "{m}")?;
            } else {
                write!(f, "{mag}·{m}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<LinearExpr> for Polynomial {
    fn from(lin: LinearExpr) -> Polynomial {
        let mut p = Polynomial::constant(lin.constant_term().clone());
        for (s, c) in lin.coefficients() {
            p.add_term(c, &Monomial::var(*s));
        }
        p
    }
}

impl From<&LinearExpr> for Polynomial {
    fn from(lin: &LinearExpr) -> Polynomial {
        Polynomial::from(lin.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::rat;

    fn x() -> Polynomial {
        Polynomial::var(Symbol::new("x"))
    }
    fn y() -> Polynomial {
        Polynomial::var(Symbol::new("y"))
    }

    #[test]
    fn arithmetic_and_display() {
        let p = &(&x() * &x()) + &(&y().scale(&rat(2)) + &Polynomial::constant(rat(-3)));
        assert_eq!(p.to_string(), "x^2 + 2·y - 3");
        assert_eq!(p.degree(), 2);
        assert_eq!(p.degree_in(&Symbol::new("x")), 2);
        assert_eq!(p.degree_in(&Symbol::new("y")), 1);
        let q = &p - &p;
        assert!(q.is_zero());
        assert_eq!(q.to_string(), "0");
    }

    #[test]
    fn cancellation_removes_terms() {
        let p = &x() + &(-&x());
        assert!(p.is_zero());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn multiplication_expands() {
        // (x + 1)(x - 1) = x^2 - 1
        let p = &(&x() + &Polynomial::one()) * &(&x() - &Polynomial::one());
        assert_eq!(p.to_string(), "x^2 - 1");
        assert_eq!(p.coefficient(&Monomial::var(Symbol::new("x"))), rat(0));
    }

    #[test]
    fn substitution() {
        // p = x^2 + y, substitute x := y + 1  ->  y^2 + 3y + 1... check
        let p = &(&x() * &x()) + &y();
        let subst = p.substitute(&Symbol::new("x"), &(&y() + &Polynomial::one()));
        // (y+1)^2 + y = y^2 + 3y + 1
        let expected = &(&(&y() * &y()) + &y().scale(&rat(3))) + &Polynomial::one();
        assert_eq!(subst, expected);
    }

    #[test]
    fn rename_symbols() {
        let p = &x() + &y();
        let renamed = p.rename(&mut |s| Symbol::new(&format!("{s}_r")));
        assert_eq!(renamed.to_string(), "x_r + y_r");
    }

    #[test]
    fn evaluation() {
        let p = &(&x() * &y()) + &Polynomial::constant(rat(5));
        let mut env = BTreeMap::new();
        env.insert(Symbol::new("x"), rat(3));
        env.insert(Symbol::new("y"), rat(-2));
        assert_eq!(p.eval(&env), Some(rat(-1)));
        env.remove(&Symbol::new("y"));
        assert_eq!(p.eval(&env), None);
    }

    #[test]
    fn eval_univariate() {
        let h = Symbol::new("h");
        let p = Polynomial::var(h).pow(2);
        assert_eq!(p.eval_univariate(&h, &rat(4)), rat(16));
    }

    #[test]
    fn linear_conversion() {
        let p = &x().scale(&rat(2)) + &Polynomial::constant(rat(7));
        let lin = p.as_linear().unwrap();
        assert_eq!(lin.coefficient(&Symbol::new("x")), rat(2));
        assert_eq!(lin.constant_term(), &rat(7));
        assert_eq!(Polynomial::from(lin), p);
        let nonlinear = &x() * &x();
        assert!(nonlinear.as_linear().is_none());
    }

    #[test]
    fn constants_and_degree() {
        assert!(Polynomial::zero().is_constant());
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(Polynomial::constant(rat(4)).as_constant(), Some(rat(4)));
        assert_eq!(x().as_constant(), None);
    }

    #[test]
    fn clear_denominators() {
        let p = x().scale(&chora_numeric::ratio(2, 3))
            + Polynomial::constant(chora_numeric::ratio(1, 2));
        let (k, q) = p.clear_denominators();
        assert_eq!(k, chora_numeric::int(6));
        assert_eq!(q.to_string(), "4·x + 3");
    }

    #[test]
    fn pow() {
        let p = &x() + &Polynomial::one();
        assert_eq!(p.pow(0), Polynomial::one());
        assert_eq!(p.pow(2).to_string(), "x^2 + 2·x + 1");
    }

    #[test]
    fn monomial_merge_and_lookup() {
        let m = Monomial::from_powers([
            (Symbol::new("y"), 1),
            (Symbol::new("x"), 1),
            (Symbol::new("x"), 1),
            (Symbol::new("z"), 0),
        ]);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.exponent(&Symbol::new("x")), 2);
        assert_eq!(m.exponent(&Symbol::new("z")), 0);
        assert_eq!(m.to_string(), "x^2·y");
        assert_eq!(
            m.mul(&Monomial::var(Symbol::new("y"))).to_string(),
            "x^2·y^2"
        );
    }
}
