//! Linear expressions `c₀ + Σ cᵢ·xᵢ` over ℚ.
//!
//! The polyhedra domain in `chora-logic` stores every constraint as a linear
//! expression over *dimensions* (which may themselves denote non-linear
//! monomials after linearization), so this type is the work-horse of the
//! symbolic-abstraction layer.  Coefficients live in a vector kept sorted by
//! interned-symbol id: lookups are a binary search over integer keys and
//! addition is a linear merge, both considerably cheaper than the string
//! compares the former `BTreeMap<Symbol, _>` representation paid per node.

use crate::merge::merge_sorted;
use crate::symbol::Symbol;
use chora_numeric::{BigInt, BigRational, SmallVec};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// Coefficient storage: constraint rows in Fourier–Motzkin elimination are
/// almost always over ≤ 4 dimensions, so they live inline (no per-row heap
/// allocation) and only spill for unusually wide expressions.
type Coeffs = SmallVec<(Symbol, BigRational), 4>;

/// An affine expression: a rational constant plus a rational-weighted sum of
/// symbols.
///
/// ```
/// use chora_expr::{LinearExpr, Symbol};
/// use chora_numeric::rat;
/// let e = LinearExpr::var(Symbol::new("x")).scale(&rat(2)) + LinearExpr::constant(rat(1));
/// assert_eq!(e.to_string(), "2·x + 1");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinearExpr {
    /// Invariant: sorted by symbol, no zero coefficients stored.
    coeffs: Coeffs,
    constant: BigRational,
}

impl LinearExpr {
    /// The zero expression.
    pub fn zero() -> LinearExpr {
        LinearExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: BigRational) -> LinearExpr {
        LinearExpr {
            coeffs: Coeffs::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single symbol.
    pub fn var(s: Symbol) -> LinearExpr {
        let mut coeffs = Coeffs::new();
        coeffs.push((s, BigRational::one()));
        LinearExpr {
            coeffs,
            constant: BigRational::zero(),
        }
    }

    /// Builds an expression from coefficient pairs plus a constant.
    pub fn from_parts(
        coeffs: impl IntoIterator<Item = (Symbol, BigRational)>,
        constant: BigRational,
    ) -> LinearExpr {
        let mut e = LinearExpr::constant(constant);
        for (s, c) in coeffs {
            e.add_coefficient(s, c);
        }
        e
    }

    /// Whether the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty() && self.constant.is_zero()
    }

    /// Whether the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The constant part.
    pub fn constant_term(&self) -> &BigRational {
        &self.constant
    }

    /// Coefficient of a symbol (zero if absent).
    pub fn coefficient(&self, s: &Symbol) -> BigRational {
        match self.coeffs.binary_search_by_key(s, |(sym, _)| *sym) {
            Ok(i) => self.coeffs[i].1.clone(),
            Err(_) => BigRational::zero(),
        }
    }

    /// Iterator over `(symbol, coefficient)` pairs with non-zero coefficient.
    pub fn coefficients(&self) -> impl Iterator<Item = (&Symbol, &BigRational)> {
        self.coeffs.iter().map(|(s, c)| (s, c))
    }

    /// Number of symbols with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// The set of symbols with non-zero coefficient.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        self.coeffs.iter().map(|(s, _)| *s).collect()
    }

    /// Adds `c` to the coefficient of `s`.
    pub fn add_coefficient(&mut self, s: Symbol, c: BigRational) {
        if c.is_zero() {
            return;
        }
        match self.coeffs.binary_search_by_key(&s, |(sym, _)| *sym) {
            Ok(i) => {
                self.coeffs[i].1 += &c;
                if self.coeffs[i].1.is_zero() {
                    self.coeffs.remove(i);
                }
            }
            Err(i) => self.coeffs.insert(i, (s, c)),
        }
    }

    /// Adds `c` to the constant part.
    pub fn add_constant(&mut self, c: &BigRational) {
        self.constant += c;
    }

    /// Scales the expression by a rational.
    pub fn scale(&self, c: &BigRational) -> LinearExpr {
        if c.is_zero() {
            return LinearExpr::zero();
        }
        LinearExpr {
            coeffs: self.coeffs.iter().map(|(s, k)| (*s, k * c)).collect(),
            constant: &self.constant * c,
        }
    }

    /// Substitutes a linear expression for a symbol.
    pub fn substitute(&self, s: &Symbol, replacement: &LinearExpr) -> LinearExpr {
        let c = self.coefficient(s);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.retain(|(sym, _)| sym != s);
        &out + &replacement.scale(&c)
    }

    /// Simultaneously renames symbols.
    pub fn rename(&self, f: &mut impl FnMut(&Symbol) -> Symbol) -> LinearExpr {
        let mut out = LinearExpr::constant(self.constant.clone());
        for (s, c) in &self.coeffs {
            out.add_coefficient(f(s), c.clone());
        }
        out
    }

    /// Evaluates with the given assignment (`None` if a symbol is missing).
    pub fn eval(&self, assignment: &BTreeMap<Symbol, BigRational>) -> Option<BigRational> {
        let mut acc = self.constant.clone();
        for (s, c) in &self.coeffs {
            acc += &(c * assignment.get(s)?);
        }
        Some(acc)
    }

    /// Multiplies through by the least common denominator, yielding an
    /// expression with integer coefficients; returns the scale factor used.
    pub fn clear_denominators(&self) -> (BigInt, LinearExpr) {
        let mut lcm = self.constant.denom().clone();
        for (_, c) in &self.coeffs {
            lcm = lcm.lcm(c.denom());
        }
        (lcm.clone(), self.scale(&BigRational::from_integer(lcm)))
    }

    /// Divides all coefficients by their (positive) GCD to obtain a canonical
    /// integer-coefficient representative (no-op for the zero expression).
    pub fn normalize_gcd(&self) -> LinearExpr {
        let (_, int_expr) = self.clear_denominators();
        let mut g = int_expr.constant.numer().abs();
        for (_, c) in &int_expr.coeffs {
            g = g.gcd(c.numer());
        }
        if g.is_zero() || g.is_one() {
            return int_expr;
        }
        int_expr.scale(&BigRational::new(BigInt::one(), g))
    }

    /// Computes `ka·self + kb·other` in a single merge pass.
    ///
    /// This is the Fourier–Motzkin combination step; fusing the two scales
    /// into the merge avoids materializing both scaled rows (two full
    /// allocations per pos×neg pair) just to add them.
    pub fn scaled_sum(&self, ka: &BigRational, other: &LinearExpr, kb: &BigRational) -> LinearExpr {
        let (a, b) = (&self.coeffs, &other.coeffs);
        let mut out = Coeffs::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => {
                    let v = &a[i].1 * ka;
                    if !v.is_zero() {
                        out.push((a[i].0, v));
                    }
                    i += 1;
                }
                Ordering::Greater => {
                    let v = &b[j].1 * kb;
                    if !v.is_zero() {
                        out.push((b[j].0, v));
                    }
                    j += 1;
                }
                Ordering::Equal => {
                    let v = &(&a[i].1 * ka) + &(&b[j].1 * kb);
                    if !v.is_zero() {
                        out.push((a[i].0, v));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for (s, c) in &a[i..] {
            let v = c * ka;
            if !v.is_zero() {
                out.push((*s, v));
            }
        }
        for (s, c) in &b[j..] {
            let v = c * kb;
            if !v.is_zero() {
                out.push((*s, v));
            }
        }
        LinearExpr {
            coeffs: out,
            constant: &(&self.constant * ka) + &(&other.constant * kb),
        }
    }
}

impl Add for &LinearExpr {
    type Output = LinearExpr;
    fn add(self, other: &LinearExpr) -> LinearExpr {
        // Linear merge of the two sorted coefficient lists.
        LinearExpr {
            coeffs: merge_sorted(&self.coeffs, &other.coeffs, Clone::clone, |x, y| {
                let sum = x + y;
                (!sum.is_zero()).then_some(sum)
            }),
            constant: &self.constant + &other.constant,
        }
    }
}

impl Add for LinearExpr {
    type Output = LinearExpr;
    fn add(self, other: LinearExpr) -> LinearExpr {
        &self + &other
    }
}

impl Sub for &LinearExpr {
    type Output = LinearExpr;
    fn sub(self, other: &LinearExpr) -> LinearExpr {
        self + &(-other.clone())
    }
}

impl Sub for LinearExpr {
    type Output = LinearExpr;
    fn sub(self, other: LinearExpr) -> LinearExpr {
        &self - &other
    }
}

impl Neg for LinearExpr {
    type Output = LinearExpr;
    fn neg(self) -> LinearExpr {
        self.scale(&-BigRational::one())
    }
}

impl Neg for &LinearExpr {
    type Output = LinearExpr;
    fn neg(self) -> LinearExpr {
        self.scale(&-BigRational::one())
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Name order, independent of interner assignment order.
        let mut named: Vec<(String, &BigRational)> = self
            .coeffs
            .iter()
            .map(|(s, c)| (s.to_string(), c))
            .collect();
        named.sort_by(|a, b| a.0.cmp(&b.0));
        let mut first = true;
        for (s, c) in named {
            let (sign, mag) = if c.is_negative() {
                ("-", c.abs())
            } else {
                ("+", c.clone())
            };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if mag.is_one() {
                write!(f, "{s}")?;
            } else {
                write!(f, "{mag}·{s}")?;
            }
        }
        if !self.constant.is_zero() || first {
            let (sign, mag) = if self.constant.is_negative() {
                ("-", self.constant.abs())
            } else {
                ("+", self.constant.clone())
            };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
            } else {
                write!(f, " {sign} ")?;
            }
            write!(f, "{mag}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::{rat, ratio};

    fn x() -> Symbol {
        Symbol::new("x")
    }
    fn y() -> Symbol {
        Symbol::new("y")
    }

    #[test]
    fn construction_and_display() {
        let e = LinearExpr::from_parts([(x(), rat(2)), (y(), rat(-1))], rat(3));
        assert_eq!(e.to_string(), "2·x - y + 3");
        assert_eq!(e.coefficient(&x()), rat(2));
        assert_eq!(e.coefficient(&Symbol::new("z")), rat(0));
        assert_eq!(LinearExpr::zero().to_string(), "0");
        assert_eq!(LinearExpr::constant(rat(-4)).to_string(), "-4");
    }

    #[test]
    fn arithmetic() {
        let a = LinearExpr::var(x());
        let b = LinearExpr::var(y());
        let s = &a + &b;
        assert_eq!(s.num_terms(), 2);
        let d = &s - &a;
        assert_eq!(d, b);
        let cancelled = &a - &a;
        assert!(cancelled.is_zero());
    }

    #[test]
    fn substitution() {
        // 2x + y + 1 with x := y - 1  ->  3y - 1
        let e = LinearExpr::from_parts([(x(), rat(2)), (y(), rat(1))], rat(1));
        let replacement = LinearExpr::from_parts([(y(), rat(1))], rat(-1));
        let out = e.substitute(&x(), &replacement);
        assert_eq!(out.to_string(), "3·y - 1");
        // substituting an absent symbol is a no-op
        assert_eq!(e.substitute(&Symbol::new("zz"), &replacement), e);
    }

    #[test]
    fn evaluation() {
        let e = LinearExpr::from_parts([(x(), rat(2)), (y(), rat(-3))], rat(5));
        let mut env = BTreeMap::new();
        env.insert(x(), rat(1));
        env.insert(y(), rat(2));
        assert_eq!(e.eval(&env), Some(rat(1)));
        env.remove(&y());
        assert_eq!(e.eval(&env), None);
    }

    #[test]
    fn normalize() {
        let e = LinearExpr::from_parts([(x(), rat(4)), (y(), rat(6))], rat(-2));
        let n = e.normalize_gcd();
        assert_eq!(n.to_string(), "2·x + 3·y - 1");
        let frac = LinearExpr::from_parts([(x(), ratio(1, 2))], ratio(1, 3));
        let (k, cleared) = frac.clear_denominators();
        assert_eq!(k, chora_numeric::int(6));
        assert_eq!(cleared.to_string(), "3·x + 2");
    }

    #[test]
    fn rename() {
        let e = LinearExpr::from_parts([(x(), rat(1))], rat(0));
        let renamed = e.rename(&mut |s| s.primed());
        assert_eq!(renamed.to_string(), "x'");
    }
}
