//! Interned symbols naming program variables and auxiliary dimensions.
//!
//! A [`Symbol`] is a packed 32-bit identifier.  The analysis uses a handful
//! of naming conventions, all encoded *structurally* in the id space so that
//! classification (`is_post`, `as_bound_at_h`, ...) is a bit operation rather
//! than string parsing, and comparison/hashing is a single integer operation:
//!
//! * `x` — pre-state value of a named program variable ([`Symbol::new`]);
//!   the name itself lives in a process-wide interner,
//! * `x'` — post-state value of a program variable ([`Symbol::post`]),
//! * `ret'` — the procedure return value,
//! * `h` / `D` — the recursion-height parameter and the depth counter of
//!   Alg. 4 ([`Symbol::height`], [`Symbol::depth`]),
//! * `b$k@h` / `b$k@h1` — the hypothetical bounding function `b_k(h)` /
//!   `b_k(h+1)` of Alg. 2 ([`Symbol::bound_at_h`], [`Symbol::bound_at_h1`]),
//! * `$t<scope>_<n>` — fresh existential temporaries drawn from a
//!   per-analysis [`FreshSource`] (never a global counter, so repeated
//!   analyses of the same program are byte-identical),
//! * `$dim<i>` / `$aux<i>` — operation-local dimensions and scratch symbols
//!   used by the polyhedra layer; they are always eliminated before an
//!   operation returns.
//!
//! # Id encoding
//!
//! The three high bits of the `u32` select the [`SymbolKind`]; the remaining
//! 29 bits are the payload (an interner index, a bound index `k`, or a
//! `(scope, serial)` pair for fresh symbols).  The derived integer order is
//! therefore kind-major: named < post < `b_k(h)` < `b_k(h+1)` < `h`/`D` <
//! fresh < dim < aux, with payload order inside each kind.  Because the
//! interner assigns indices in first-interning order, the order of two named
//! symbols is *not* lexicographic; display code that needs name order sorts
//! by resolved names explicitly.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

const TAG_SHIFT: u32 = 29;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
const MAX_PAYLOAD: u32 = PAYLOAD_MASK;

const TAG_NAMED: u32 = 0;
const TAG_POST: u32 = 1;
const TAG_BOUND_H: u32 = 2;
const TAG_BOUND_H1: u32 = 3;
const TAG_SPECIAL: u32 = 4;
const TAG_FRESH: u32 = 5;
const TAG_DIM: u32 = 6;
const TAG_AUX: u32 = 7;

/// Payloads of `TAG_SPECIAL`; chosen to coincide with the pre-interned
/// indices of `"h"` and `"D"` so that priming a special symbol is still a
/// pure bit operation.
const SPECIAL_HEIGHT: u32 = 0;
const SPECIAL_DEPTH: u32 = 1;

/// Fresh symbols carry a 14-bit scope and a 15-bit serial.
const FRESH_SERIAL_BITS: u32 = 15;
const FRESH_SERIAL_MASK: u32 = (1 << FRESH_SERIAL_BITS) - 1;

/// Largest payload index of bound/dimension/scratch symbols (29 bits).
///
/// Exported so code that validates serialized symbols (the summary cache)
/// checks against the real bit layout instead of duplicating it.
pub const MAX_SYMBOL_PAYLOAD: u32 = MAX_PAYLOAD;
/// Largest scope a [`FreshSource`] (or [`Symbol::fresh_at`]) accepts.
pub const MAX_FRESH_SCOPE: u32 = (1 << (TAG_SHIFT - FRESH_SERIAL_BITS)) - 1;
/// Largest serial a fresh symbol can carry.
pub const MAX_FRESH_SERIAL: u32 = FRESH_SERIAL_MASK;

/// The structural classification of a [`Symbol`], decoded from its id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// A named pre-state symbol (program variable, global, `ret`, ...).
    Named,
    /// The post-state (primed) copy of a named symbol.
    Post,
    /// The bounding function `b_k(h)` of Alg. 2.
    BoundAtH(usize),
    /// The bounding function `b_k(h+1)` of Alg. 2.
    BoundAtH1(usize),
    /// The recursion-height parameter `h`.
    Height,
    /// The depth counter `D` of Alg. 4.
    Depth,
    /// A fresh existential temporary from a [`FreshSource`].
    Fresh {
        /// The scope (analysis task) the symbol was created in.
        scope: u32,
        /// The serial number within the scope.
        serial: u32,
    },
    /// An operation-local linearization dimension (polyhedra layer).
    Dimension(u32),
    /// An operation-local scratch symbol (intermediate states, join copies).
    Scratch(u32),
}

/// The process-wide string interner backing named symbols.
///
/// One `RwLock` guards both directions of the mapping, so they can never
/// disagree; reads (the hot path: lookups of known names and `resolve`) all
/// take the shared read lock, and the write lock is only touched when a
/// genuinely new name appears.
struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    /// index -> name.
    names: Vec<Arc<str>>,
    /// name -> index.
    ids: HashMap<Arc<str>, u32>,
}

impl Interner {
    fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self.inner.read().expect("interner lock").ids.get(name) {
            return id;
        }
        let mut inner = self.inner.write().expect("interner lock");
        if let Some(&id) = inner.ids.get(name) {
            return id;
        }
        let id = u32::try_from(inner.names.len()).expect("interner overflow");
        assert!(
            id <= MAX_PAYLOAD,
            "interner overflow: too many symbol names"
        );
        let shared: Arc<str> = Arc::from(name);
        inner.names.push(shared.clone());
        inner.ids.insert(shared, id);
        id
    }

    fn resolve(&self, id: u32) -> Arc<str> {
        self.inner.read().expect("interner lock").names[id as usize].clone()
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let interner = Interner {
            inner: RwLock::new(InternerInner::default()),
        };
        // Pre-intern the well-known names so that (a) `h`/`D` land on the
        // payload values of `TAG_SPECIAL` and (b) no interning happens on the
        // analysis hot paths (important for determinism under `--jobs N`:
        // interner indices are fully assigned before any parallel phase).
        assert_eq!(interner.intern("h"), SPECIAL_HEIGHT);
        assert_eq!(interner.intern("D"), SPECIAL_DEPTH);
        interner.intern("ret");
        interner
    })
}

/// An interned, `Copy`-cheap identifier with a structural [`SymbolKind`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    const fn pack(tag: u32, payload: u32) -> Symbol {
        Symbol((tag << TAG_SHIFT) | payload)
    }

    fn tag(self) -> u32 {
        self.0 >> TAG_SHIFT
    }

    fn payload(self) -> u32 {
        self.0 & PAYLOAD_MASK
    }

    /// A named symbol with an interner index (mapping `h`/`D` to their
    /// structural kinds).
    fn from_name_id(id: u32) -> Symbol {
        match id {
            SPECIAL_HEIGHT | SPECIAL_DEPTH => Symbol::pack(TAG_SPECIAL, id),
            _ => Symbol::pack(TAG_NAMED, id),
        }
    }

    /// Creates (or re-finds) a symbol with the given name.
    ///
    /// The conventional renderings are folded back into their structural
    /// kinds: `"h"`/`"D"` produce [`Symbol::height`]/[`Symbol::depth`], a
    /// trailing `'` produces a post-state symbol, and `"b$k@h"`/`"b$k@h1"`
    /// produce bounding-function symbols.
    pub fn new(name: &str) -> Symbol {
        if let Some(base) = name.strip_suffix('\'') {
            return Symbol::new(base).primed();
        }
        if let Some(rest) = name.strip_prefix("b$") {
            if let Some(k) = rest.strip_suffix("@h1").and_then(|s| s.parse().ok()) {
                return Symbol::bound_at_h1(k);
            }
            if let Some(k) = rest.strip_suffix("@h").and_then(|s| s.parse().ok()) {
                return Symbol::bound_at_h(k);
            }
        }
        Symbol::from_name_id(interner().intern(name))
    }

    /// The post-state ("primed") version of a program variable.
    pub fn post(name: &str) -> Symbol {
        Symbol::new(name).primed()
    }

    /// The symbol denoting the procedure return value in post-state.
    pub fn return_value() -> Symbol {
        Symbol::post("ret")
    }

    /// The symbol used for the recursion-height parameter `h`.
    pub fn height() -> Symbol {
        Symbol::pack(TAG_SPECIAL, SPECIAL_HEIGHT)
    }

    /// The symbol used for the depth counter `D` of Alg. 4.
    pub fn depth() -> Symbol {
        Symbol::pack(TAG_SPECIAL, SPECIAL_DEPTH)
    }

    /// The symbol for the bounding function `b_k` applied at height `h`.
    pub fn bound_at_h(k: usize) -> Symbol {
        let k = u32::try_from(k).expect("bound index overflow");
        assert!(k <= MAX_PAYLOAD, "bound index overflow");
        Symbol::pack(TAG_BOUND_H, k)
    }

    /// The symbol for the bounding function `b_k` applied at height `h+1`.
    pub fn bound_at_h1(k: usize) -> Symbol {
        let k = u32::try_from(k).expect("bound index overflow");
        assert!(k <= MAX_PAYLOAD, "bound index overflow");
        Symbol::pack(TAG_BOUND_H1, k)
    }

    /// The fresh existential symbol with an explicit `(scope, serial)` pair.
    ///
    /// Normal analysis code draws fresh symbols from a [`FreshSource`]; this
    /// constructor exists so persisted summaries (which serialize fresh
    /// symbols by their scope and serial) can be re-materialized exactly.
    ///
    /// # Panics
    ///
    /// Panics if `scope` or `serial` exceed their bit-field ranges.  The
    /// restore path of the summary cache, which must treat out-of-range
    /// values as corruption rather than a crash, goes through the checked
    /// [`Symbol::try_fresh_at`] instead.
    pub fn fresh_at(scope: u32, serial: u32) -> Symbol {
        Symbol::try_fresh_at(scope, serial).expect("fresh scope/serial overflow")
    }

    /// Checked [`Symbol::fresh_at`]: `None` when `scope` or `serial` exceed
    /// their packed bit-field ceilings ([`MAX_FRESH_SCOPE`] /
    /// [`MAX_FRESH_SERIAL`]) instead of panicking.  The summary cache
    /// re-homes restored fresh symbols into the current run's scopes with
    /// this, turning an impossible restore into an eviction, not a crash.
    pub fn try_fresh_at(scope: u32, serial: u32) -> Option<Symbol> {
        (scope <= MAX_FRESH_SCOPE && serial <= FRESH_SERIAL_MASK)
            .then(|| Symbol::pack(TAG_FRESH, (scope << FRESH_SERIAL_BITS) | serial))
    }

    /// An operation-local linearization dimension (for the polyhedra layer).
    ///
    /// Dimension symbols must never escape the operation that allocated them;
    /// callers are responsible for eliminating them before returning.
    pub fn dimension(i: u32) -> Symbol {
        assert!(i <= MAX_PAYLOAD, "dimension index overflow");
        Symbol::pack(TAG_DIM, i)
    }

    /// An operation-local scratch symbol (intermediate-state copies in
    /// relational composition, the `λ`/`z` variables of Balas joins).
    ///
    /// Like dimensions, scratch symbols must be eliminated before the
    /// allocating operation returns.
    pub fn scratch(i: u32) -> Symbol {
        assert!(i <= MAX_PAYLOAD, "scratch index overflow");
        Symbol::pack(TAG_AUX, i)
    }

    /// The structural kind of this symbol.
    pub fn kind(self) -> SymbolKind {
        let payload = self.payload();
        match self.tag() {
            TAG_NAMED => SymbolKind::Named,
            TAG_POST => SymbolKind::Post,
            TAG_BOUND_H => SymbolKind::BoundAtH(payload as usize),
            TAG_BOUND_H1 => SymbolKind::BoundAtH1(payload as usize),
            TAG_SPECIAL if payload == SPECIAL_HEIGHT => SymbolKind::Height,
            TAG_SPECIAL => SymbolKind::Depth,
            TAG_FRESH => SymbolKind::Fresh {
                scope: payload >> FRESH_SERIAL_BITS,
                serial: payload & FRESH_SERIAL_MASK,
            },
            TAG_DIM => SymbolKind::Dimension(payload),
            _ => SymbolKind::Scratch(payload),
        }
    }

    /// Returns `Some(k)` if this symbol is `b_k(h)`.
    pub fn as_bound_at_h(&self) -> Option<usize> {
        (self.tag() == TAG_BOUND_H).then(|| self.payload() as usize)
    }

    /// Returns `Some(k)` if this symbol is `b_k(h+1)`.
    pub fn as_bound_at_h1(&self) -> Option<usize> {
        (self.tag() == TAG_BOUND_H1).then(|| self.payload() as usize)
    }

    /// Whether this is a post-state (primed) symbol.
    pub fn is_post(&self) -> bool {
        self.tag() == TAG_POST
    }

    /// For a post-state symbol `x'`, returns the pre-state symbol `x`.
    pub fn unprimed(&self) -> Symbol {
        if self.is_post() {
            Symbol::from_name_id(self.payload())
        } else {
            *self
        }
    }

    /// For a pre-state symbol `x`, returns the post-state symbol `x'`.
    ///
    /// # Panics
    ///
    /// Panics on structural symbols that have no post-state (bounding
    /// functions, fresh temporaries, dimensions, scratch symbols).
    pub fn primed(&self) -> Symbol {
        match self.tag() {
            TAG_NAMED | TAG_SPECIAL => Symbol::pack(TAG_POST, self.payload()),
            TAG_POST => *self,
            _ => panic!("symbol {self} has no post-state version"),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let payload = self.payload();
        match self.tag() {
            TAG_NAMED => write!(f, "{}", interner().resolve(payload)),
            TAG_POST => write!(f, "{}'", interner().resolve(payload)),
            TAG_BOUND_H => write!(f, "b${payload}@h"),
            TAG_BOUND_H1 => write!(f, "b${payload}@h1"),
            TAG_SPECIAL if payload == SPECIAL_HEIGHT => write!(f, "h"),
            TAG_SPECIAL => write!(f, "D"),
            TAG_FRESH => write!(
                f,
                "$t{}_{}",
                payload >> FRESH_SERIAL_BITS,
                payload & FRESH_SERIAL_MASK
            ),
            TAG_DIM => write!(f, "$dim{payload}"),
            _ => write!(f, "$aux{payload}"),
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

/// A deterministic source of fresh existential symbols.
///
/// Every analysis task (one SCC summarization, one assertion-checking pass)
/// owns a `FreshSource` with a distinct `scope`; serials restart at zero per
/// source.  Fresh symbols from different scopes can therefore never collide,
/// while repeated runs of the same analysis — sequential or parallel —
/// produce bit-identical symbols (the old implementation drew from a global
/// `AtomicU64`, which made output depend on process history).
#[derive(Debug, Default)]
pub struct FreshSource {
    scope: u32,
    next: AtomicU32,
}

impl FreshSource {
    /// A fresh-symbol source for the given scope.
    ///
    /// # Panics
    ///
    /// Panics if `scope` exceeds the 14-bit scope space.
    pub fn new(scope: u32) -> FreshSource {
        assert!(scope <= MAX_FRESH_SCOPE, "fresh scope overflow");
        FreshSource {
            scope,
            next: AtomicU32::new(0),
        }
    }

    /// The scope identifier of this source.
    pub fn scope(&self) -> u32 {
        self.scope
    }

    /// The next fresh symbol of this source.
    pub fn fresh(&self) -> Symbol {
        let serial = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(serial <= FRESH_SERIAL_MASK, "fresh serial overflow");
        Symbol::pack(TAG_FRESH, (self.scope << FRESH_SERIAL_BITS) | serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primed_round_trip() {
        let x = Symbol::new("x");
        let xp = x.primed();
        assert!(xp.is_post());
        assert!(!x.is_post());
        assert_eq!(xp.unprimed(), x);
        assert_eq!(xp.to_string(), "x'");
        assert_eq!(xp.primed(), xp);
        assert_eq!(x.unprimed(), x);
        assert_eq!(Symbol::new("x'"), xp);
    }

    #[test]
    fn bound_symbols() {
        let b3 = Symbol::bound_at_h(3);
        assert_eq!(b3.as_bound_at_h(), Some(3));
        assert_eq!(b3.as_bound_at_h1(), None);
        assert_eq!(b3.to_string(), "b$3@h");
        let b3h1 = Symbol::bound_at_h1(3);
        assert_eq!(b3h1.as_bound_at_h1(), Some(3));
        assert_eq!(b3h1.as_bound_at_h(), None);
        assert_eq!(b3h1.to_string(), "b$3@h1");
        assert_eq!(Symbol::new("x").as_bound_at_h(), None);
        assert_eq!(Symbol::new("b$3@h"), b3);
        assert_eq!(Symbol::new("b$3@h1"), b3h1);
    }

    #[test]
    fn fresh_symbols_are_scoped_and_deterministic() {
        let src = FreshSource::new(7);
        let a = src.fresh();
        let b = src.fresh();
        assert_ne!(a, b);
        assert_eq!(
            a.kind(),
            SymbolKind::Fresh {
                scope: 7,
                serial: 0
            }
        );
        assert_eq!(
            b.kind(),
            SymbolKind::Fresh {
                scope: 7,
                serial: 1
            }
        );
        // Same scope, fresh source: identical symbols (determinism).
        let again = FreshSource::new(7);
        assert_eq!(again.fresh(), a);
        // Different scope: disjoint symbols.
        assert_ne!(FreshSource::new(8).fresh(), a);
    }

    #[test]
    fn try_fresh_at_is_checked_and_serial_preserving() {
        let s = FreshSource::new(3);
        let _ = s.fresh();
        let sym = s.fresh(); // scope 3, serial 1
        assert_eq!(Symbol::try_fresh_at(9, 1), Some(Symbol::fresh_at(9, 1)));
        assert_eq!(Symbol::try_fresh_at(3, 1), Some(sym));
        assert_eq!(
            Symbol::try_fresh_at(MAX_FRESH_SCOPE + 1, 1),
            None,
            "over-ceiling scopes must fail, not panic"
        );
        assert_eq!(Symbol::try_fresh_at(0, MAX_FRESH_SERIAL + 1), None);
        assert_eq!(Symbol::try_fresh_at(2, 5), Some(Symbol::fresh_at(2, 5)));
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(Symbol::return_value().to_string(), "ret'");
        assert_eq!(Symbol::height().to_string(), "h");
        assert_eq!(Symbol::depth().to_string(), "D");
        assert_eq!(Symbol::new("h"), Symbol::height());
        assert_eq!(Symbol::new("D"), Symbol::depth());
        assert_eq!(Symbol::new("h'").unprimed(), Symbol::height());
    }

    #[test]
    fn kinds_are_structural() {
        assert_eq!(Symbol::new("x").kind(), SymbolKind::Named);
        assert_eq!(Symbol::post("x").kind(), SymbolKind::Post);
        assert_eq!(Symbol::bound_at_h(2).kind(), SymbolKind::BoundAtH(2));
        assert_eq!(Symbol::bound_at_h1(2).kind(), SymbolKind::BoundAtH1(2));
        assert_eq!(Symbol::height().kind(), SymbolKind::Height);
        assert_eq!(Symbol::depth().kind(), SymbolKind::Depth);
        assert_eq!(Symbol::dimension(4).kind(), SymbolKind::Dimension(4));
        assert_eq!(Symbol::scratch(9).kind(), SymbolKind::Scratch(9));
    }

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Symbol::new("some_var"), Symbol::new("some_var"));
        assert_ne!(Symbol::new("some_var"), Symbol::new("some_var2"));
        assert_eq!(Symbol::new("some_var").to_string(), "some_var");
    }

    #[test]
    fn order_is_kind_major() {
        assert!(Symbol::new("zz") < Symbol::post("aa"));
        assert!(Symbol::post("zz") < Symbol::bound_at_h(0));
        assert!(Symbol::bound_at_h(5) < Symbol::bound_at_h1(0));
        assert!(Symbol::bound_at_h(1) < Symbol::bound_at_h(2));
        assert!(Symbol::bound_at_h1(9) < Symbol::height());
        assert!(Symbol::height() < Symbol::depth());
        assert!(Symbol::depth() < FreshSource::new(0).fresh());
        assert!(FreshSource::new(0).fresh() < Symbol::dimension(0));
        assert!(Symbol::dimension(7) < Symbol::scratch(0));
    }
}
