//! Interned-ish symbols naming program variables and auxiliary dimensions.
//!
//! A [`Symbol`] is a cheaply-cloneable immutable string.  The analysis uses a
//! handful of naming conventions, all funneled through constructors here so
//! the rest of the code never manipulates raw strings:
//!
//! * `x` — pre-state value of program variable `x`
//! * `x'` — post-state value of program variable `x` ([`Symbol::post`])
//! * `ret'` — the procedure return value
//! * `b$k@h` / `b$k@h1` — the hypothetical bounding function `b_k(h)` /
//!   `b_k(h+1)` of Alg. 2 ([`Symbol::bound_at_h`], [`Symbol::bound_at_h1`])
//! * `$tmp<n>` — fresh existential temporaries

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, cheaply cloneable identifier.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Symbol {
    /// Creates a symbol with the given name.
    pub fn new(name: &str) -> Symbol {
        Symbol(Arc::from(name))
    }

    /// The post-state ("primed") version of a program variable.
    pub fn post(name: &str) -> Symbol {
        Symbol(Arc::from(format!("{name}'").as_str()))
    }

    /// The symbol denoting the procedure return value in post-state.
    pub fn return_value() -> Symbol {
        Symbol::post("ret")
    }

    /// The symbol used for the recursion-height parameter `h`.
    pub fn height() -> Symbol {
        Symbol::new("h")
    }

    /// The symbol used for the depth counter `D` of Alg. 4.
    pub fn depth() -> Symbol {
        Symbol::new("D")
    }

    /// The symbol for the bounding function `b_k` applied at height `h`.
    pub fn bound_at_h(k: usize) -> Symbol {
        Symbol::new(&format!("b${k}@h"))
    }

    /// The symbol for the bounding function `b_k` applied at height `h+1`.
    pub fn bound_at_h1(k: usize) -> Symbol {
        Symbol::new(&format!("b${k}@h1"))
    }

    /// Returns `Some(k)` if this symbol is `b_k(h)`.
    pub fn as_bound_at_h(&self) -> Option<usize> {
        let s = self.as_str();
        let rest = s.strip_prefix("b$")?;
        let idx = rest.strip_suffix("@h")?;
        idx.parse().ok()
    }

    /// Returns `Some(k)` if this symbol is `b_k(h+1)`.
    pub fn as_bound_at_h1(&self) -> Option<usize> {
        let s = self.as_str();
        let rest = s.strip_prefix("b$")?;
        let idx = rest.strip_suffix("@h1")?;
        idx.parse().ok()
    }

    /// A globally fresh symbol with the given prefix.
    pub fn fresh(prefix: &str) -> Symbol {
        let id = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        Symbol::new(&format!("${prefix}{id}"))
    }

    /// Whether this is a post-state (primed) symbol.
    pub fn is_post(&self) -> bool {
        self.0.ends_with('\'')
    }

    /// For a post-state symbol `x'`, returns the pre-state symbol `x`.
    pub fn unprimed(&self) -> Symbol {
        if self.is_post() {
            Symbol::new(&self.0[..self.0.len() - 1])
        } else {
            self.clone()
        }
    }

    /// For a pre-state symbol `x`, returns the post-state symbol `x'`.
    pub fn primed(&self) -> Symbol {
        if self.is_post() {
            self.clone()
        } else {
            Symbol::post(&self.0)
        }
    }

    /// The symbol's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primed_round_trip() {
        let x = Symbol::new("x");
        let xp = x.primed();
        assert!(xp.is_post());
        assert!(!x.is_post());
        assert_eq!(xp.unprimed(), x);
        assert_eq!(xp.to_string(), "x'");
        assert_eq!(xp.primed(), xp);
        assert_eq!(x.unprimed(), x);
    }

    #[test]
    fn bound_symbols() {
        let b3 = Symbol::bound_at_h(3);
        assert_eq!(b3.as_bound_at_h(), Some(3));
        assert_eq!(b3.as_bound_at_h1(), None);
        let b3h1 = Symbol::bound_at_h1(3);
        assert_eq!(b3h1.as_bound_at_h1(), Some(3));
        assert_eq!(b3h1.as_bound_at_h(), None);
        assert_eq!(Symbol::new("x").as_bound_at_h(), None);
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let a = Symbol::fresh("t");
        let b = Symbol::fresh("t");
        assert_ne!(a, b);
    }

    #[test]
    fn well_known_symbols() {
        assert_eq!(Symbol::return_value().to_string(), "ret'");
        assert_eq!(Symbol::height().to_string(), "h");
        assert_eq!(Symbol::depth().to_string(), "D");
    }
}
