//! The one sorted-merge loop behind every flat-map representation in this
//! crate ([`crate::Monomial`], [`crate::Polynomial`], [`crate::LinearExpr`]).
//!
//! Keeping the two-pointer walk in a single place means the sorted-key /
//! no-dropped-entry invariants that the binary-search lookups rely on are
//! maintained by exactly one piece of code.

use std::cmp::Ordering;

/// Merges two key-sorted slices into a new key-sorted container (`Vec` or
/// `SmallVec` — whatever the caller's storage type is).
///
/// Entries only in `a` are cloned; entries only in `b` go through
/// `map_right` (e.g. negation for subtraction); equal keys are fused with
/// `combine`, which may return `None` to drop the entry (e.g. coefficients
/// cancelling to zero).
pub(crate) fn merge_sorted<K, V, C>(
    a: &[(K, V)],
    b: &[(K, V)],
    map_right: impl Fn(&V) -> V,
    combine: impl Fn(&V, &V) -> Option<V>,
) -> C
where
    K: Ord + Clone,
    V: Clone,
    C: Default + Extend<(K, V)>,
{
    let mut out = C::default();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            Ordering::Less => {
                out.extend(Some(a[i].clone()));
                i += 1;
            }
            Ordering::Greater => {
                out.extend(Some((b[j].0.clone(), map_right(&b[j].1))));
                j += 1;
            }
            Ordering::Equal => {
                if let Some(v) = combine(&a[i].1, &b[j].1) {
                    out.extend(Some((a[i].0.clone(), v)));
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(a[i..].iter().cloned());
    out.extend(b[j..].iter().map(|(k, v)| (k.clone(), map_right(v))));
    out
}
