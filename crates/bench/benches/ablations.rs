//! Ablation study (this reproduction's addition): how the analysis degrades
//! when individual CHORA ingredients are disabled — depth-bound analysis
//! (§4.2) and the polynomial-fact strengthening of summaries — measured on a
//! representative subset of Table 1.

use chora_bench_suite::complexity_suite;
use chora_core::{complexity, AnalysisConfig, Analyzer};
use chora_expr::Symbol;
use criterion::{criterion_group, criterion_main, Criterion};

fn class_with(config: AnalysisConfig, bench: &chora_bench_suite::ComplexityBenchmark) -> String {
    let result = Analyzer::with_config(config).analyze(&bench.program);
    result
        .summary(bench.procedure)
        .map(|s| {
            complexity::table1_row(
                s,
                &Symbol::new(bench.cost_var),
                &Symbol::new(bench.size_param),
            )
            .1
            .to_string()
        })
        .unwrap_or_else(|| "n.b.".to_string())
}

fn ablations(c: &mut Criterion) {
    println!("\n=== Ablations: effect of disabling analysis ingredients ===");
    println!(
        "{:<14} {:<16} {:<18} {:<18}",
        "benchmark", "full", "no depth bounds", "no poly facts"
    );
    let subset = ["hanoi", "subset_sum", "mergesort", "karatsuba"];
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for name in subset {
        let bench = complexity_suite::by_name(name).unwrap();
        let full = class_with(AnalysisConfig::default(), &bench);
        let no_depth = class_with(
            AnalysisConfig {
                enable_depth_bounds: false,
                ..AnalysisConfig::default()
            },
            &bench,
        );
        let no_poly = class_with(
            AnalysisConfig {
                enable_polynomial_facts: false,
                ..AnalysisConfig::default()
            },
            &bench,
        );
        println!("{:<14} {:<16} {:<18} {:<18}", name, full, no_depth, no_poly);
        group.bench_function(format!("{name}/full"), |b| {
            b.iter(|| Analyzer::new().analyze(std::hint::black_box(&bench.program)))
        });
        group.bench_function(format!("{name}/no-depth"), |b| {
            b.iter(|| {
                Analyzer::with_config(AnalysisConfig {
                    enable_depth_bounds: false,
                    ..AnalysisConfig::default()
                })
                .analyze(std::hint::black_box(&bench.program))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
