//! Regenerates **Table 2**: assertion-checking verdicts and analysis times on
//! the three hand-written non-linearly recursive benchmarks (`quad`,
//! `pow2_overflow`, `height`), for CHORA-rs and the ICRA-style baseline, next
//! to the five-tool verdicts reported in the paper.

use chora_bench_suite::assertion_suite;
use chora_core::{Analyzer, BaselineAnalyzer};
use criterion::{criterion_group, criterion_main, Criterion};

fn table2(c: &mut Criterion) {
    println!("\n=== Table 2: assertion checking (CHORA-rs vs baseline vs paper) ===");
    println!(
        "{:<16} {:<10} {:<10} {:<12} {:<12} {:<8} {:<10} {:<8}",
        "benchmark", "CHORA-rs", "ICRA-rs", "paper CHORA", "paper ICRA", "UA", "UTaipan", "VIAP"
    );
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for bench in assertion_suite::table2() {
        let ours = Analyzer::new().analyze(&bench.program);
        let ours_ok = !ours.assertions.is_empty() && ours.all_assertions_verified();
        let base = BaselineAnalyzer::new().analyze(&bench.program);
        let base_ok = !base.assertions.is_empty() && base.all_assertions_verified();
        let yn = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{:<16} {:<10} {:<10} {:<12} {:<12} {:<8} {:<10} {:<8}",
            bench.name,
            yn(ours_ok),
            yn(base_ok),
            yn(bench.paper_chora),
            yn(bench.paper_icra),
            yn(bench.paper_ua),
            yn(bench.paper_utaipan),
            yn(bench.paper_viap)
        );
        group.bench_function(bench.name, |b| {
            b.iter(|| Analyzer::new().analyze(std::hint::black_box(&bench.program)))
        });
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
