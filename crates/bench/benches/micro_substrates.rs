//! Micro-benchmarks of the substrate layers: exact arithmetic, polyhedral
//! operations, recurrence solving — and the two headline deltas of the
//! interned-symbol refactor:
//!
//! * **string-vs-interned**: the same polynomial workload over the legacy
//!   `Arc<str>`-keyed `BTreeMap` representation (re-implemented locally as
//!   the baseline) and over the interned sorted-`Vec` representation,
//! * **sequential-vs-parallel**: a whole-program analysis with many
//!   independent recursive components, run with `jobs = 1` and `jobs = N`,
//! * **small-vs-heap numeric tower**: the same Fourier–Motzkin elimination
//!   workload on the inline `Small(i64)` fast path and with
//!   `chora_numeric::stats::set_force_heap(true)` (every value limb-vector
//!   allocated — the pre-fast-path baseline), plus the small-path hit /
//!   promotion counters from the `stats` feature,
//! * **algorithmic-vs-naive Fourier–Motzkin**: the same chain projection
//!   through the greedy-ordered, redundancy-pruned engine and through the
//!   preserved fixed-order naive path, plus the dedup / domination / Imbert
//!   counters from `chora_logic`'s `stats` feature.
//!
//! All deltas are measured in wall-clock time and recorded in
//! `target/micro_substrates.json` so CI (the `bench-smoke` job) and humans
//! can track regressions.  Passing `--smoke` runs a single iteration of
//! everything — fast enough to gate every push.

use chora_core::{AnalysisConfig, Analyzer};
use chora_expr::{Monomial, Polynomial, Symbol};
use chora_ir::{Cond, Expr, Procedure, Program, Stmt};
use chora_logic::{Atom, Polyhedron};
use chora_numeric::{rat, BigInt, BigRational};
use chora_recurrence::RecurrenceSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// The legacy representation, reconstructed as a baseline: symbols are shared
// strings compared lexicographically, monomials and polynomials are B-trees
// keyed by them (this is exactly what `chora_expr` looked like before the
// interner).
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct StrSymbol(Arc<str>);

type StrMonomial = BTreeMap<StrSymbol, u32>;
type StrPolynomial = BTreeMap<StrMonomial, BigRational>;

fn str_add_term(p: &mut StrPolynomial, c: &BigRational, m: &StrMonomial) {
    if c.is_zero() {
        return;
    }
    let entry = p.entry(m.clone()).or_insert_with(BigRational::zero);
    *entry += c;
    if entry.is_zero() {
        p.remove(m);
    }
}

fn str_mul(a: &StrPolynomial, b: &StrPolynomial) -> StrPolynomial {
    let mut out = StrPolynomial::new();
    for (m1, c1) in a {
        for (m2, c2) in b {
            let mut m = m1.clone();
            for (s, e) in m2 {
                *m.entry(s.clone()).or_insert(0) += e;
            }
            str_add_term(&mut out, &(c1 * c2), &m);
        }
    }
    out
}

/// The shared workload shape: two dense-ish polynomials over `n` variables,
/// multiplied, then folded into a running sum.  Returns a term count so the
/// optimizer cannot discard the work.
fn string_poly_workload(syms: &[StrSymbol]) -> usize {
    let mut p = StrPolynomial::new();
    let mut q = StrPolynomial::new();
    for (i, s) in syms.iter().enumerate() {
        let mut lin = StrMonomial::new();
        lin.insert(s.clone(), 1);
        str_add_term(&mut p, &rat(i as i64 + 1), &lin);
        let mut quad = StrMonomial::new();
        quad.insert(s.clone(), 1);
        quad.insert(syms[(i + 1) % syms.len()].clone(), 1);
        str_add_term(&mut q, &rat(i as i64 - 3), &quad);
    }
    let prod = str_mul(&p, &q);
    let mut acc = StrPolynomial::new();
    for _ in 0..4 {
        for (m, c) in &prod {
            str_add_term(&mut acc, c, m);
        }
    }
    acc.len()
}

/// The identical workload over the interned sorted-`Vec` representation.
fn interned_poly_workload(syms: &[Symbol]) -> usize {
    let mut p = Polynomial::zero();
    let mut q = Polynomial::zero();
    for (i, s) in syms.iter().enumerate() {
        p = &p + &Polynomial::term(rat(i as i64 + 1), Monomial::var(*s));
        q = &q
            + &Polynomial::term(
                rat(i as i64 - 3),
                Monomial::from_powers([(*s, 1), (syms[(i + 1) % syms.len()], 1)]),
            );
    }
    let prod = &p * &q;
    let mut acc = Polynomial::zero();
    for _ in 0..4 {
        acc = &acc + &prod;
    }
    acc.len()
}

// ---------------------------------------------------------------------------
// Sequential vs. level-parallel driver: many independent recursive SCCs.
// ---------------------------------------------------------------------------

/// A program with `k` independent hanoi-shaped procedures plus a `main`
/// calling all of them: one call-graph level with `k` mutually independent
/// recursive components — the best case for the level scheduler.
fn independent_sccs_program(k: usize) -> Program {
    let mut prog = Program::new();
    prog.add_global("cost");
    let mut main_body = Vec::new();
    for i in 0..k {
        let name = format!("work{i}");
        prog.add_procedure(Procedure::new(
            &name,
            &["n"],
            &[],
            Stmt::seq(vec![
                Stmt::assign("cost", Expr::var("cost").add(Expr::int(1))),
                Stmt::if_then(
                    Cond::gt(Expr::var("n"), Expr::int(0)),
                    Stmt::seq(vec![
                        Stmt::call(&name, vec![Expr::var("n").sub(Expr::int(1))]),
                        Stmt::call(&name, vec![Expr::var("n").sub(Expr::int(1))]),
                    ]),
                ),
            ]),
        ));
        main_body.push(Stmt::call(&name, vec![Expr::var("n")]));
    }
    prog.add_procedure(Procedure::new("main", &["n"], &[], Stmt::seq(main_body)));
    prog
}

fn analyze_with_jobs(program: &Program, jobs: usize) -> usize {
    let analyzer = Analyzer::with_config(AnalysisConfig {
        jobs,
        ..AnalysisConfig::default()
    });
    analyzer.analyze(program).summaries.len()
}

// ---------------------------------------------------------------------------
// Small-vs-heap numeric tower: Fourier–Motzkin chain elimination.
// ---------------------------------------------------------------------------

/// A chain where every variable is bounded above and below (twice each, with
/// distinct slopes) in terms of its predecessor; projecting onto the two
/// endpoints runs Fourier–Motzkin over all the middle variables, composing
/// the bounds.  Coefficients start small and stay small-integer rationals
/// throughout — exactly the regime the inline `Small(i64)` fast path targets.
/// Returns the surviving constraint count so the optimizer cannot discard
/// the work.
fn fm_chain_atoms(syms: &[Symbol]) -> Vec<Atom> {
    let var = |i: usize| Polynomial::var(syms[i]);
    let cst = |v: i64| Polynomial::constant(rat(v));
    let mut atoms = Vec::new();
    for i in 0..syms.len() - 1 {
        let step = i as i64 + 1;
        atoms.push(Atom::le(
            var(i + 1).scale(&rat(3)),
            &var(i).scale(&rat(2)) + &cst(step + 6),
        ));
        atoms.push(Atom::le(
            var(i + 1).scale(&rat(5)),
            &var(i).scale(&rat(4)) + &cst(11),
        ));
        atoms.push(Atom::ge(
            var(i + 1).scale(&rat(2)),
            &var(i) - &cst(step + 2),
        ));
        atoms.push(Atom::ge(
            var(i + 1).scale(&rat(7)),
            &var(i).scale(&rat(3)) - &cst(5),
        ));
    }
    atoms
}

fn fm_chain_workload(syms: &[Symbol]) -> usize {
    let p = Polyhedron::from_atoms(fm_chain_atoms(syms));
    let keep: BTreeSet<Symbol> = [syms[0], syms[syms.len() - 1]].into_iter().collect();
    p.project_onto(&keep).len()
}

/// The same chain projection through the preserved fixed-order,
/// no-redundancy-control Fourier–Motzkin path — the pre-algorithmic
/// baseline the `fm_projection` section compares against.
fn fm_chain_workload_naive(syms: &[Symbol]) -> usize {
    let p = Polyhedron::from_atoms(fm_chain_atoms(syms));
    let keep: BTreeSet<Symbol> = [syms[0], syms[syms.len() - 1]].into_iter().collect();
    p.project_onto_naive(&keep).len()
}

// ---------------------------------------------------------------------------
// Timing + JSON recording
// ---------------------------------------------------------------------------

fn smoke() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Mean wall-clock seconds of `iters` runs of `f` (after one warm-up).
fn time_secs<O>(iters: usize, mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn representation_and_parallelism_deltas() {
    let smoke = smoke();
    let poly_iters = if smoke { 1 } else { 200 };
    let analysis_iters = if smoke { 1 } else { 5 };

    // String vs. interned representation.  Symbols for both sides are built
    // *outside* the timed region, so only the representations themselves are
    // compared (not one-off Arc/interner construction cost).
    let names: Vec<String> = (0..24).map(|i| format!("var_sym_{i}")).collect();
    let str_syms: Vec<StrSymbol> = names
        .iter()
        .map(|n| StrSymbol(Arc::from(n.as_str())))
        .collect();
    let syms: Vec<Symbol> = names.iter().map(|n| Symbol::new(n)).collect();
    let expected = string_poly_workload(&str_syms);
    assert_eq!(
        expected,
        interned_poly_workload(&syms),
        "both representations must compute the same polynomial"
    );
    let string_ns = time_secs(poly_iters, || string_poly_workload(&str_syms)) * 1e9;
    let interned_ns = time_secs(poly_iters, || interned_poly_workload(&syms)) * 1e9;

    // Sequential vs. level-parallel analysis.  On a single-core machine the
    // honest measurement is jobs = 1 (the scheduler then takes the
    // zero-overhead sequential path, and the recorded speedup is ~1.0).
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let program = independent_sccs_program(8);
    let seq_ms = time_secs(analysis_iters, || analyze_with_jobs(&program, 1)) * 1e3;
    let par_ms = time_secs(analysis_iters, || analyze_with_jobs(&program, jobs)) * 1e3;

    // Per-phase breakdown (summarize / solve / check) of one sequential run,
    // and the summary-cache cold-vs-warm delta: the cold run populates a
    // fresh store, the warm runs are then pure cache hits — the headline
    // number of the content-addressed cache.
    let analyzer = Analyzer::with_config(AnalysisConfig {
        jobs: 1,
        ..AnalysisConfig::default()
    });
    let store = chora_core::MemoryStore::new();
    let cold_started = Instant::now();
    let cold_result = analyzer.analyze_with_store(&program, Some(&store));
    let cache_cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;
    let phases = cold_result.timings;
    // The hit counter is captured inside the timed closure (identical for
    // every warm iteration) instead of paying one more full analysis.
    let mut warm_hits = 0;
    let warm_ms = time_secs(analysis_iters, || {
        let result = analyzer.analyze_with_store(&program, Some(&store));
        warm_hits = result.cache.hits;
        result.summaries.len()
    }) * 1e3;

    // Small(i64) fast path vs forced-heap baseline on the FM chain.  The
    // counters are captured over one instrumented run (reset → run →
    // snapshot) so they describe a single workload execution; the forced-heap
    // switch is flipped only around the baseline so everything after it runs
    // on the normal path again.
    let fm_iters = if smoke { 1 } else { 40 };
    let fm_syms: Vec<Symbol> = (0..10).map(|i| Symbol::new(&format!("fm_x{i}"))).collect();
    chora_numeric::stats::reset();
    let fm_constraints = fm_chain_workload(&fm_syms);
    let fm_stats = chora_numeric::stats::snapshot();
    let fm_small_ms = time_secs(fm_iters, || fm_chain_workload(&fm_syms)) * 1e3;
    chora_numeric::stats::set_force_heap(true);
    assert_eq!(
        fm_constraints,
        fm_chain_workload(&fm_syms),
        "both representations must project to the same polyhedron"
    );
    let fm_heap_ms = time_secs(fm_iters, || fm_chain_workload(&fm_syms)) * 1e3;
    chora_numeric::stats::set_force_heap(false);

    // Algorithmic FM (greedy elimination order + dedup / domination /
    // Imbert pruning) vs the preserved fixed-order naive path on the same
    // chain.  The counters are captured over one instrumented pruned run.
    chora_logic::stats::reset();
    let fm_pruned_constraints = fm_chain_workload(&fm_syms);
    let fm_logic_stats = chora_logic::stats::snapshot();
    let fm_naive_constraints = fm_chain_workload_naive(&fm_syms);
    let fm_pruned_ms = time_secs(fm_iters, || fm_chain_workload(&fm_syms)) * 1e3;
    let fm_naive_ms = time_secs(fm_iters, || fm_chain_workload_naive(&fm_syms)) * 1e3;

    // Telemetry overhead on the same FM chain: spans with no session active
    // (one relaxed atomic load each — the always-on cost every analysis now
    // pays, registry counters included) vs under a live recording session
    // (two clock reads plus a mutex push per span).  The first number is
    // the evidence that de-gating the stats counters is free; the second is
    // what `--trace-out` costs while it records.
    let telemetry_off_ms = time_secs(fm_iters, || fm_chain_workload(&fm_syms)) * 1e3;
    let telemetry_session =
        chora_telemetry::trace::start().expect("no other trace session records during the bench");
    let telemetry_on_ms = time_secs(fm_iters, || fm_chain_workload(&fm_syms)) * 1e3;
    let telemetry_spans = telemetry_session.finish().events.len();
    let telemetry_overhead_pct = (telemetry_on_ms / telemetry_off_ms - 1.0) * 100.0;

    let report = format!(
        "{{\n  \"smoke\": {smoke},\n  \"poly_workload\": {{\n    \"string_ns\": {string_ns:.0},\n    \"interned_ns\": {interned_ns:.0},\n    \"interned_speedup\": {:.3}\n  }},\n  \"level_parallel\": {{\n    \"jobs\": {jobs},\n    \"seq_ms\": {seq_ms:.3},\n    \"par_ms\": {par_ms:.3},\n    \"parallel_speedup\": {:.3}\n  }},\n  \"phases\": {{\n    \"summarize_ms\": {:.3},\n    \"solve_ms\": {:.3},\n    \"check_ms\": {:.3}\n  }},\n  \"summary_cache\": {{\n    \"cold_ms\": {cache_cold_ms:.3},\n    \"warm_ms\": {warm_ms:.3},\n    \"warm_speedup\": {:.3},\n    \"warm_hits\": {warm_hits}\n  }},\n  \"numeric\": {{\n    \"fm_constraints\": {fm_constraints},\n    \"fm_small_ms\": {fm_small_ms:.3},\n    \"fm_forced_heap_ms\": {fm_heap_ms:.3},\n    \"fm_small_speedup\": {:.3},\n    \"small_ops\": {},\n    \"heap_ops\": {},\n    \"promotions\": {},\n    \"demotions\": {},\n    \"rational_small_ops\": {},\n    \"rational_heap_ops\": {}\n  }},\n  \"fm_projection\": {{\n    \"pruned_constraints\": {fm_pruned_constraints},\n    \"naive_constraints\": {fm_naive_constraints},\n    \"pruned_ms\": {fm_pruned_ms:.3},\n    \"naive_ms\": {fm_naive_ms:.3},\n    \"algorithmic_speedup\": {:.3},\n    \"rows_generated\": {},\n    \"rows_deduped\": {},\n    \"rows_dominated\": {},\n    \"imbert_skipped\": {},\n    \"early_unsat_exits\": {},\n    \"max_width\": {}\n  }},\n  \"telemetry\": {{\n    \"trace_off_ms\": {telemetry_off_ms:.3},\n    \"trace_on_ms\": {telemetry_on_ms:.3},\n    \"overhead_pct\": {telemetry_overhead_pct:.2},\n    \"spans_recorded\": {telemetry_spans}\n  }}\n}}\n",
        string_ns / interned_ns,
        seq_ms / par_ms,
        phases.summarize_ms,
        phases.solve_ms,
        phases.check_ms,
        cache_cold_ms / warm_ms,
        fm_heap_ms / fm_small_ms,
        fm_stats.small_ops,
        fm_stats.heap_ops,
        fm_stats.promotions,
        fm_stats.demotions,
        fm_stats.rational_small_ops,
        fm_stats.rational_heap_ops,
        fm_naive_ms / fm_pruned_ms,
        fm_logic_stats.rows_generated,
        fm_logic_stats.rows_deduped,
        fm_logic_stats.rows_dominated,
        fm_logic_stats.imbert_skipped,
        fm_logic_stats.early_unsat_exits,
        fm_logic_stats.max_width
    );
    println!("substrate-deltas\n{report}");
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
    let path = std::path::Path::new(&target).join("micro_substrates.json");
    if let Err(e) = std::fs::write(&path, &report) {
        eprintln!(
            "warning: could not record bench JSON at {}: {e}",
            path.display()
        );
    } else {
        println!("recorded {}", path.display());
    }
}

fn micro(c: &mut Criterion) {
    representation_and_parallelism_deltas();
    if smoke() {
        // --smoke: the deltas above already ran one iteration of everything;
        // skip the repeated-sample criterion cases.
        return;
    }
    c.bench_function("bigint/mul-256bit", |b| {
        let x: BigInt =
            "123456789012345678901234567890123456789012345678901234567890123456789012345"
                .parse()
                .unwrap();
        b.iter(|| std::hint::black_box(&x) * std::hint::black_box(&x))
    });
    c.bench_function("bigrational/sum-1000", |b| {
        b.iter(|| {
            let mut acc = BigRational::zero();
            for i in 1..1000i64 {
                acc += &BigRational::new(BigInt::from(1), BigInt::from(i));
            }
            acc
        })
    });
    c.bench_function("polyhedron/hull-join", |b| {
        let x = Polynomial::var(Symbol::new("x"));
        let y = Polynomial::var(Symbol::new("y"));
        let p1 = Polyhedron::from_atoms(vec![
            Atom::ge(x.clone(), Polynomial::constant(rat(0))),
            Atom::le(x.clone(), Polynomial::constant(rat(1))),
            Atom::eq(y.clone(), x.clone()),
        ]);
        let p2 = Polyhedron::from_atoms(vec![
            Atom::ge(x.clone(), Polynomial::constant(rat(5))),
            Atom::le(x.clone(), Polynomial::constant(rat(9))),
            Atom::le(y.clone(), Polynomial::constant(rat(2))),
        ]);
        b.iter(|| std::hint::black_box(&p1).join(std::hint::black_box(&p2)))
    });
    c.bench_function("recurrence/hanoi-solve", |b| {
        b.iter(|| {
            let mut sys = RecurrenceSystem::new();
            let bh = Polynomial::var(Symbol::bound_at_h(1));
            sys.add_equation(1, &bh.scale(&rat(2)) + &Polynomial::constant(rat(1)));
            sys.solve().unwrap()
        })
    });
    c.bench_function("recurrence/mutual-6x6", |b| {
        b.iter(|| {
            let mut sys = RecurrenceSystem::new();
            let b1 = Polynomial::var(Symbol::bound_at_h(1));
            let b2 = Polynomial::var(Symbol::bound_at_h(2));
            sys.add_equation(1, &b2.scale(&rat(18)) + &Polynomial::constant(rat(17)));
            sys.add_equation(2, &b1.scale(&rat(2)) + &Polynomial::constant(rat(1)));
            sys.solve().unwrap()
        })
    });
}

criterion_group!(benches, micro);
criterion_main!(benches);
