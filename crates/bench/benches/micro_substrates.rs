//! Micro-benchmarks of the substrate layers: exact arithmetic, polyhedral
//! operations, and recurrence solving — the building blocks whose cost
//! dominates the analysis time.

use chora_expr::{Polynomial, Symbol};
use chora_logic::{Atom, Polyhedron};
use chora_numeric::{rat, BigInt, BigRational};
use chora_recurrence::RecurrenceSystem;
use criterion::{criterion_group, criterion_main, Criterion};

fn micro(c: &mut Criterion) {
    c.bench_function("bigint/mul-256bit", |b| {
        let x: BigInt =
            "123456789012345678901234567890123456789012345678901234567890123456789012345"
                .parse()
                .unwrap();
        b.iter(|| std::hint::black_box(&x) * std::hint::black_box(&x))
    });
    c.bench_function("bigrational/sum-1000", |b| {
        b.iter(|| {
            let mut acc = BigRational::zero();
            for i in 1..1000i64 {
                acc += &BigRational::new(BigInt::from(1), BigInt::from(i));
            }
            acc
        })
    });
    c.bench_function("polyhedron/hull-join", |b| {
        let x = Polynomial::var(Symbol::new("x"));
        let y = Polynomial::var(Symbol::new("y"));
        let p1 = Polyhedron::from_atoms(vec![
            Atom::ge(x.clone(), Polynomial::constant(rat(0))),
            Atom::le(x.clone(), Polynomial::constant(rat(1))),
            Atom::eq(y.clone(), x.clone()),
        ]);
        let p2 = Polyhedron::from_atoms(vec![
            Atom::ge(x.clone(), Polynomial::constant(rat(5))),
            Atom::le(x.clone(), Polynomial::constant(rat(9))),
            Atom::le(y.clone(), Polynomial::constant(rat(2))),
        ]);
        b.iter(|| std::hint::black_box(&p1).join(std::hint::black_box(&p2)))
    });
    c.bench_function("recurrence/hanoi-solve", |b| {
        b.iter(|| {
            let mut sys = RecurrenceSystem::new();
            let bh = Polynomial::var(Symbol::bound_at_h(1));
            sys.add_equation(1, &bh.scale(&rat(2)) + &Polynomial::constant(rat(1)));
            sys.solve().unwrap()
        })
    });
    c.bench_function("recurrence/mutual-6x6", |b| {
        b.iter(|| {
            let mut sys = RecurrenceSystem::new();
            let b1 = Polynomial::var(Symbol::bound_at_h(1));
            let b2 = Polynomial::var(Symbol::bound_at_h(2));
            sys.add_equation(1, &b2.scale(&rat(18)) + &Polynomial::constant(rat(17)));
            sys.add_equation(2, &b1.scale(&rat(2)) + &Polynomial::constant(rat(1)));
            sys.solve().unwrap()
        })
    });
}

criterion_group!(benches, micro);
criterion_main!(benches);
