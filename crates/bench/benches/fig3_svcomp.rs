//! Regenerates **Figure 3** (the cactus plot over the SV-COMP `recursive`
//! suite): for each benchmark, whether CHORA-rs / the ICRA-style baseline
//! prove the assertions and how long the analysis takes; the per-tool counts
//! reported in the paper (CHORA 8, UA 12, UTaipan 10, VIAP 10 of 17) are
//! printed as reference series so the plot can be redrawn.

use chora_bench_suite::assertion_suite;
use chora_core::{Analyzer, BaselineAnalyzer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn fig3(c: &mut Criterion) {
    println!("\n=== Fig. 3: SV-COMP-recursive-style suite ===");
    println!(
        "{:<18} {:<10} {:<12} {:<10}",
        "benchmark", "CHORA-rs", "time (ms)", "ICRA-rs"
    );
    let mut proved_times: Vec<f64> = Vec::new();
    let mut baseline_proved = 0usize;
    let suite = assertion_suite::svcomp();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for bench in &suite {
        let start = Instant::now();
        let ours = Analyzer::new().analyze(&bench.program);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let ours_ok = !ours.assertions.is_empty() && ours.all_assertions_verified();
        let base = BaselineAnalyzer::new().analyze(&bench.program);
        let base_ok = !base.assertions.is_empty() && base.all_assertions_verified();
        if ours_ok {
            proved_times.push(elapsed);
        }
        if base_ok {
            baseline_proved += 1;
        }
        println!(
            "{:<18} {:<10} {:<12.2} {:<10}",
            bench.name,
            if ours_ok { "proved" } else { "-" },
            elapsed,
            if base_ok { "proved" } else { "-" }
        );
        group.bench_function(bench.name, |b| {
            b.iter(|| Analyzer::new().analyze(std::hint::black_box(&bench.program)))
        });
    }
    group.finish();
    proved_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\ncactus series (CHORA-rs): {} proved of {}",
        proved_times.len(),
        suite.len()
    );
    for (i, t) in proved_times.iter().enumerate() {
        println!("  {} benchmarks within {:.2} ms", i + 1, t);
    }
    println!(
        "cactus series (ICRA-rs baseline): {} proved of {}",
        baseline_proved,
        suite.len()
    );
    println!("reference (paper, of 17 benchmarks): CHORA 8, UA 12, UTaipan 10, VIAP 10, all ≲100s");
}

criterion_group!(benches, fig3);
criterion_main!(benches);
