//! Regenerates **Table 1**: for every complexity benchmark, runs the CHORA-rs
//! analysis (and the ICRA-style baseline), prints the derived bound and
//! asymptotic class next to the values reported in the paper, and measures
//! the analysis time with Criterion.

use chora_bench_suite::complexity_suite;
use chora_core::{complexity, Analyzer, BaselineAnalyzer};
use chora_expr::Symbol;
use criterion::{criterion_group, criterion_main, Criterion};

fn table1(c: &mut Criterion) {
    println!("\n=== Table 1: complexity bounds (CHORA-rs vs ICRA-rs baseline vs paper) ===");
    println!(
        "{:<14} {:<14} {:<16} {:<10} {:<14} {:<10}",
        "benchmark", "actual", "CHORA-rs", "ICRA-rs", "paper CHORA", "paper ICRA"
    );
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for bench in complexity_suite::all() {
        let cost = Symbol::new(bench.cost_var);
        let size = Symbol::new(bench.size_param);
        let ours = Analyzer::new().analyze(&bench.program);
        let ours_class = ours
            .summary(bench.procedure)
            .map(|s| complexity::table1_row(s, &cost, &size).1.to_string())
            .unwrap_or_else(|| "n.b.".to_string());
        let baseline = BaselineAnalyzer::new().analyze(&bench.program);
        let baseline_class = baseline
            .summary(bench.procedure)
            .map(|s| complexity::table1_row(s, &cost, &size).1.to_string())
            .unwrap_or_else(|| "n.b.".to_string());
        println!(
            "{:<14} {:<14} {:<16} {:<10} {:<14} {:<10}",
            bench.name,
            bench.actual,
            ours_class,
            baseline_class,
            bench.paper_chora,
            bench.paper_icra
        );
        group.bench_function(bench.name, |b| {
            b.iter(|| Analyzer::new().analyze(std::hint::black_box(&bench.program)))
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
