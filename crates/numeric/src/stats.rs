//! Small-path instrumentation for the numeric tower.
//!
//! Compiled to no-ops unless the `stats` cargo feature is enabled (the bench
//! harness turns it on): with the feature, every [`crate::BigInt`] operation
//! bumps a relaxed atomic counter recording whether it ran on the inline
//! `i64` fast path or fell through to the limb-vector heap path, and the
//! promote/demote transitions between the two representations are counted.
//!
//! The feature also exposes [`set_force_heap`], a process-wide switch that
//! makes every constructor produce the heap representation and disables
//! demotion — this is how the FM micro-benchmark measures the pre-fast-path
//! ("everything heap-allocates") baseline on the *same* binary.  The flag is
//! read on construction paths only; arithmetic dispatches on the operand
//! representation, so heap-built values stay on the heap path throughout.

/// A snapshot of the numeric-tower counters (all zero without the `stats`
/// feature).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NumericStats {
    /// `BigInt` operations completed entirely on the inline `i64` path.
    pub small_ops: u64,
    /// `BigInt` operations that ran limb-vector code.
    pub heap_ops: u64,
    /// Small-path operations whose result overflowed `i64` and promoted.
    pub promotions: u64,
    /// Heap-path results that fit `i64` and demoted back to the inline form.
    pub demotions: u64,
    /// `BigRational` operations served by the eager `i64` gcd fast path.
    pub rational_small_ops: u64,
    /// `BigRational` operations that fell back to `BigInt` arithmetic.
    pub rational_heap_ops: u64,
}

#[cfg(feature = "stats")]
mod imp {
    use super::NumericStats;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    pub(crate) static SMALL_OPS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static HEAP_OPS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DEMOTIONS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static RATIONAL_SMALL_OPS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static RATIONAL_HEAP_OPS: AtomicU64 = AtomicU64::new(0);
    static FORCE_HEAP: AtomicBool = AtomicBool::new(false);

    /// Reads the current counter values.
    pub fn snapshot() -> NumericStats {
        NumericStats {
            small_ops: SMALL_OPS.load(Ordering::Relaxed),
            heap_ops: HEAP_OPS.load(Ordering::Relaxed),
            promotions: PROMOTIONS.load(Ordering::Relaxed),
            demotions: DEMOTIONS.load(Ordering::Relaxed),
            rational_small_ops: RATIONAL_SMALL_OPS.load(Ordering::Relaxed),
            rational_heap_ops: RATIONAL_HEAP_OPS.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset() {
        SMALL_OPS.store(0, Ordering::Relaxed);
        HEAP_OPS.store(0, Ordering::Relaxed);
        PROMOTIONS.store(0, Ordering::Relaxed);
        DEMOTIONS.store(0, Ordering::Relaxed);
        RATIONAL_SMALL_OPS.store(0, Ordering::Relaxed);
        RATIONAL_HEAP_OPS.store(0, Ordering::Relaxed);
    }

    /// When `true`, constructors produce the heap representation and results
    /// never demote — the benchmarking baseline.  Affects newly constructed
    /// values only.
    pub fn set_force_heap(on: bool) {
        FORCE_HEAP.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn force_heap() -> bool {
        FORCE_HEAP.load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "stats"))]
mod imp {
    use super::NumericStats;

    /// Reads the current counter values (always zero: `stats` feature off).
    pub fn snapshot() -> NumericStats {
        NumericStats::default()
    }

    /// Zeroes all counters (no-op: `stats` feature off).
    pub fn reset() {}

    /// Selects the forced-heap baseline mode (no-op: `stats` feature off).
    pub fn set_force_heap(_on: bool) {}

    #[inline(always)]
    pub(crate) fn force_heap() -> bool {
        false
    }
}

pub(crate) use imp::force_heap;
pub use imp::{reset, set_force_heap, snapshot};

macro_rules! numeric_stat {
    ($counter:ident) => {
        #[cfg(feature = "stats")]
        $crate::stats::imp_bump::bump(&$crate::stats::imp_bump::$counter);
    };
}
pub(crate) use numeric_stat;

#[cfg(feature = "stats")]
pub(crate) mod imp_bump {
    pub(crate) use super::imp::{bump, DEMOTIONS, HEAP_OPS, PROMOTIONS, SMALL_OPS};
    pub(crate) use super::imp::{RATIONAL_HEAP_OPS, RATIONAL_SMALL_OPS};
}
