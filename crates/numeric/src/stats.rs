//! Small-path instrumentation for the numeric tower.
//!
//! Always compiled (the former `stats` cargo feature is gone): every
//! [`crate::BigInt`] operation bumps a relaxed atomic counter recording
//! whether it ran on the inline `i64` fast path or fell through to the
//! limb-vector heap path, and the promote/demote transitions between the
//! two representations are counted.  A relaxed `fetch_add` on an
//! uncontended cache line is the entire cost — the micro_substrates bench
//! records the tracing-layer overhead on the same workload and the
//! counters themselves are below measurement noise (≤1%).
//!
//! The counters are the crate's own statics (the hot path never goes
//! through a lookup); [`register_metrics`] publishes the same cells into
//! the process-wide [`chora_telemetry::metrics`] registry so a
//! `/v1/metrics` scrape renders them as `chora_numeric_*` series.
//!
//! [`set_force_heap`] is a process-wide switch that makes every
//! constructor produce the heap representation and disables demotion —
//! this is how the FM micro-benchmark measures the pre-fast-path
//! ("everything heap-allocates") baseline on the *same* binary.  The flag
//! is read on construction paths only; arithmetic dispatches on the
//! operand representation, so heap-built values stay on the heap path
//! throughout.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// A snapshot of the numeric-tower counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NumericStats {
    /// `BigInt` operations completed entirely on the inline `i64` path.
    pub small_ops: u64,
    /// `BigInt` operations that ran limb-vector code.
    pub heap_ops: u64,
    /// Small-path operations whose result overflowed `i64` and promoted.
    pub promotions: u64,
    /// Heap-path results that fit `i64` and demoted back to the inline form.
    pub demotions: u64,
    /// `BigRational` operations served by the eager `i64` gcd fast path.
    pub rational_small_ops: u64,
    /// `BigRational` operations that fell back to `BigInt` arithmetic.
    pub rational_heap_ops: u64,
}

pub(crate) static SMALL_OPS: AtomicU64 = AtomicU64::new(0);
pub(crate) static HEAP_OPS: AtomicU64 = AtomicU64::new(0);
pub(crate) static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static DEMOTIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static RATIONAL_SMALL_OPS: AtomicU64 = AtomicU64::new(0);
pub(crate) static RATIONAL_HEAP_OPS: AtomicU64 = AtomicU64::new(0);
static FORCE_HEAP: AtomicBool = AtomicBool::new(false);

/// Reads the current counter values.
pub fn snapshot() -> NumericStats {
    NumericStats {
        small_ops: SMALL_OPS.load(Ordering::Relaxed),
        heap_ops: HEAP_OPS.load(Ordering::Relaxed),
        promotions: PROMOTIONS.load(Ordering::Relaxed),
        demotions: DEMOTIONS.load(Ordering::Relaxed),
        rational_small_ops: RATIONAL_SMALL_OPS.load(Ordering::Relaxed),
        rational_heap_ops: RATIONAL_HEAP_OPS.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters.
pub fn reset() {
    SMALL_OPS.store(0, Ordering::Relaxed);
    HEAP_OPS.store(0, Ordering::Relaxed);
    PROMOTIONS.store(0, Ordering::Relaxed);
    DEMOTIONS.store(0, Ordering::Relaxed);
    RATIONAL_SMALL_OPS.store(0, Ordering::Relaxed);
    RATIONAL_HEAP_OPS.store(0, Ordering::Relaxed);
}

/// When `true`, constructors produce the heap representation and results
/// never demote — the benchmarking baseline.  Affects newly constructed
/// values only.
pub fn set_force_heap(on: bool) {
    FORCE_HEAP.store(on, Ordering::Relaxed);
}

#[inline]
pub(crate) fn force_heap() -> bool {
    FORCE_HEAP.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Publishes the counters into the process-wide metrics registry as
/// `chora_numeric_*` series.  Idempotent; the hot paths keep bumping the
/// same statics whether or not anyone ever scrapes them.
pub fn register_metrics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let registry = chora_telemetry::metrics::registry();
        registry.register_counter_static(
            "chora_numeric_small_ops_total",
            "BigInt operations completed on the inline i64 fast path.",
            &SMALL_OPS,
        );
        registry.register_counter_static(
            "chora_numeric_heap_ops_total",
            "BigInt operations that ran limb-vector code.",
            &HEAP_OPS,
        );
        registry.register_counter_static(
            "chora_numeric_promotions_total",
            "Small-path results that overflowed i64 and promoted to the heap form.",
            &PROMOTIONS,
        );
        registry.register_counter_static(
            "chora_numeric_demotions_total",
            "Heap-path results that fit i64 and demoted to the inline form.",
            &DEMOTIONS,
        );
        registry.register_counter_static(
            "chora_numeric_rational_small_ops_total",
            "BigRational operations served by the eager i64 gcd fast path.",
            &RATIONAL_SMALL_OPS,
        );
        registry.register_counter_static(
            "chora_numeric_rational_heap_ops_total",
            "BigRational operations that fell back to BigInt arithmetic.",
            &RATIONAL_HEAP_OPS,
        );
    });
}

macro_rules! numeric_stat {
    ($counter:ident) => {
        $crate::stats::bump(&$crate::stats::$counter);
    };
}
pub(crate) use numeric_stat;
