//! Sign–magnitude arbitrary-precision integers with an inline small form.
//!
//! A [`BigInt`] is either `Small(i64)` — a machine word, no allocation — or a
//! heap form: a little-endian vector of 32-bit limbs with no trailing zero
//! limbs plus a [`Sign`] (zero is the empty limb vector with [`Sign::Zero`]).
//! Almost every coefficient the CHORA analysis manipulates fits in a word,
//! so all arithmetic first tries a checked-`i64` fast path, *promotes* to the
//! heap form only when a result overflows, and *demotes* heap results that
//! fit back into the inline form.
//!
//! **Representation independence:** a value reachable as both `Small` and
//! heap (e.g. via [`BigInt::forced_heap`]) compares (`Eq`/`Ord`) and hashes
//! identically in either form.  Summaries are content-fingerprinted and
//! cached on disk, so this invariant is load-bearing — it is enforced by
//! value-based `PartialEq`/`Ord` impls and a `Hash` impl over the canonical
//! `(sign, limbs)` pair, and checked by differential property tests.

use crate::stats::numeric_stat;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    fn of_i64(v: i64) -> Sign {
        match v.cmp(&0) {
            Ordering::Less => Sign::Negative,
            Ordering::Equal => Sign::Zero,
            Ordering::Greater => Sign::Positive,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use chora_numeric::BigInt;
/// let a: BigInt = "123456789012345678901234567890".parse().unwrap();
/// let b = BigInt::from(3);
/// assert_eq!((&a * &b).to_string(), "370370367037037036703703703670");
/// ```
#[derive(Clone)]
pub struct BigInt {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Inline machine-word form; the common case, never allocates.
    Small(i64),
    /// Little-endian 32-bit limbs, no trailing zeros; `Sign::Zero` iff empty.
    Heap(Sign, Vec<u32>),
}

/// The (at most two) limbs of an `i64` magnitude, stack-allocated.
#[derive(Clone, Copy)]
struct SmallLimbs {
    buf: [u32; 2],
    len: usize,
}

impl SmallLimbs {
    #[inline]
    fn of(v: i64) -> SmallLimbs {
        let u = v.unsigned_abs();
        SmallLimbs {
            buf: [u as u32, (u >> 32) as u32],
            len: if u == 0 {
                0
            } else if u >> 32 == 0 {
                1
            } else {
                2
            },
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len]
    }
}

/// A borrowed or inline view of a magnitude, so heap algorithms can run on
/// either representation without allocating.
enum LimbView<'a> {
    Inline(SmallLimbs),
    Slice(&'a [u32]),
}

impl LimbView<'_> {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            LimbView::Inline(s) => s.as_slice(),
            LimbView::Slice(s) => s,
        }
    }
}

impl BigInt {
    /// The integer zero (allocation-free).
    #[inline]
    pub fn zero() -> BigInt {
        BigInt::make_small(0)
    }

    /// The integer one (allocation-free).
    #[inline]
    pub fn one() -> BigInt {
        BigInt::make_small(1)
    }

    /// Builds the inline form — or, under the benchmarking forced-heap mode,
    /// the equivalent heap form.
    #[inline]
    fn make_small(v: i64) -> BigInt {
        if crate::stats::force_heap() {
            let limbs = SmallLimbs::of(v);
            return BigInt {
                repr: Repr::Heap(Sign::of_i64(v), limbs.as_slice().to_vec()),
            };
        }
        BigInt {
            repr: Repr::Small(v),
        }
    }

    /// The inline value, if this integer is in the inline representation.
    /// (Heap-held values return `None` even when they would fit — dispatch
    /// is by representation, conversion is [`BigInt::to_i64`].)
    #[inline]
    pub(crate) fn as_small(&self) -> Option<i64> {
        match self.repr {
            Repr::Small(v) => Some(v),
            Repr::Heap(..) => None,
        }
    }

    /// A copy of this value in the heap representation, even when it fits
    /// inline.  Exposed for the differential representation-independence
    /// tests; arithmetic on the result exercises the limb paths (results
    /// still demote as usual).
    pub fn forced_heap(&self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => {
                let limbs = SmallLimbs::of(*v);
                BigInt {
                    repr: Repr::Heap(Sign::of_i64(*v), limbs.as_slice().to_vec()),
                }
            }
            Repr::Heap(..) => self.clone(),
        }
    }

    /// Returns `true` iff `self == 0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v == 0,
            Repr::Heap(sign, _) => *sign == Sign::Zero,
        }
    }

    /// Returns `true` iff `self == 1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        match &self.repr {
            Repr::Small(v) => *v == 1,
            Repr::Heap(sign, mag) => *sign == Sign::Positive && mag.as_slice() == [1],
        }
    }

    /// Returns the sign of the integer.
    #[inline]
    pub fn sign(&self) -> Sign {
        match &self.repr {
            Repr::Small(v) => Sign::of_i64(*v),
            Repr::Heap(sign, _) => *sign,
        }
    }

    /// Returns `true` iff `self > 0`.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign() == Sign::Positive
    }

    /// Returns `true` iff `self < 0`.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign() == Sign::Negative
    }

    /// Absolute value.
    #[inline]
    pub fn abs(&self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt::make_small(a),
                // |i64::MIN| = 2^63 does not fit in i64.
                None => BigInt::from_i128(-(i64::MIN as i128)),
            },
            Repr::Heap(sign, mag) => BigInt {
                repr: Repr::Heap(
                    if *sign == Sign::Negative {
                        Sign::Positive
                    } else {
                        *sign
                    },
                    mag.clone(),
                ),
            },
        }
    }

    /// The canonical `(sign, limbs)` view of either representation.
    #[inline]
    fn parts(&self) -> (Sign, LimbView<'_>) {
        match &self.repr {
            Repr::Small(v) => (Sign::of_i64(*v), LimbView::Inline(SmallLimbs::of(*v))),
            Repr::Heap(sign, mag) => (*sign, LimbView::Slice(mag)),
        }
    }

    /// Builds from a (possibly untrimmed) limb vector, demoting to the inline
    /// form when the value fits in an `i64`.
    fn from_mag(sign: Sign, mut mag: Vec<u32>) -> BigInt {
        while let Some(&0) = mag.last() {
            mag.pop();
        }
        if !crate::stats::force_heap() {
            if let Some(v) = small_from_parts(sign, &mag) {
                if !mag.is_empty() {
                    numeric_stat!(DEMOTIONS);
                }
                return BigInt {
                    repr: Repr::Small(v),
                };
            }
        }
        let sign = if mag.is_empty() { Sign::Zero } else { sign };
        BigInt {
            repr: Repr::Heap(sign, mag),
        }
    }

    /// Builds from an `i128` (covers every possible overflow of an
    /// `i64 ± / × i64` fast path).
    pub(crate) fn from_i128(v: i128) -> BigInt {
        if let Ok(small) = i64::try_from(v) {
            return BigInt::make_small(small);
        }
        let sign = if v < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let mut u = v.unsigned_abs();
        let mut mag = Vec::with_capacity(4);
        while u != 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt::from_mag(sign, mag)
    }

    fn from_u128(v: u128) -> BigInt {
        if let Ok(small) = i64::try_from(v) {
            return BigInt::make_small(small);
        }
        let mut u = v;
        let mut mag = Vec::with_capacity(4);
        while u != 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt::from_mag(Sign::Positive, mag)
    }

    /// Number of significant bits in the magnitude (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => (64 - v.unsigned_abs().leading_zeros()) as usize,
            Repr::Heap(_, mag) => match mag.last() {
                None => 0,
                Some(&top) => (mag.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
            },
        }
    }

    fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &digit) in long.iter().enumerate() {
            let s = digit as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` (by magnitude).
    fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for (i, &digit) in a.iter().enumerate() {
            let d = digit as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Shift magnitude left by `bits` bits.
    fn mag_shl(a: &[u32], bits: usize) -> Vec<u32> {
        if a.is_empty() {
            return Vec::new();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(a);
        } else {
            let mut carry = 0u32;
            for &x in a {
                out.push((x << bit_shift) | carry);
                carry = x >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Long division of magnitudes: returns `(quotient, remainder)`.
    ///
    /// Uses a fast path for single-limb divisors and bit-by-bit schoolbook
    /// division otherwise; operand sizes in the analysis are small enough
    /// that the simpler algorithm is preferable to Knuth's Algorithm D.
    fn mag_divmod(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::mag_cmp(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem: u64 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while let Some(&0) = q.last() {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (q, r);
        }
        // Bit-by-bit long division.
        let a_bits = (a.len() - 1) * 32 + (32 - a.last().unwrap().leading_zeros() as usize);
        let b_bits = (b.len() - 1) * 32 + (32 - b.last().unwrap().leading_zeros() as usize);
        let mut rem: Vec<u32> = Vec::new();
        let mut quot = vec![0u32; a.len()];
        let mut shift = a_bits - b_bits;
        let mut shifted = Self::mag_shl(b, shift);
        // Initialize remainder to a.
        rem.extend_from_slice(a);
        while let Some(&0) = rem.last() {
            rem.pop();
        }
        loop {
            if Self::mag_cmp(&rem, &shifted) != Ordering::Less {
                rem = Self::mag_sub(&rem, &shifted);
                quot[shift / 32] |= 1 << (shift % 32);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
            shifted = Self::mag_shl(b, shift);
        }
        while let Some(&0) = quot.last() {
            quot.pop();
        }
        (quot, rem)
    }

    /// Truncating division with remainder: `self = q * other + r` where
    /// `|r| < |other|` and `r` has the sign of `self` (C-style semantics).
    ///
    /// # Panics
    ///
    /// Panics if `other == 0`.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            assert!(b != 0, "division by zero");
            numeric_stat!(SMALL_OPS);
            // The only overflowing case is i64::MIN / -1.
            return match a.checked_div(b) {
                Some(q) => (BigInt::make_small(q), BigInt::make_small(a % b)),
                None => (BigInt::from_i128(-(i64::MIN as i128)), BigInt::zero()),
            };
        }
        numeric_stat!(HEAP_OPS);
        assert!(!other.is_zero(), "division by zero");
        let (sa, la) = self.parts();
        let (sb, lb) = other.parts();
        let (qm, rm) = Self::mag_divmod(la.as_slice(), lb.as_slice());
        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if sa == sb {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { sa };
        (BigInt::from_mag(q_sign, qm), BigInt::from_mag(r_sign, rm))
    }

    /// Euclidean division: floor division for the quotient.
    pub fn div_floor(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() != other.is_negative()) {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            numeric_stat!(SMALL_OPS);
            let g = gcd_u64(a.unsigned_abs(), b.unsigned_abs());
            return BigInt::from_u128(g as u128);
        }
        numeric_stat!(HEAP_OPS);
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            // Drop to the machine-word loop as soon as both fit.
            if let (Some(x), Some(y)) = (a.as_small(), b.as_small()) {
                let g = gcd_u64(x.unsigned_abs(), y.unsigned_abs());
                return BigInt::from_u128(g as u128);
            }
            let r = a.div_rem(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple (always non-negative); `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            numeric_stat!(SMALL_OPS);
            let (ua, ub) = (a.unsigned_abs(), b.unsigned_abs());
            let g = gcd_u64(ua, ub);
            // (ua / g) * ub ≤ 2^63 · 2^63 = 2^126: always fits u128.
            return BigInt::from_u128((ua / g) as u128 * ub as u128);
        }
        let g = self.gcd(other);
        (self.abs() / g) * other.abs()
    }

    /// Raises `self` to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Heap(sign, mag) => {
                if mag.len() > 2 {
                    return None;
                }
                let mut v: u64 = 0;
                for (i, &limb) in mag.iter().enumerate() {
                    v |= (limb as u64) << (32 * i);
                }
                match sign {
                    Sign::Zero => Some(0),
                    Sign::Positive => {
                        if v <= i64::MAX as u64 {
                            Some(v as i64)
                        } else {
                            None
                        }
                    }
                    Sign::Negative => {
                        if v <= i64::MAX as u64 + 1 {
                            Some((-(v as i128)) as i64)
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Converts to `f64` (lossy; used only for reporting).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(v) => *v as f64,
            Repr::Heap(sign, mag) => {
                let mut v = 0.0f64;
                for &limb in mag.iter().rev() {
                    v = v * 4294967296.0 + limb as f64;
                }
                if *sign == Sign::Negative {
                    -v
                } else {
                    v
                }
            }
        }
    }
}

/// Whether `(sign, mag)` fits in an `i64`, and the value if so.
#[inline]
fn small_from_parts(sign: Sign, mag: &[u32]) -> Option<i64> {
    match mag.len() {
        0 => Some(0),
        1 | 2 => {
            let mut v: u64 = mag[0] as u64;
            if mag.len() == 2 {
                v |= (mag[1] as u64) << 32;
            }
            match sign {
                Sign::Zero => Some(0),
                Sign::Positive => (v <= i64::MAX as u64).then_some(v as i64),
                Sign::Negative => {
                    (v <= i64::MAX as u64 + 1).then(|| (v as i128).wrapping_neg() as i64)
                }
            }
        }
        _ => None,
    }
}

/// Binary-free Euclidean gcd on unsigned words; `gcd(0, x) = x`.
#[inline]
pub(crate) fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Euclidean gcd on `u128` (cross-multiplied `i64` products reach 2^126);
/// `gcd(0, x) = x`.
#[inline]
pub(crate) fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    #[inline]
    fn from(v: i64) -> Self {
        BigInt::make_small(v)
    }
}

impl From<i32> for BigInt {
    #[inline]
    fn from(v: i32) -> Self {
        BigInt::make_small(v as i64)
    }
}

impl From<u64> for BigInt {
    #[inline]
    fn from(v: u64) -> Self {
        BigInt::from_u128(v as u128)
    }
}

impl From<usize> for BigInt {
    #[inline]
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseBigIntError);
        }
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError);
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10);
        for c in digits.chars() {
            let d = c.to_digit(10).ok_or(ParseBigIntError)?;
            acc = &acc * &ten + BigInt::from(d as i64);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer syntax")
    }
}

impl std::error::Error for ParseBigIntError {}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, mag) = match &self.repr {
            Repr::Small(v) => return write!(f, "{v}"),
            Repr::Heap(sign, mag) => (*sign, mag),
        };
        if mag.is_empty() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = mag.clone();
        let billion: u64 = 1_000_000_000;
        while !mag.is_empty() {
            // Divide mag by 10^9, collecting the remainder.
            let mut rem: u64 = 0;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 32) | mag[i] as u64;
                mag[i] = (cur / billion) as u32;
                rem = cur % billion;
            }
            while let Some(&0) = mag.last() {
                mag.pop();
            }
            digits.push(rem);
        }
        let mut s = String::new();
        if sign == Sign::Negative {
            s.push('-');
        }
        s.push_str(&digits.last().unwrap().to_string());
        for chunk in digits.iter().rev().skip(1) {
            s.push_str(&format!("{:09}", chunk));
        }
        write!(f, "{}", s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl PartialEq for BigInt {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a == b,
            _ => {
                let (sa, la) = self.parts();
                let (sb, lb) = other.parts();
                sa == sb && la.as_slice() == lb.as_slice()
            }
        }
    }
}

impl Eq for BigInt {}

impl Hash for BigInt {
    /// Hashes the canonical `(sign, limbs)` pair, so the inline and heap
    /// forms of the same value hash identically (mixed-representation
    /// `HashMap` lookups must hit).
    fn hash<H: Hasher>(&self, state: &mut H) {
        let (sign, limbs) = self.parts();
        sign.hash(state);
        limbs.as_slice().hash(state);
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return a.cmp(&b);
        }
        let (sa, la) = self.parts();
        let (sb, lb) = other.parts();
        match (sa, sb) {
            (a, b) if a != b => a.cmp(&b),
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Positive, Sign::Positive) => Self::mag_cmp(la.as_slice(), lb.as_slice()),
            (Sign::Negative, Sign::Negative) => Self::mag_cmp(lb.as_slice(), la.as_slice()),
            _ => unreachable!(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    #[inline]
    fn neg(self) -> BigInt {
        match self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt::make_small(n),
                None => BigInt::from_i128(-(i64::MIN as i128)),
            },
            Repr::Heap(sign, mag) => BigInt {
                repr: Repr::Heap(sign.flip(), mag),
            },
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    #[inline]
    fn neg(self) -> BigInt {
        self.clone().neg()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    #[inline]
    fn add(self, other: &BigInt) -> BigInt {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return match a.checked_add(b) {
                Some(s) => {
                    numeric_stat!(SMALL_OPS);
                    BigInt::make_small(s)
                }
                None => {
                    numeric_stat!(PROMOTIONS);
                    BigInt::from_i128(a as i128 + b as i128)
                }
            };
        }
        numeric_stat!(HEAP_OPS);
        let (sa, la) = self.parts();
        let (sb, lb) = other.parts();
        match (sa, sb) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, BigInt::mag_add(la.as_slice(), lb.as_slice())),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match BigInt::mag_cmp(la.as_slice(), lb.as_slice()) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_mag(sa, BigInt::mag_sub(la.as_slice(), lb.as_slice()))
                    }
                    Ordering::Less => {
                        BigInt::from_mag(sb, BigInt::mag_sub(lb.as_slice(), la.as_slice()))
                    }
                }
            }
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, other: BigInt) -> BigInt {
        &self + &other
    }
}

impl Add<&BigInt> for BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        &self + other
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    #[inline]
    fn sub(self, other: &BigInt) -> BigInt {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return match a.checked_sub(b) {
                Some(s) => {
                    numeric_stat!(SMALL_OPS);
                    BigInt::make_small(s)
                }
                None => {
                    numeric_stat!(PROMOTIONS);
                    BigInt::from_i128(a as i128 - b as i128)
                }
            };
        }
        self + &(-other.clone())
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, other: BigInt) -> BigInt {
        &self - &other
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    #[inline]
    fn mul(self, other: &BigInt) -> BigInt {
        if let (Some(a), Some(b)) = (self.as_small(), other.as_small()) {
            return match a.checked_mul(b) {
                Some(p) => {
                    numeric_stat!(SMALL_OPS);
                    BigInt::make_small(p)
                }
                None => {
                    numeric_stat!(PROMOTIONS);
                    BigInt::from_i128(a as i128 * b as i128)
                }
            };
        }
        numeric_stat!(HEAP_OPS);
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let (sa, la) = self.parts();
        let (sb, lb) = other.parts();
        let sign = if sa == sb {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_mag(sign, BigInt::mag_mul(la.as_slice(), lb.as_slice()))
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, other: BigInt) -> BigInt {
        &self * &other
    }
}

impl Mul<&BigInt> for BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        &self * other
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Div for BigInt {
    type Output = BigInt;
    fn div(self, other: BigInt) -> BigInt {
        &self / &other
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

impl Rem for BigInt {
    type Output = BigInt;
    fn rem(self, other: BigInt) -> BigInt {
        &self % &other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    fn hash_of(v: &BigInt) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(-2) * b(3), b(-6));
        assert_eq!(b(-2) + b(2), b(0));
        assert_eq!(b(7) / b(2), b(3));
        assert_eq!(b(7) % b(2), b(1));
        assert_eq!(b(-7) / b(2), b(-3));
        assert_eq!(b(-7) % b(2), b(-1));
    }

    #[test]
    fn overflow_promotes_and_round_trips() {
        let max = b(i64::MAX);
        let sum = &max + &max;
        assert_eq!(sum.to_string(), "18446744073709551614");
        assert_eq!((&sum - &max), max);
        let min = b(i64::MIN);
        assert_eq!((&min + &min).to_string(), "-18446744073709551616");
        assert_eq!((&min * &b(-1)).to_string(), "9223372036854775808");
        assert_eq!(min.div_rem(&b(-1)).0.to_string(), "9223372036854775808");
        assert_eq!((-min.clone()).to_string(), "9223372036854775808");
        assert_eq!(min.abs().to_string(), "9223372036854775808");
    }

    #[test]
    fn heap_results_demote_to_small() {
        // A computation that leaves the i64 range and comes back must end in
        // the inline representation (the canonical form).
        let max = b(i64::MAX);
        let back = &(&max + &max) - &max;
        assert!(back.as_small().is_some());
        assert_eq!(back, max);
    }

    #[test]
    fn representation_independent_eq_ord_hash() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 40] {
            let small = b(v);
            let heap = small.forced_heap();
            assert!(heap.as_small().is_none() || v == 0 && heap.as_small().is_none());
            assert_eq!(small, heap, "Eq must ignore representation for {v}");
            assert_eq!(
                small.cmp(&heap),
                Ordering::Equal,
                "Ord must ignore representation for {v}"
            );
            assert_eq!(
                hash_of(&small),
                hash_of(&heap),
                "Hash must ignore representation for {v}"
            );
            assert_eq!(small.to_string(), heap.to_string());
            assert_eq!(small.sign(), heap.sign());
            assert_eq!(small.bit_len(), heap.bit_len());
        }
    }

    #[test]
    fn mixed_representation_hashmap_lookups_hit() {
        use std::collections::HashMap;
        let mut map = HashMap::new();
        for v in [-3i64, 0, 7, i64::MAX] {
            map.insert(b(v), v);
        }
        for v in [-3i64, 0, 7, i64::MAX] {
            assert_eq!(map.get(&b(v).forced_heap()), Some(&v));
        }
    }

    #[test]
    fn forced_heap_arithmetic_agrees() {
        for (a, c) in [(3i64, 4i64), (-7, 2), (i64::MAX, i64::MAX), (0, -5)] {
            let (sa, sb) = (b(a), b(c));
            let (ha, hb) = (sa.forced_heap(), sb.forced_heap());
            assert_eq!(&sa + &sb, &ha + &hb);
            assert_eq!(&sa - &sb, &ha - &hb);
            assert_eq!(&sa * &sb, &ha * &hb);
            if c != 0 {
                assert_eq!(sa.div_rem(&sb), ha.div_rem(&hb));
            }
            assert_eq!(sa.gcd(&sb), ha.gcd(&hb));
        }
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "4294967296",
            "-123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BigInt>().is_err());
        assert!("abc".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
    }

    #[test]
    fn large_multiplication() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let sq = &a * &a;
        assert_eq!(
            sq.to_string(),
            "15241578753238836750495351562536198787501905199875019052100"
        );
    }

    #[test]
    fn large_division() {
        let a: BigInt = "15241578753238836750495351562536198787501905199875019052100"
            .parse()
            .unwrap();
        let b_: BigInt = "123456789012345678901234567890".parse().unwrap();
        let (q, r) = a.div_rem(&b_);
        assert_eq!(q, b_);
        assert!(r.is_zero());
        let (q2, r2) = (&a + &BigInt::from(7)).div_rem(&b_);
        assert_eq!(q2, b_);
        assert_eq!(r2, BigInt::from(7));
    }

    #[test]
    fn division_signs() {
        // Truncating division semantics.
        assert_eq!(b(7).div_rem(&b(-2)), (b(-3), b(1)));
        assert_eq!(b(-7).div_rem(&b(-2)), (b(3), b(-1)));
        assert_eq!(b(-7).div_floor(&b(2)), b(-4));
        assert_eq!(b(7).div_floor(&b(2)), b(3));
        assert_eq!(b(-8).div_floor(&b(2)), b(-4));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(5).div_rem(&b(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn heap_division_by_zero_panics() {
        let big: BigInt = "99999999999999999999".parse().unwrap();
        let _ = big.div_rem(&b(0));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(12).lcm(&b(18)), b(36));
        assert_eq!(b(0).lcm(&b(5)), b(0));
        // gcd(i64::MIN, 0) = 2^63 doesn't fit in i64 — must promote cleanly.
        assert_eq!(b(i64::MIN).gcd(&b(0)).to_string(), "9223372036854775808");
        // Mixed small/heap gcd converges through the word-size loop.
        let big: BigInt = "36893488147419103232".parse().unwrap(); // 2^65
        assert_eq!(big.gcd(&b(48)), b(16));
    }

    #[test]
    fn pow() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn ordering() {
        assert!(b(-5) < b(3));
        assert!(b(3) < b(5));
        assert!(b(-3) > b(-5));
        let big: BigInt = "99999999999999999999".parse().unwrap();
        assert!(big > b(i64::MAX));
        assert!(-&big < b(i64::MIN));
    }

    #[test]
    fn to_i64_conversion() {
        assert_eq!(b(42).to_i64(), Some(42));
        assert_eq!(b(-42).to_i64(), Some(-42));
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MIN).forced_heap().to_i64(), Some(i64::MIN));
        let big: BigInt = "99999999999999999999".parse().unwrap();
        assert_eq!(big.to_i64(), None);
    }

    #[test]
    fn to_f64_conversion() {
        assert_eq!(b(1024).to_f64(), 1024.0);
        assert_eq!(b(-3).to_f64(), -3.0);
        let big = b(2).pow(64);
        assert_eq!(big.to_f64(), 18446744073709551616.0);
    }

    #[test]
    fn bit_len() {
        assert_eq!(b(0).bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(b(256).bit_len(), 9);
        assert_eq!(b(2).pow(100).bit_len(), 101);
        assert_eq!(b(i64::MIN).bit_len(), 64);
    }

    #[test]
    fn min_max() {
        assert_eq!(b(3).max(b(5)), b(5));
        assert_eq!(b(3).min(b(-5)), b(-5));
    }
}
