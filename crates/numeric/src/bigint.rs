//! Sign–magnitude arbitrary-precision integers.
//!
//! The magnitude is a little-endian vector of 32-bit limbs with no trailing
//! zero limbs; zero is represented by an empty limb vector and [`Sign::Zero`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// ```
/// use chora_numeric::BigInt;
/// let a: BigInt = "123456789012345678901234567890".parse().unwrap();
/// let b = BigInt::from(3);
/// assert_eq!((&a * &b).to_string(), "370370367037037036703703703670");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian 32-bit limbs, no trailing zeros.
    mag: Vec<u32>,
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> BigInt {
        BigInt::from(1)
    }

    /// Returns `true` iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff `self == 1`.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag == [1]
    }

    /// Returns the sign of the integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns `true` iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        let mut r = self.clone();
        if r.sign == Sign::Negative {
            r.sign = Sign::Positive;
        }
        r
    }

    fn from_mag(sign: Sign, mut mag: Vec<u32>) -> BigInt {
        while let Some(&0) = mag.last() {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Number of significant bits in the magnitude (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    fn mag_cmp(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &digit) in long.iter().enumerate() {
            let s = digit as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` (by magnitude).
    fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for (i, &digit) in a.iter().enumerate() {
            let d = digit as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Shift magnitude left by `bits` bits.
    fn mag_shl(a: &[u32], bits: usize) -> Vec<u32> {
        if a.is_empty() {
            return Vec::new();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(a);
        } else {
            let mut carry = 0u32;
            for &x in a {
                out.push((x << bit_shift) | carry);
                carry = x >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Long division of magnitudes: returns `(quotient, remainder)`.
    ///
    /// Uses a fast path for single-limb divisors and bit-by-bit schoolbook
    /// division otherwise; operand sizes in the analysis are small enough
    /// that the simpler algorithm is preferable to Knuth's Algorithm D.
    fn mag_divmod(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::mag_cmp(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem: u64 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while let Some(&0) = q.last() {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (q, r);
        }
        // Bit-by-bit long division.
        let a_bits = (a.len() - 1) * 32 + (32 - a.last().unwrap().leading_zeros() as usize);
        let b_bits = (b.len() - 1) * 32 + (32 - b.last().unwrap().leading_zeros() as usize);
        let mut rem: Vec<u32> = Vec::new();
        let mut quot = vec![0u32; a.len()];
        let mut shift = a_bits - b_bits;
        let mut shifted = Self::mag_shl(b, shift);
        // Initialize remainder to a.
        rem.extend_from_slice(a);
        while let Some(&0) = rem.last() {
            rem.pop();
        }
        loop {
            if Self::mag_cmp(&rem, &shifted) != Ordering::Less {
                rem = Self::mag_sub(&rem, &shifted);
                quot[shift / 32] |= 1 << (shift % 32);
            }
            if shift == 0 {
                break;
            }
            shift -= 1;
            shifted = Self::mag_shl(b, shift);
        }
        while let Some(&0) = quot.last() {
            quot.pop();
        }
        (quot, rem)
    }

    /// Truncating division with remainder: `self = q * other + r` where
    /// `|r| < |other|` and `r` has the sign of `self` (C-style semantics).
    ///
    /// # Panics
    ///
    /// Panics if `other == 0`.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (qm, rm) = Self::mag_divmod(&self.mag, &other.mag);
        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_mag(q_sign, qm), BigInt::from_mag(r_sign, rm))
    }

    /// Euclidean division: floor division for the quotient.
    pub fn div_floor(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(other);
        if !r.is_zero() && (r.is_negative() != other.is_negative()) {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple (always non-negative); `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        (self.abs() / g) * other.abs()
    }

    /// Raises `self` to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            v |= (limb as u64) << (32 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if v <= i64::MAX as u64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if v <= i64::MAX as u64 + 1 {
                    Some((-(v as i128)) as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `f64` (lossy; used only for reporting).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 4294967296.0 + limb as f64;
        }
        if self.sign == Sign::Negative {
            -v
        } else {
            v
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let mag_val = v.unsigned_abs();
        let mut mag = vec![mag_val as u32];
        if mag_val >> 32 != 0 {
            mag.push((mag_val >> 32) as u32);
        }
        BigInt::from_mag(sign, mag)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let mut mag = vec![v as u32];
        if v >> 32 != 0 {
            mag.push((v >> 32) as u32);
        }
        BigInt::from_mag(Sign::Positive, mag)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseBigIntError);
        }
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError);
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10);
        for c in digits.chars() {
            let d = c.to_digit(10).ok_or(ParseBigIntError)?;
            acc = &acc * &ten + BigInt::from(d as i64);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer syntax")
    }
}

impl std::error::Error for ParseBigIntError {}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        let billion: u64 = 1_000_000_000;
        while !mag.is_empty() {
            // Divide mag by 10^9, collecting the remainder.
            let mut rem: u64 = 0;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 32) | mag[i] as u64;
                mag[i] = (cur / billion) as u32;
                rem = cur % billion;
            }
            while let Some(&0) = mag.last() {
                mag.pop();
            }
            digits.push(rem);
        }
        let mut s = String::new();
        if self.sign == Sign::Negative {
            s.push('-');
        }
        s.push_str(&digits.last().unwrap().to_string());
        for chunk in digits.iter().rev().skip(1) {
            s.push_str(&format!("{:09}", chunk));
        }
        write!(f, "{}", s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (a, b) if a != b => a.cmp(&b),
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Positive, Sign::Positive) => Self::mag_cmp(&self.mag, &other.mag),
            (Sign::Negative, Sign::Negative) => Self::mag_cmp(&other.mag, &self.mag),
            _ => unreachable!(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, BigInt::mag_add(&self.mag, &other.mag)),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match BigInt::mag_cmp(&self.mag, &other.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_mag(self.sign, BigInt::mag_sub(&self.mag, &other.mag))
                    }
                    Ordering::Less => {
                        BigInt::from_mag(other.sign, BigInt::mag_sub(&other.mag, &self.mag))
                    }
                }
            }
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, other: BigInt) -> BigInt {
        &self + &other
    }
}

impl Add<&BigInt> for BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        &self + other
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other.clone())
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, other: BigInt) -> BigInt {
        &self - &other
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_mag(sign, BigInt::mag_mul(&self.mag, &other.mag))
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, other: BigInt) -> BigInt {
        &self * &other
    }
}

impl Mul<&BigInt> for BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        &self * other
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Div for BigInt {
    type Output = BigInt;
    fn div(self, other: BigInt) -> BigInt {
        &self / &other
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

impl Rem for BigInt {
    type Output = BigInt;
    fn rem(self, other: BigInt) -> BigInt {
        &self % &other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(-2) * b(3), b(-6));
        assert_eq!(b(-2) + b(2), b(0));
        assert_eq!(b(7) / b(2), b(3));
        assert_eq!(b(7) % b(2), b(1));
        assert_eq!(b(-7) / b(2), b(-3));
        assert_eq!(b(-7) % b(2), b(-1));
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "4294967296",
            "-123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BigInt>().is_err());
        assert!("abc".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12x".parse::<BigInt>().is_err());
    }

    #[test]
    fn large_multiplication() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let sq = &a * &a;
        assert_eq!(
            sq.to_string(),
            "15241578753238836750495351562536198787501905199875019052100"
        );
    }

    #[test]
    fn large_division() {
        let a: BigInt = "15241578753238836750495351562536198787501905199875019052100"
            .parse()
            .unwrap();
        let b_: BigInt = "123456789012345678901234567890".parse().unwrap();
        let (q, r) = a.div_rem(&b_);
        assert_eq!(q, b_);
        assert!(r.is_zero());
        let (q2, r2) = (&a + &BigInt::from(7)).div_rem(&b_);
        assert_eq!(q2, b_);
        assert_eq!(r2, BigInt::from(7));
    }

    #[test]
    fn division_signs() {
        // Truncating division semantics.
        assert_eq!(b(7).div_rem(&b(-2)), (b(-3), b(1)));
        assert_eq!(b(-7).div_rem(&b(-2)), (b(3), b(-1)));
        assert_eq!(b(-7).div_floor(&b(2)), b(-4));
        assert_eq!(b(7).div_floor(&b(2)), b(3));
        assert_eq!(b(-8).div_floor(&b(2)), b(-4));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(5).div_rem(&b(0));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(12).lcm(&b(18)), b(36));
        assert_eq!(b(0).lcm(&b(5)), b(0));
    }

    #[test]
    fn pow() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn ordering() {
        assert!(b(-5) < b(3));
        assert!(b(3) < b(5));
        assert!(b(-3) > b(-5));
        let big: BigInt = "99999999999999999999".parse().unwrap();
        assert!(big > b(i64::MAX));
        assert!(-&big < b(i64::MIN));
    }

    #[test]
    fn to_i64_conversion() {
        assert_eq!(b(42).to_i64(), Some(42));
        assert_eq!(b(-42).to_i64(), Some(-42));
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
        let big: BigInt = "99999999999999999999".parse().unwrap();
        assert_eq!(big.to_i64(), None);
    }

    #[test]
    fn to_f64_conversion() {
        assert_eq!(b(1024).to_f64(), 1024.0);
        assert_eq!(b(-3).to_f64(), -3.0);
        let big = b(2).pow(64);
        assert_eq!(big.to_f64(), 18446744073709551616.0);
    }

    #[test]
    fn bit_len() {
        assert_eq!(b(0).bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(b(256).bit_len(), 9);
        assert_eq!(b(2).pow(100).bit_len(), 101);
    }

    #[test]
    fn min_max() {
        assert_eq!(b(3).max(b(5)), b(5));
        assert_eq!(b(3).min(b(-5)), b(-5));
    }
}
