//! # chora-numeric
//!
//! Exact arbitrary-precision arithmetic used throughout the CHORA analysis
//! stack: [`BigInt`] (sign–magnitude big integers) and [`BigRational`]
//! (always-normalized rationals).
//!
//! The original CHORA implementation relies on OCaml's `Zarith`; the paper's
//! polyhedra, recurrence solving, and abstraction algorithms all assume exact
//! rational arithmetic.  The Rust symbolic-math ecosystem is thin, and the
//! allowed dependency set does not include a bignum crate, so this crate
//! provides the substrate from scratch.
//!
//! ```
//! use chora_numeric::{BigInt, BigRational};
//!
//! let a = BigInt::from(1u64 << 40) * BigInt::from(1u64 << 40);
//! assert_eq!(a.to_string(), "1208925819614629174706176");
//!
//! let half = BigRational::new(BigInt::from(1), BigInt::from(2));
//! let third = BigRational::new(BigInt::from(1), BigInt::from(3));
//! assert_eq!((half + third).to_string(), "5/6");
//! ```

//! [`BigInt`] keeps small values (anything fitting an `i64`) in an inline
//! machine-word representation and only falls back to heap-allocated limb
//! vectors on overflow; see `bigint.rs` for the representation-independence
//! contract and [`stats`] for the (feature-gated) fast-path counters.

mod bigint;
pub mod linalg;
mod rational;
mod smallvec;
pub mod stats;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use rational::BigRational;
pub use smallvec::SmallVec;

/// Convenience constructor: the rational `n/1`.
pub fn rat(n: i64) -> BigRational {
    BigRational::from_integer(BigInt::from(n))
}

/// Convenience constructor: the rational `n/d`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn ratio(n: i64, d: i64) -> BigRational {
    BigRational::new(BigInt::from(n), BigInt::from(d))
}

/// Convenience constructor: the big integer `n`.
pub fn int(n: i64) -> BigInt {
    BigInt::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_constructors() {
        assert_eq!(rat(3).to_string(), "3");
        assert_eq!(ratio(6, 4).to_string(), "3/2");
        assert_eq!(int(-7).to_string(), "-7");
    }
}
