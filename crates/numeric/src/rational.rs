//! Always-normalized arbitrary-precision rationals.
//!
//! When both components are in [`BigInt`]'s inline `i64` form — the dominant
//! case in the CHORA analysis — arithmetic runs entirely on `i128`
//! intermediates with a machine-word gcd, never touching limb vectors.  The
//! normalized invariant (`den > 0`, so `den <= i64::MAX` when inline) keeps
//! every cross-multiplied sum strictly inside `i128`.

use crate::bigint::{gcd_u128, BigInt, Sign};
use crate::stats::numeric_stat;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// ```
/// use chora_numeric::{BigInt, BigRational};
/// let r = BigRational::new(BigInt::from(4), BigInt::from(-6));
/// assert_eq!(r.to_string(), "-2/3");
/// assert!(r < BigRational::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

impl BigRational {
    /// Creates the rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if let (Some(n), Some(d)) = (num.as_small(), den.as_small()) {
            return BigRational::from_i128_reduced(n as i128, d as i128);
        }
        numeric_stat!(RATIONAL_HEAP_OPS);
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        if num.is_zero() {
            return BigRational {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = &num / &g;
            den = &den / &g;
        }
        BigRational { num, den }
    }

    /// Both components in the inline `i64` representation, if they are.
    #[inline]
    fn small_parts(&self) -> Option<(i64, i64)> {
        Some((self.num.as_small()?, self.den.as_small()?))
    }

    /// A copy with both components in the heap `BigInt` representation, even
    /// when they fit inline.  Exposed for the differential
    /// representation-independence tests: arithmetic on the result exercises
    /// the general `BigInt`-based paths instead of the `i128` fast path.
    pub fn forced_heap(&self) -> BigRational {
        BigRational {
            num: self.num.forced_heap(),
            den: self.den.forced_heap(),
        }
    }

    /// Builds the reduced form of `num / den` from `i128` intermediates
    /// using a machine-word gcd — no limb arithmetic.
    ///
    /// Callers guarantee `den != 0` and `|num|, |den| < 2^127` (cross
    /// products of inline `i64` components never exceed 2^126).
    #[inline]
    fn from_i128_reduced(mut num: i128, mut den: i128) -> BigRational {
        debug_assert!(den != 0);
        numeric_stat!(RATIONAL_SMALL_OPS);
        if den < 0 {
            num = -num;
            den = -den;
        }
        if num == 0 {
            return BigRational {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = gcd_u128(num.unsigned_abs(), den as u128) as i128;
        BigRational {
            num: BigInt::from_i128(num / g),
            den: BigInt::from_i128(den / g),
        }
    }

    /// The rational zero.
    pub fn zero() -> BigRational {
        BigRational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> BigRational {
        BigRational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates a rational from an integer.
    pub fn from_integer(n: BigInt) -> BigRational {
        BigRational {
            num: n,
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        // num and den are already coprime — only the sign moves, so the gcd
        // pass in `new` would be pure waste.
        if self.num.is_negative() {
            BigRational {
                num: -self.den.clone(),
                den: -self.num.clone(),
            }
        } else {
            BigRational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self.clone()).floor())
    }

    /// Raises the value to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics if the value is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> BigRational {
        if exp >= 0 {
            // gcd(num, den) = 1 implies gcd(num^k, den^k) = 1 and den^k > 0,
            // so the result is already canonical — skip `new`'s gcd.
            BigRational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Lossy conversion to `f64` (reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Converts to an `i64` if the value is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_integer(BigInt::from(v))
    }
}

impl From<i32> for BigRational {
    fn from(v: i32) -> Self {
        BigRational::from_integer(BigInt::from(v))
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_integer(v)
    }
}

impl FromStr for BigRational {
    type Err = crate::bigint::ParseBigIntError;

    /// Parses `"a"` or `"a/b"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => Ok(BigRational::from_integer(s.parse()?)),
            Some((n, d)) => {
                let num: BigInt = n.parse()?;
                let den: BigInt = d.parse()?;
                if den.is_zero() {
                    return Err(crate::bigint::ParseBigIntError);
                }
                Ok(BigRational::new(num, den))
            }
        }
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({})", self)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b cmp c/d  <=>  a*d cmp c*b   (b, d > 0)
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return (a as i128 * d as i128).cmp(&(c as i128 * b as i128));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        -self.clone()
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    #[inline]
    fn add(self, other: &BigRational) -> BigRational {
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            // |a·d + c·b| < 2^127 because b, d ≤ i64::MAX (den > 0).
            return BigRational::from_i128_reduced(
                a as i128 * d as i128 + c as i128 * b as i128,
                b as i128 * d as i128,
            );
        }
        BigRational::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Add for BigRational {
    type Output = BigRational;
    fn add(self, other: BigRational) -> BigRational {
        &self + &other
    }
}

impl AddAssign<&BigRational> for BigRational {
    fn add_assign(&mut self, other: &BigRational) {
        *self = &*self + other;
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    #[inline]
    fn sub(self, other: &BigRational) -> BigRational {
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return BigRational::from_i128_reduced(
                a as i128 * d as i128 - c as i128 * b as i128,
                b as i128 * d as i128,
            );
        }
        self + &(-other.clone())
    }
}

impl Sub for BigRational {
    type Output = BigRational;
    fn sub(self, other: BigRational) -> BigRational {
        &self - &other
    }
}

impl SubAssign<&BigRational> for BigRational {
    fn sub_assign(&mut self, other: &BigRational) {
        *self = &*self - other;
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    #[inline]
    fn mul(self, other: &BigRational) -> BigRational {
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return BigRational::from_i128_reduced(a as i128 * c as i128, b as i128 * d as i128);
        }
        BigRational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Mul for BigRational {
    type Output = BigRational;
    fn mul(self, other: BigRational) -> BigRational {
        &self * &other
    }
}

impl MulAssign<&BigRational> for BigRational {
    fn mul_assign(&mut self, other: &BigRational) {
        *self = &*self * other;
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    #[inline]
    fn div(self, other: &BigRational) -> BigRational {
        assert!(!other.is_zero(), "division by zero");
        if let (Some((a, b)), Some((c, d))) = (self.small_parts(), other.small_parts()) {
            return BigRational::from_i128_reduced(a as i128 * d as i128, b as i128 * c as i128);
        }
        BigRational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

impl Div for BigRational {
    type Output = BigRational;
    fn div(self, other: BigRational) -> BigRational {
        &self / &other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> BigRational {
        BigRational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(4, 6), r(2, 3));
        assert_eq!(r(4, -6).to_string(), "-2/3");
        assert_eq!(r(0, 5), BigRational::zero());
        assert_eq!(r(0, 5).denom(), &BigInt::one());
        assert_eq!(r(-4, -6), r(2, 3));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += &r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= &r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= &r(3, 2);
        assert_eq!(x, r(1, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(6, 2).floor(), BigInt::from(3));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-1), r(3, 2));
        assert_eq!(r(2, 3).pow(0), BigRational::one());
        assert_eq!(r(-1, 2).pow(3), r(-1, 8));
        assert_eq!(r(5, 7).recip(), r(7, 5));
    }

    #[test]
    fn parse_and_display() {
        let v: BigRational = "22/7".parse().unwrap();
        assert_eq!(v, r(22, 7));
        let w: BigRational = "-5".parse().unwrap();
        assert_eq!(w, r(-5, 1));
        assert!("1/0".parse::<BigRational>().is_err());
        assert!("x/2".parse::<BigRational>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(r(6, 2).to_i64(), Some(3));
        assert_eq!(r(1, 2).to_i64(), None);
        assert!((r(1, 2).to_f64() - 0.5).abs() < 1e-12);
        assert_eq!(BigRational::from(7i64), r(7, 1));
        assert_eq!(BigRational::from(BigInt::from(9)), r(9, 1));
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).max(r(2, 3)), r(2, 3));
        assert_eq!(r(1, 2).min(r(-2, 3)), r(-2, 3));
    }
}
