//! A hand-rolled, std-only small vector.
//!
//! [`SmallVec<T, N>`] stores up to `N` elements inline (no heap allocation)
//! and spills to a `Vec<T>` permanently once it grows past `N`.  Constraint
//! rows in the Fourier–Motzkin elimination and coefficient lists in the
//! expression layer are almost always tiny (1–4 entries), so the inline form
//! eliminates the per-row allocations that previously dominated `solve` time.
//!
//! All comparison and hashing traits delegate to the element slice, so a
//! `SmallVec` behaves exactly like the `Vec` it replaces regardless of
//! whether the contents happen to live inline or on the heap — the same
//! representation-independence contract as `BigInt`.

// The workspace denies `unsafe_code`; this module is the one deliberate
// exception, because inline storage of non-`Copy` elements requires
// `MaybeUninit`. Every unsafe block is commented with its invariant, the
// unsafety never crosses the module boundary (the public API is safe), and
// the tests cover move/drop accounting with `Rc` counters.
#![allow(unsafe_code)]

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector with inline capacity for `N` elements.
pub enum SmallVec<T, const N: usize> {
    /// Up to `N` elements stored inline; the first `len` slots are live.
    Inline {
        /// Number of initialized elements in `buf`.
        len: usize,
        /// Backing storage; only `buf[..len]` is initialized.
        buf: [MaybeUninit<T>; N],
    },
    /// Spilled form, used once the length exceeds `N`.
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline, no allocation).
    #[inline]
    pub fn new() -> Self {
        SmallVec::Inline {
            len: 0,
            // SAFETY: an array of `MaybeUninit` needs no initialization.
            buf: unsafe { MaybeUninit::uninit().assume_init() },
        }
    }

    /// An empty vector that will hold at least `cap` elements without
    /// reallocating (heap-backed if `cap > N`).
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= N {
            SmallVec::new()
        } else {
            SmallVec::Heap(Vec::with_capacity(cap))
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SmallVec::Inline { len, .. } => *len,
            SmallVec::Heap(v) => v.len(),
        }
    }

    /// Returns `true` iff the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` iff the elements live in the inline buffer.
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self, SmallVec::Inline { .. })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallVec::Inline { len, buf } => {
                // SAFETY: buf[..len] is initialized by construction.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const T, *len) }
            }
            SmallVec::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            SmallVec::Inline { len, buf } => {
                // SAFETY: buf[..len] is initialized by construction.
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut T, *len) }
            }
            SmallVec::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Moves the inline contents into a `Vec` with room for at least
    /// `extra` more elements.
    fn spill(&mut self, extra: usize) {
        if let SmallVec::Inline { len, buf } = self {
            let n = *len;
            let mut v = Vec::with_capacity((n + extra).max(2 * N));
            for slot in buf.iter_mut().take(n) {
                // SAFETY: the first `len` slots are initialized; we move each
                // element out exactly once and then forget the inline form by
                // overwriting `self`.
                v.push(unsafe { slot.as_ptr().read() });
            }
            *len = 0; // inline contents are now logically moved out
            *self = SmallVec::Heap(v);
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: T) {
        match self {
            SmallVec::Inline { len, buf } => {
                if *len < N {
                    buf[*len].write(value);
                    *len += 1;
                } else {
                    self.spill(1);
                    if let SmallVec::Heap(v) = self {
                        v.push(value);
                    }
                }
            }
            SmallVec::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            SmallVec::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    // SAFETY: slot `*len` was initialized and is now out of
                    // the live range, so it is read exactly once.
                    Some(unsafe { buf[*len].as_ptr().read() })
                }
            }
            SmallVec::Heap(v) => v.pop(),
        }
    }

    /// Inserts `value` at `index`, shifting later elements right.
    pub fn insert(&mut self, index: usize, value: T) {
        let n = self.len();
        assert!(index <= n, "insertion index out of bounds");
        match self {
            SmallVec::Inline { len, buf } if *len < N => {
                unsafe {
                    // SAFETY: shift the initialized tail right by one slot;
                    // source and destination stay within the N-slot buffer
                    // because len < N.
                    let p = buf.as_mut_ptr();
                    std::ptr::copy(p.add(index), p.add(index + 1), *len - index);
                    (*p.add(index)).write(value);
                }
                *len += 1;
            }
            _ => {
                self.spill(1);
                if let SmallVec::Heap(v) = self {
                    v.insert(index, value);
                }
            }
        }
    }

    /// Removes and returns the element at `index`, shifting later elements
    /// left.
    pub fn remove(&mut self, index: usize) -> T {
        let n = self.len();
        assert!(index < n, "removal index out of bounds");
        match self {
            SmallVec::Inline { len, buf } => unsafe {
                // SAFETY: slot `index` is initialized; read it out then shift
                // the initialized tail left over it.
                let p = buf.as_mut_ptr();
                let out = (*p.add(index)).as_ptr().read();
                std::ptr::copy(p.add(index + 1), p.add(index), *len - index - 1);
                *len -= 1;
                out
            },
            SmallVec::Heap(v) => v.remove(index),
        }
    }

    /// Shortens the vector to `new_len` elements, dropping the rest.
    pub fn truncate(&mut self, new_len: usize) {
        match self {
            SmallVec::Inline { len, buf } => {
                while *len > new_len {
                    *len -= 1;
                    // SAFETY: drop each now-dead initialized slot once.
                    unsafe { buf[*len].as_mut_ptr().drop_in_place() };
                }
            }
            SmallVec::Heap(v) => v.truncate(new_len),
        }
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Keeps only the elements for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        match self {
            SmallVec::Heap(v) => v.retain(f),
            SmallVec::Inline { .. } => {
                let mut keep = 0;
                let n = self.len();
                for i in 0..n {
                    if f(&self.as_slice()[i]) {
                        if keep != i {
                            self.as_mut_slice().swap(keep, i);
                        }
                        keep += 1;
                    }
                }
                self.truncate(keep);
            }
        }
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        if let SmallVec::Inline { len, buf } = self {
            for slot in buf.iter_mut().take(*len) {
                // SAFETY: the first `len` slots are initialized and dropped
                // exactly once here.
                unsafe { slot.as_mut_ptr().drop_in_place() };
            }
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = SmallVec::with_capacity(self.len());
        for x in self.as_slice() {
            out.push(x.clone());
        }
        out
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: PartialOrd, const N: usize> PartialOrd for SmallVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Ord, const N: usize> Ord for SmallVec<T, N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Hash, const N: usize> Hash for SmallVec<T, N> {
    /// Hashes like `Vec<T>`/`[T]` (length-prefixed slice hash), so inline
    /// and spilled forms of the same contents hash identically.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut out = SmallVec::with_capacity(iter.size_hint().0);
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<T: Clone, const N: usize> From<&[T]> for SmallVec<T, N> {
    fn from(slice: &[T]) -> Self {
        slice.iter().cloned().collect()
    }
}

impl<T, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        // Already-allocated storage: keep it rather than copying back inline.
        SmallVec::Heap(v)
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a mut SmallVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<T, const N: usize> {
    inner: IntoIterInner<T, N>,
}

enum IntoIterInner<T, const N: usize> {
    Inline {
        buf: [MaybeUninit<T>; N],
        len: usize,
        pos: usize,
    },
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            IntoIterInner::Inline { buf, len, pos } => {
                if pos < len {
                    let i = *pos;
                    *pos += 1;
                    // SAFETY: slots pos..len are initialized and each is read
                    // exactly once as pos advances.
                    Some(unsafe { buf[i].as_ptr().read() })
                } else {
                    None
                }
            }
            IntoIterInner::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IntoIterInner::Inline { len, pos, .. } => {
                let n = len - pos;
                (n, Some(n))
            }
            IntoIterInner::Heap(it) => it.size_hint(),
        }
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        // Drop any elements not yet yielded.
        for _ in self.by_ref() {}
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        // Move the representation out without running SmallVec's Drop (the
        // iterator takes over ownership of the initialized slots).
        let this = std::mem::ManuallyDrop::new(self);
        match &*this {
            SmallVec::Inline { len, buf } => IntoIter {
                inner: IntoIterInner::Inline {
                    // SAFETY: `this` is ManuallyDrop — the buffer is moved
                    // into the iterator and the original is never dropped.
                    buf: unsafe { std::ptr::read(buf) },
                    len: *len,
                    pos: 0,
                },
            },
            SmallVec::Heap(v) => IntoIter {
                // SAFETY: as above; the Vec is moved out exactly once.
                inner: IntoIterInner::Heap(unsafe { std::ptr::read(v) }.into_iter()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::rc::Rc;

    type SV = SmallVec<i32, 4>;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn push_pop_inline() {
        let mut v = SV::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), [0, 1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn spill_preserves_contents() {
        let mut v = SV::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(v.pop(), Some(9));
    }

    #[test]
    fn insert_remove() {
        let mut v = SV::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2);
        assert_eq!(v.as_slice(), [1, 2, 3]);
        v.insert(0, 0);
        assert_eq!(v.as_slice(), [0, 1, 2, 3]);
        v.insert(4, 4); // forces spill at capacity
        assert_eq!(v.as_slice(), [0, 1, 2, 3, 4]);
        assert_eq!(v.remove(2), 2);
        assert_eq!(v.as_slice(), [0, 1, 3, 4]);
        let mut w = SV::new();
        w.push(7);
        w.push(8);
        assert_eq!(w.remove(0), 7);
        assert_eq!(w.as_slice(), [8]);
    }

    #[test]
    fn retain_and_truncate() {
        let mut v: SmallVec<i32, 8> = (0..8).collect();
        v.retain(|x| x % 2 == 0);
        assert_eq!(v.as_slice(), [0, 2, 4, 6]);
        v.truncate(2);
        assert_eq!(v.as_slice(), [0, 2]);
        let mut h: SV = (0..10).collect();
        h.retain(|x| x % 2 == 0);
        assert_eq!(h.as_slice(), [0, 2, 4, 6, 8]);
    }

    #[test]
    fn eq_ord_hash_ignore_representation() {
        let inline: SV = (0..3).collect();
        let mut heap: SV = (0..10).collect();
        heap.truncate(3);
        assert!(inline.is_inline());
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_eq!(inline.cmp(&heap), Ordering::Equal);
        assert_eq!(hash_of(&inline), hash_of(&heap));
        // And the slice hash matches Vec's, as promised.
        assert_eq!(
            hash_of(&inline.as_slice()),
            hash_of(&vec![0, 1, 2].as_slice())
        );
    }

    #[test]
    fn into_iter_owned() {
        let v: SV = (0..3).collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let big: SV = (0..9).collect();
        assert_eq!(big.into_iter().sum::<i32>(), 36);
    }

    #[test]
    fn drops_exactly_once() {
        let marker = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            for _ in 0..5 {
                v.push(marker.clone()); // spills at 3
            }
            v.truncate(4);
            let _popped = v.pop();
            let mut it = v.into_iter();
            let _first = it.next();
            // drop `it` with elements remaining
        }
        assert_eq!(Rc::strong_count(&marker), 1);

        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(marker.clone());
            v.push(marker.clone());
            let w = v.clone();
            drop(v);
            assert_eq!(Rc::strong_count(&marker), 3);
            drop(w);
        }
        assert_eq!(Rc::strong_count(&marker), 1);
    }

    #[test]
    fn extend_and_from() {
        let mut v = SV::new();
        v.extend([1, 2, 3]);
        assert_eq!(v.as_slice(), [1, 2, 3]);
        let from_slice: SV = SmallVec::from(&[4, 5][..]);
        assert_eq!(from_slice.as_slice(), [4, 5]);
        let from_vec: SV = SmallVec::from(vec![6, 7]);
        assert_eq!(from_vec.as_slice(), [6, 7]);
    }
}
