//! Exact linear algebra over [`BigRational`]: dense matrices, Gaussian
//! elimination, linear-system solving, and reduced row-echelon form.
//!
//! This is used by the polyhedra domain (equality elimination), by the
//! recurrence solver (fitting exponential-polynomial ansätze, characteristic
//! polynomials via Faddeev–LeVerrier), and by the two-region analysis.

use crate::{BigInt, BigRational, SmallVec};
use std::fmt;

/// A dense matrix of exact rationals.
///
/// ```
/// use chora_numeric::linalg::Matrix;
/// use chora_numeric::rat;
/// let m = Matrix::from_i64(&[&[1, 1], &[0, 2]]);
/// let b = vec![rat(3), rat(4)];
/// let x = m.solve(&b).unwrap();
/// assert_eq!(x, vec![rat(1), rat(2)]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<BigRational>,
}

impl Matrix {
    /// Creates a `rows x cols` zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![BigRational::zero(); rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = BigRational::one();
        }
        m
    }

    /// Creates a matrix from rows of rationals.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<BigRational>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Creates a matrix from rows of machine integers (convenient in tests).
    pub fn from_i64(rows: &[&[i64]]) -> Matrix {
        Matrix::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&v| BigRational::from(v)).collect())
                .collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matrix dimension mismatch");
        let mut out = Matrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                if self[(i, k)].is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = &self[(i, k)] * &other[(k, j)];
                    out[(i, j)] += &prod;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[BigRational]) -> Vec<BigRational> {
        assert_eq!(self.cols, v.len(), "matrix/vector dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = BigRational::zero();
                for j in 0..self.cols {
                    acc += &(&self[(i, j)] * &v[j]);
                }
                acc
            })
            .collect()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> BigRational {
        assert_eq!(self.rows, self.cols, "trace of a non-square matrix");
        let mut t = BigRational::zero();
        for i in 0..self.rows {
            t += &self[(i, i)];
        }
        t
    }

    /// Reduced row-echelon form together with the list of pivot columns.
    pub fn rref(&self) -> (Matrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..m.cols {
            if row >= m.rows {
                break;
            }
            // Find a pivot in this column at or below `row`.
            let pivot_row = (row..m.rows).find(|&r| !m[(r, col)].is_zero());
            let Some(p) = pivot_row else { continue };
            m.swap_rows(row, p);
            let inv = m[(row, col)].recip();
            for j in col..m.cols {
                let v = &m[(row, j)] * &inv;
                m[(row, j)] = v;
            }
            for r in 0..m.rows {
                if r != row && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)].clone();
                    for j in col..m.cols {
                        let v = &m[(r, j)] - &(&factor * &m[(row, j)]);
                        m[(r, j)] = v;
                    }
                }
            }
            pivots.push(col);
            row += 1;
        }
        (m, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Solves `self * x = b` for one solution, if any exists.
    ///
    /// Free variables are set to zero. Returns `None` if the system is
    /// inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[BigRational]) -> Option<Vec<BigRational>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        // Build the augmented matrix.
        let mut aug = Matrix::zero(self.rows, self.cols + 1);
        for i in 0..self.rows {
            for j in 0..self.cols {
                aug[(i, j)] = self[(i, j)].clone();
            }
            aug[(i, self.cols)] = b[i].clone();
        }
        let (r, pivots) = aug.rref();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.contains(&self.cols) {
            return None;
        }
        let mut x = vec![BigRational::zero(); self.cols];
        for (row, &col) in pivots.iter().enumerate() {
            x[col] = r[(row, self.cols)].clone();
        }
        Some(x)
    }

    /// Determinant of a square matrix (fraction-free Gaussian elimination).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> BigRational {
        assert_eq!(self.rows, self.cols, "determinant of a non-square matrix");
        let n = self.rows;
        let mut m = self.clone();
        let mut det = BigRational::one();
        for col in 0..n {
            let pivot = (col..n).find(|&r| !m[(r, col)].is_zero());
            let Some(p) = pivot else {
                return BigRational::zero();
            };
            if p != col {
                m.swap_rows(p, col);
                det = -det;
            }
            det = &det * &m[(col, col)];
            let inv = m[(col, col)].recip();
            for r in col + 1..n {
                if m[(r, col)].is_zero() {
                    continue;
                }
                let factor = &m[(r, col)] * &inv;
                for j in col..n {
                    let v = &m[(r, j)] - &(&factor * &m[(col, j)]);
                    m[(r, j)] = v;
                }
            }
        }
        det
    }

    /// Coefficients `c_0 + c_1 λ + ... + c_n λ^n` of the characteristic
    /// polynomial `det(λI - M)`, computed by the Faddeev–LeVerrier recursion.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn char_poly(&self) -> Vec<BigRational> {
        assert_eq!(self.rows, self.cols, "char_poly of a non-square matrix");
        let n = self.rows;
        // c[n] = 1; M_1 = M; c_{n-k} = -tr(M_k)/k; M_{k+1} = M (M_k + c_{n-k} I)
        let mut coeffs = vec![BigRational::zero(); n + 1];
        coeffs[n] = BigRational::one();
        let mut mk = self.clone();
        for k in 1..=n {
            let c = -(&mk.trace() / &BigRational::from(k as i64));
            coeffs[n - k] = c.clone();
            if k < n {
                let mut adjusted = mk.clone();
                for i in 0..n {
                    adjusted[(i, i)] = &adjusted[(i, i)] + &c;
                }
                mk = self.mul(&adjusted);
            }
        }
        coeffs
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = BigRational;
    fn index(&self, (i, j): (usize, usize)) -> &BigRational {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut BigRational {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// Finds all rational roots (with multiplicity) of the polynomial with the
/// given coefficients `c_0 + c_1 x + ... + c_n x^n`, using the rational-root
/// theorem followed by repeated deflation.
///
/// Returns `(roots, fully_factored)` where `fully_factored` is true iff the
/// polynomial splits completely over ℚ (up to a constant).
pub fn rational_roots(coeffs: &[BigRational]) -> (Vec<BigRational>, bool) {
    // Strip leading zeros (highest degree) and trailing zero coefficients
    // (roots at zero).
    let mut c: Row = coeffs.iter().cloned().collect();
    while c.last().map(|v| v.is_zero()).unwrap_or(false) {
        c.pop();
    }
    if c.len() <= 1 {
        return (Vec::new(), true);
    }
    let mut roots = Vec::new();
    // Roots at zero.
    while c.first().map(|v| v.is_zero()).unwrap_or(false) {
        roots.push(BigRational::zero());
        c.remove(0);
    }
    // Scale to integer coefficients.
    loop {
        if c.len() <= 1 {
            return (roots, true);
        }
        let mut lcm = BigInt::one();
        for v in &c {
            lcm = lcm.lcm(v.denom());
        }
        let int_coeffs: SmallVec<BigInt, 8> = c
            .iter()
            .map(|v| {
                (v * &BigRational::from_integer(lcm.clone()))
                    .numer()
                    .clone()
            })
            .collect();
        let a0 = int_coeffs.first().unwrap().abs();
        let an = int_coeffs.last().unwrap().abs();
        if a0.is_zero() {
            // Shouldn't happen (zero roots removed), but guard anyway.
            roots.push(BigRational::zero());
            c.remove(0);
            continue;
        }
        let p_divs = divisors(&a0);
        let q_divs = divisors(&an);
        let mut found = None;
        'search: for p in &p_divs {
            for q in &q_divs {
                for sign in [1i64, -1] {
                    let cand = BigRational::new(p * &BigInt::from(sign), q.clone());
                    if eval_poly(&c, &cand).is_zero() {
                        found = Some(cand);
                        break 'search;
                    }
                }
            }
        }
        match found {
            Some(root) => {
                c = deflate(&c, &root);
                roots.push(root);
            }
            None => return (roots, c.len() <= 1),
        }
    }
}

/// Evaluates the polynomial `c_0 + c_1 x + ...` at `x`.
pub fn eval_poly(coeffs: &[BigRational], x: &BigRational) -> BigRational {
    let mut acc = BigRational::zero();
    for c in coeffs.iter().rev() {
        acc = &(&acc * x) + c;
    }
    acc
}

/// Coefficient rows used inside root finding: characteristic polynomials of
/// the small recurrence matrices rarely exceed degree 8, so the rows stay
/// inline across the strip/deflate loop.
type Row = SmallVec<BigRational, 8>;

/// Synthetic division of the polynomial by `(x - root)`; assumes `root` is a
/// root, discarding the (zero) remainder.
fn deflate(coeffs: &[BigRational], root: &BigRational) -> Row {
    let n = coeffs.len();
    let mut out: Row = std::iter::repeat_with(BigRational::zero)
        .take(n - 1)
        .collect();
    let mut carry = BigRational::zero();
    for i in (1..n).rev() {
        let v = &coeffs[i] + &carry;
        out[i - 1] = v.clone();
        carry = &v * root;
    }
    out
}

/// Positive divisors of `|n|` (small-factor enumeration; values in the
/// analysis are small).
fn divisors(n: &BigInt) -> Vec<BigInt> {
    let n = n.abs();
    if n.is_zero() {
        return vec![BigInt::one()];
    }
    // Enumerate divisors up to sqrt(n) by trial division with BigInt step.
    let mut out = Vec::new();
    let mut i = BigInt::one();
    loop {
        let sq = &i * &i;
        if sq > n {
            break;
        }
        let (q, r) = n.div_rem(&i);
        if r.is_zero() {
            out.push(i.clone());
            if q != i {
                out.push(q);
            }
        }
        i = i + BigInt::one();
        // Guard: don't loop forever on astronomically large constants.
        if out.len() > 4096 || i > BigInt::from(1_000_000i64) {
            break;
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rat, ratio};

    #[test]
    fn identity_and_mul() {
        let i3 = Matrix::identity(3);
        let m = Matrix::from_i64(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        assert_eq!(i3.mul(&m), m);
        assert_eq!(m.mul(&i3), m);
        let sq = m.mul(&m);
        assert_eq!(sq[(0, 0)], rat(30));
        assert_eq!(sq[(2, 2)], rat(150));
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_i64(&[&[2, 0], &[1, 3]]);
        let v = vec![rat(5), rat(7)];
        assert_eq!(m.mul_vec(&v), vec![rat(10), rat(26)]);
    }

    #[test]
    fn solve_unique() {
        let m = Matrix::from_i64(&[&[2, 1], &[1, -1]]);
        let x = m.solve(&[rat(5), rat(1)]).unwrap();
        assert_eq!(x, vec![rat(2), rat(1)]);
    }

    #[test]
    fn solve_underdetermined_and_inconsistent() {
        let m = Matrix::from_i64(&[&[1, 1]]);
        let x = m.solve(&[rat(4)]).unwrap();
        // One valid solution with free variable zeroed.
        assert_eq!(x, vec![rat(4), rat(0)]);

        let m2 = Matrix::from_i64(&[&[1, 1], &[2, 2]]);
        assert!(m2.solve(&[rat(1), rat(3)]).is_none());
    }

    #[test]
    fn determinant_and_rank() {
        let m = Matrix::from_i64(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.determinant(), rat(-2));
        assert_eq!(m.rank(), 2);
        let s = Matrix::from_i64(&[&[1, 2], &[2, 4]]);
        assert_eq!(s.determinant(), rat(0));
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn char_poly_2x2() {
        // M = [[0, 18], [2, 0]]  =>  λ^2 - 36
        let m = Matrix::from_i64(&[&[0, 18], &[2, 0]]);
        let cp = m.char_poly();
        assert_eq!(cp, vec![rat(-36), rat(0), rat(1)]);
        let (roots, full) = rational_roots(&cp);
        assert!(full);
        let mut r = roots.clone();
        r.sort();
        assert_eq!(r, vec![rat(-6), rat(6)]);
    }

    #[test]
    fn char_poly_3x3() {
        // Diagonal matrix: roots are the diagonal entries.
        let m = Matrix::from_i64(&[&[2, 0, 0], &[0, 3, 0], &[0, 0, 3]]);
        let cp = m.char_poly();
        let (mut roots, full) = rational_roots(&cp);
        roots.sort();
        assert!(full);
        assert_eq!(roots, vec![rat(2), rat(3), rat(3)]);
    }

    #[test]
    fn rational_roots_with_fractions() {
        // (2x - 1)(x + 3) = 2x^2 + 5x - 3
        let coeffs = vec![rat(-3), rat(5), rat(2)];
        let (mut roots, full) = rational_roots(&coeffs);
        roots.sort();
        assert!(full);
        assert_eq!(roots, vec![rat(-3), ratio(1, 2)]);
    }

    #[test]
    fn rational_roots_irreducible() {
        // x^2 - 2 has no rational roots.
        let coeffs = vec![rat(-2), rat(0), rat(1)];
        let (roots, full) = rational_roots(&coeffs);
        assert!(roots.is_empty());
        assert!(!full);
    }

    #[test]
    fn rational_roots_zero_roots() {
        // x^2(x - 5)
        let coeffs = vec![rat(0), rat(0), rat(-5), rat(1)];
        let (mut roots, full) = rational_roots(&coeffs);
        roots.sort();
        assert!(full);
        assert_eq!(roots, vec![rat(0), rat(0), rat(5)]);
    }

    #[test]
    fn eval_poly_works() {
        // 1 + 2x + 3x^2 at x = 2 -> 17
        assert_eq!(eval_poly(&[rat(1), rat(2), rat(3)], &rat(2)), rat(17));
    }
}
