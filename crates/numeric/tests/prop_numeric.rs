//! Property-based tests for the exact-arithmetic substrate.
//!
//! These check ring/field axioms, agreement with native `i128` arithmetic on
//! values small enough to compare, and — differentially — that the inline
//! `Small(i64)` fast path and the forced-heap limb path agree on every
//! operation, ordering, `to_string`/`FromStr` round-trip, and hash (summaries
//! are content-fingerprinted, so mixed-representation `HashMap` lookups must
//! hit).

use chora_numeric::{BigInt, BigRational};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

fn big(v: i64) -> BigInt {
    BigInt::from(v)
}

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let r = big(a) + big(b);
        prop_assert_eq!(r.to_string(), (a as i128 + b as i128).to_string());
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let r = big(a) * big(b);
        prop_assert_eq!(r.to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let r = big(a) - big(b);
        prop_assert_eq!(r.to_string(), (a as i128 - b as i128).to_string());
    }

    #[test]
    fn div_rem_reconstructs(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(&q * &big(b) + r.clone(), big(a));
        // |r| < |b|
        prop_assert!(r.abs() < big(b).abs());
    }

    #[test]
    fn parse_display_round_trip(a in any::<i64>()) {
        let v = big(a);
        let parsed: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let g = big(a as i64).gcd(&big(b as i64));
        if !g.is_zero() {
            prop_assert!((big(a as i64) % g.clone()).is_zero());
            prop_assert!((big(b as i64) % g.clone()).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn mul_associative_large(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (x, y, z) = (big(a), big(b), big(c));
        prop_assert_eq!((&x * &y) * z.clone(), x * (&y * &z));
    }

    #[test]
    fn rational_field_axioms(
        an in -1000i64..1000, ad in 1i64..50,
        bn in -1000i64..1000, bd in 1i64..50,
        cn in -1000i64..1000, cd in 1i64..50,
    ) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let c = BigRational::new(BigInt::from(cn), BigInt::from(cd));
        // commutativity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        // associativity
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        // distributivity
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // additive inverse
        prop_assert!((&a + &(-a.clone())).is_zero());
        // multiplicative inverse
        if !b.is_zero() {
            prop_assert!((&b * &b.recip()).is_one());
        }
    }

    #[test]
    fn rational_order_consistent_with_f64(
        an in -10_000i64..10_000, ad in 1i64..1000,
        bn in -10_000i64..10_000, bd in 1i64..1000,
    ) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn floor_ceil_bracket(an in -100_000i64..100_000, ad in 1i64..500) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let fl = BigRational::from_integer(a.floor());
        let ce = BigRational::from_integer(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= BigRational::one());
    }

    #[test]
    fn pow_agrees_with_repeated_mul(n in -9i64..9, d in 1i64..5, e in 0i32..6) {
        let a = BigRational::new(BigInt::from(n), BigInt::from(d));
        let mut expect = BigRational::one();
        for _ in 0..e {
            expect = &expect * &a;
        }
        prop_assert_eq!(a.pow(e), expect);
    }

    // ---- differential: inline small path vs forced-heap limb path ----

    #[test]
    fn bigint_ops_agree_across_representations(a in any::<i64>(), b in any::<i64>()) {
        let (sa, sb) = (big(a), big(b));
        let (ha, hb) = (sa.forced_heap(), sb.forced_heap());
        prop_assert_eq!(&sa + &sb, &ha + &hb);
        prop_assert_eq!(&sa - &sb, &ha - &hb);
        prop_assert_eq!(&sa * &sb, &ha * &hb);
        prop_assert_eq!(-sa.clone(), -ha.clone());
        prop_assert_eq!(sa.abs(), ha.abs());
        prop_assert_eq!(sa.gcd(&sb), ha.gcd(&hb));
        prop_assert_eq!(sa.cmp(&sb), ha.cmp(&hb));
        if b != 0 {
            prop_assert_eq!(sa.div_rem(&sb), ha.div_rem(&hb));
            prop_assert_eq!(sa.div_floor(&sb), ha.div_floor(&hb));
        }
        // Mixed-representation operands must agree too.
        prop_assert_eq!(&sa + &hb, &sa + &sb);
        prop_assert_eq!(&ha * &sb, &sa * &sb);
    }

    #[test]
    fn bigint_eq_ord_hash_representation_independent(a in any::<i64>(), b in any::<i64>()) {
        let small = big(a);
        let heap = small.forced_heap();
        prop_assert_eq!(&small, &heap);
        prop_assert_eq!(small.cmp(&heap), Ordering::Equal);
        prop_assert_eq!(hash_of(&small), hash_of(&heap));
        // Cross-representation ordering matches the value ordering.
        prop_assert_eq!(small.cmp(&big(b).forced_heap()), a.cmp(&b));
        // Both representations print identically and round-trip through
        // parse back to an equal value.
        prop_assert_eq!(small.to_string(), heap.to_string());
        let parsed: BigInt = heap.to_string().parse().unwrap();
        prop_assert_eq!(parsed, small);
    }

    #[test]
    fn bigint_mixed_representation_hashmap_hits(a in any::<i64>()) {
        let mut by_small: HashMap<BigInt, i64> = HashMap::new();
        by_small.insert(big(a), a);
        prop_assert_eq!(by_small.get(&big(a).forced_heap()), Some(&a));
        let mut by_heap: HashMap<BigInt, i64> = HashMap::new();
        by_heap.insert(big(a).forced_heap(), a);
        prop_assert_eq!(by_heap.get(&big(a)), Some(&a));
    }

    #[test]
    fn rational_ops_agree_across_representations(
        an in -10_000i64..10_000, ad in 1i64..1000,
        bn in -10_000i64..10_000, bd in 1i64..1000,
    ) {
        let a = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let b = BigRational::new(BigInt::from(bn), BigInt::from(bd));
        let (ha, hb) = (a.forced_heap(), b.forced_heap());
        prop_assert_eq!(&a + &b, &ha + &hb);
        prop_assert_eq!(&a - &b, &ha - &hb);
        prop_assert_eq!(&a * &b, &ha * &hb);
        prop_assert_eq!(a.cmp(&b), ha.cmp(&hb));
        prop_assert_eq!(a.pow(3), ha.pow(3));
        prop_assert_eq!(a.floor(), ha.floor());
        prop_assert_eq!(a.ceil(), ha.ceil());
        if !b.is_zero() {
            prop_assert_eq!(&a / &b, &ha / &hb);
            prop_assert_eq!(b.recip(), hb.recip());
        }
        // Mixed operands.
        prop_assert_eq!(&a + &hb, &a + &b);
        prop_assert_eq!(&ha * &b, &a * &b);
    }

    #[test]
    fn rational_eq_ord_hash_representation_independent(
        an in -10_000i64..10_000, ad in 1i64..1000,
    ) {
        let small = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let heap = small.forced_heap();
        prop_assert_eq!(&small, &heap);
        prop_assert_eq!(small.cmp(&heap), Ordering::Equal);
        prop_assert_eq!(hash_of(&small), hash_of(&heap));
        prop_assert_eq!(small.to_string(), heap.to_string());
        let parsed: BigRational = heap.to_string().parse().unwrap();
        prop_assert_eq!(parsed, small);
    }

    #[test]
    fn rational_mixed_representation_hashmap_hits(
        an in -10_000i64..10_000, ad in 1i64..1000,
    ) {
        let r = BigRational::new(BigInt::from(an), BigInt::from(ad));
        let mut map: HashMap<BigRational, i64> = HashMap::new();
        map.insert(r.clone(), an);
        prop_assert_eq!(map.get(&r.forced_heap()), Some(&an));
        let mut by_heap: HashMap<BigRational, i64> = HashMap::new();
        by_heap.insert(r.forced_heap(), an);
        prop_assert_eq!(by_heap.get(&r), Some(&an));
    }
}
