//! The process-wide metrics registry: counters, gauges, and histograms with
//! fixed log-scale buckets, rendered in Prometheus text exposition format.
//!
//! Metrics are registered once by `(family name, label set)` and the handle
//! is leaked, so hot paths hold a `&'static Counter` and pay exactly one
//! relaxed `fetch_add` per event — the same cost as the free-standing
//! atomics the workspace already used.  Crates that keep their own statics
//! (the numeric tower and the FM engine, whose bump macros predate this
//! registry) register those atomics *by reference* instead, so their hot
//! paths do not change at all and the registry still renders them.
//!
//! Registration is idempotent: asking for an existing `(name, labels)` pair
//! returns the existing handle.  Registering the same family under two
//! different kinds is a programmer error and panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter (relaxed atomics throughout).
///
/// [`Counter::store`] exists for two sanctioned non-monotonic uses: the
/// bench harness resetting between measurement windows, and scrape-time
/// synchronization from instance-owned counters (e.g. a `TieredStore`'s
/// internal atomics copied into the registry before rendering).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the value (reset / scrape-time sync only).
    #[inline]
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }
}

/// A value that can go up or down (u64; the workspace has no signed or
/// floating gauges).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The fixed log-scale histogram bounds, in milliseconds: powers of two
/// from 0.25 ms to ~65.5 s (19 buckets plus the implicit `+Inf`).
pub const DEFAULT_BOUNDS_MS: [f64; 19] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0, 16384.0, 32768.0, 65536.0,
];

/// A histogram of millisecond durations over [`DEFAULT_BOUNDS_MS`].
///
/// Buckets are stored *non*-cumulative (`buckets[i]` counts observations in
/// `(bounds[i-1], bounds[i]]`, with one extra overflow bucket), so the sum
/// of all bucket counts always equals the observation count; the Prometheus
/// renderer accumulates them into the conventional `le` form.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; DEFAULT_BOUNDS_MS.len() + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `ms` milliseconds (negative values clamp
    /// to zero).
    pub fn observe_ms(&self, ms: f64) {
        let ms = if ms.is_finite() { ms.max(0.0) } else { 0.0 };
        let idx = DEFAULT_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(DEFAULT_BOUNDS_MS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((ms * 1000.0).round() as u64, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// What a registered series points at: an owned (leaked) metric, or a
/// borrowed static atomic owned by another crate's stats module.
#[derive(Clone, Copy)]
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    BorrowedCounter(&'static AtomicU64),
    BorrowedGauge(&'static AtomicU64),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) | Handle::BorrowedCounter(_) => "counter",
            Handle::Gauge(_) | Handle::BorrowedGauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: a help string, a kind, and one series per label set.
struct Family {
    help: &'static str,
    kind: &'static str,
    /// Keyed by the rendered label block (`""` for an unlabelled series,
    /// `endpoint="/v1/analyze",code="2xx"` otherwise).
    series: BTreeMap<String, Handle>,
}

/// The process-wide registry; obtain it with [`registry`].
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// The one global registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Renders a label slice into the canonical series key; values are escaped
/// per the exposition format (backslash, double quote, newline).
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// The one registration primitive: finds or creates the family, checks
    /// kind agreement, and finds or creates the series under its label key.
    /// Owned metrics are allocated once and leaked — a bounded leak, one
    /// per distinct `(family, labels)` pair over the process lifetime.
    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        kind: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric family {name} already registered as a {}",
            family.kind
        );
        let handle = *family.series.entry(label_key(labels)).or_insert_with(make);
        assert_eq!(
            handle.kind(),
            kind,
            "metric series {name} already registered as a {}",
            handle.kind()
        );
        handle
    }

    /// An unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        self.counter_with(name, help, &[])
    }

    /// A counter series under `labels`.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> &'static Counter {
        match self.series(name, help, "counter", labels, || {
            Handle::Counter(Box::leak(Box::default()))
        }) {
            Handle::Counter(c) => c,
            _ => panic!("metric {name} is registered as a borrowed counter"),
        }
    }

    /// An unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        self.gauge_with(name, help, &[])
    }

    /// A gauge series under `labels`.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> &'static Gauge {
        match self.series(name, help, "gauge", labels, || {
            Handle::Gauge(Box::leak(Box::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => panic!("metric {name} is registered as a borrowed gauge"),
        }
    }

    /// An unlabelled histogram over [`DEFAULT_BOUNDS_MS`].
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        self.histogram_with(name, help, &[])
    }

    /// A histogram series under `labels`.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> &'static Histogram {
        match self.series(name, help, "histogram", labels, || {
            Handle::Histogram(Box::leak(Box::default()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("histogram families hold only histogram handles"),
        }
    }

    /// Registers a counter backed by a static atomic another crate owns and
    /// bumps directly (the numeric-tower and FM stats modules): the hot
    /// path keeps its existing `fetch_add` on the original static, and the
    /// registry reads the same cell at render time.
    pub fn register_counter_static(
        &self,
        name: &'static str,
        help: &'static str,
        cell: &'static AtomicU64,
    ) {
        self.series(name, help, "counter", &[], || Handle::BorrowedCounter(cell));
    }

    /// Registers a gauge backed by a static atomic another crate owns
    /// (e.g. a high-water mark maintained with `fetch_max`).
    pub fn register_gauge_static(
        &self,
        name: &'static str,
        help: &'static str,
        cell: &'static AtomicU64,
    ) {
        self.series(name, help, "gauge", &[], || Handle::BorrowedGauge(cell));
    }

    /// Renders every registered family in Prometheus text exposition
    /// format (`text/plain; version=0.0.4`): families sorted by name, one
    /// `# HELP` and `# TYPE` header each, series sorted by label key.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            for c in family.help.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind);
            out.push('\n');
            for (labels, handle) in &family.series {
                match handle {
                    Handle::Counter(c) => render_scalar(&mut out, name, labels, c.get()),
                    Handle::Gauge(g) => render_scalar(&mut out, name, labels, g.get()),
                    Handle::BorrowedCounter(cell) | Handle::BorrowedGauge(cell) => {
                        render_scalar(&mut out, name, labels, cell.load(Ordering::Relaxed));
                    }
                    Handle::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// One `name{labels} value` line.
fn render_scalar(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Formats a bucket bound the way Prometheus conventionally does: integral
/// bounds without a trailing `.0`.
fn fmt_bound(bound: f64) -> String {
    if bound.fract() == 0.0 {
        format!("{}", bound as u64)
    } else {
        format!("{bound}")
    }
}

/// The cumulative `_bucket`/`_sum`/`_count` block of one histogram series.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    let sep = if labels.is_empty() { "" } else { "," };
    for (i, bound) in DEFAULT_BOUNDS_MS.iter().enumerate() {
        cumulative += counts[i];
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}\n",
            fmt_bound(*bound)
        ));
    }
    cumulative += counts[DEFAULT_BOUNDS_MS.len()];
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"
    ));
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{braces} {}\n", h.sum_ms()));
    out.push_str(&format!("{name}_count{braces} {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = registry();
        let a = r.counter("test_idempotent_total", "help");
        let b = r.counter("test_idempotent_total", "help");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = registry();
        let a = r.counter_with("test_labelled_total", "help", &[("k", "a")]);
        let b = r.counter_with("test_labelled_total", "help", &[("k", "b")]);
        assert!(!std::ptr::eq(a, b));
        a.add(2);
        b.add(5);
        let text = r.render_prometheus();
        assert!(text.contains("test_labelled_total{k=\"a\"} 2"));
        assert!(text.contains("test_labelled_total{k=\"b\"} 5"));
        assert!(text.contains("# TYPE test_labelled_total counter"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = registry();
        let h = r.histogram("test_histogram_ms", "help");
        h.observe_ms(0.1); // le 0.25
        h.observe_ms(3.0); // le 4
        h.observe_ms(1e9); // +Inf overflow
        assert_eq!(h.count(), 3);
        let text = r.render_prometheus();
        assert!(text.contains("test_histogram_ms_bucket{le=\"0.25\"} 1"));
        assert!(text.contains("test_histogram_ms_bucket{le=\"4\"} 2"));
        assert!(text.contains("test_histogram_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_histogram_ms_count 3"));
    }

    #[test]
    fn borrowed_statics_render_live_values() {
        static CELL: AtomicU64 = AtomicU64::new(0);
        let r = registry();
        r.register_counter_static("test_borrowed_total", "help", &CELL);
        CELL.store(7, Ordering::Relaxed);
        assert!(r.render_prometheus().contains("test_borrowed_total 7"));
    }
}
