//! Process-wide telemetry for the CHORA workspace: one crate, two surfaces.
//!
//! * [`metrics`] — a global [`metrics::MetricsRegistry`] of counters, gauges,
//!   and log-scale-bucketed histograms, rendered in Prometheus text
//!   exposition format for `GET /v1/metrics`.  The numeric-tower and
//!   Fourier–Motzkin counters that used to live behind a `stats` cargo
//!   feature register their (always-compiled) relaxed atomics here, and the
//!   server/cache layers publish theirs at scrape time, so one scrape sees
//!   the whole process.
//! * [`trace`] — a span API with near-zero disabled cost (one relaxed
//!   atomic load per would-be span) and a per-run recorder that dumps
//!   Chrome trace-event JSON (`chrome://tracing` / Perfetto loadable).
//!   Worker threads of the ready-queue scheduler claim one lane each, and
//!   every span carries the task id plus queue-wait time of the scheduler
//!   task it ran under, so queue-wait vs. run time per SCC task is visible
//!   per worker.
//!
//! The crate is std-only and depends on nothing in the workspace, so every
//! layer (numeric, logic, recurrence, core, server, cli) can use it without
//! dependency cycles.  Instrumentation never touches analysis results or
//! stdout: traces go to a separate file or response field, and goldens stay
//! byte-identical with tracing on or off.

pub mod metrics;
pub mod trace;
