//! Span tracing with a per-run Chrome trace-event recorder.
//!
//! The hot-path contract: when no [`TraceSession`] is active, creating a
//! span costs one relaxed atomic load and a branch — no allocation, no
//! clock read, no lock.  When a session is active, each span reads the
//! monotonic clock twice (construction and drop) and pushes one event into
//! a global vector under a mutex; contention only exists while a trace is
//! actually being recorded.
//!
//! Attribution: every event carries a *lane* (the thread's row in the
//! rendered timeline — ready-queue workers claim `worker-N` lanes, other
//! threads get a lane named after the thread) and, when the span ran under
//! a scheduler task, the task id plus how long that task sat in the ready
//! queue before a worker picked it up.  The Chrome/Perfetto rendering is
//! one `pid`, one `tid` per lane, `ph:"X"` complete events, and a
//! `thread_name` metadata record per lane.
//!
//! Only one session records at a time ([`start`] returns `None` when one
//! is already active); callers that multiplex traced work (the server's
//! `?trace=1` path) serialize around that.

use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether a trace session is currently recording (the span fast-path gate).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Guards session exclusivity: set for the lifetime of a [`TraceSession`].
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The process-wide monotonic epoch all event timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (the clock spans record in).
/// Public so schedulers can stamp queue-wait intervals on the same scale.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Recorded events of the active session.
fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Lane id → name, process-wide.  Lane identity is the *name*: a worker
/// thread created for a later run reuses the `worker-0` lane of an earlier
/// one, so a session's timeline has exactly one row per distinct lane name.
fn lanes() -> &'static Mutex<Vec<String>> {
    static LANES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    LANES.get_or_init(|| Mutex::new(Vec::new()))
}

fn register_lane(name: &str) -> u32 {
    let mut lanes = lanes().lock().expect("trace lanes lock");
    if let Some(id) = lanes.iter().position(|n| n == name) {
        return id as u32;
    }
    lanes.push(name.to_string());
    (lanes.len() - 1) as u32
}

thread_local! {
    /// This thread's lane, assigned lazily from the thread name.
    static LANE: Cell<Option<u32>> = const { Cell::new(None) };
    /// The scheduler task this thread is currently running, if any:
    /// `(task id, queue-wait ns)`.
    static TASK: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

fn lane_id() -> u32 {
    LANE.with(|lane| match lane.get() {
        Some(id) => id,
        None => {
            let thread = std::thread::current();
            let id = register_lane(thread.name().unwrap_or("driver"));
            lane.set(Some(id));
            id
        }
    })
}

/// Claims a named lane for the current thread (ready-queue workers call
/// this with `worker-N` so the timeline has one row per worker).
pub fn claim_lane(name: &str) {
    let id = register_lane(name);
    LANE.with(|lane| lane.set(Some(id)));
}

/// Whether a trace session is recording; the guard instrumented code uses
/// to skip building span names.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Marks the current thread as running scheduler task `id`, which waited
/// `queue_wait_ns` in the ready queue; spans created until the guard drops
/// carry that attribution.  Free when no session is active.
pub fn task_scope(id: u64, queue_wait_ns: u64) -> TaskScope {
    if !enabled() {
        return TaskScope {
            prev: None,
            set: false,
        };
    }
    let prev = TASK.with(|task| task.replace(Some((id, queue_wait_ns))));
    TaskScope { prev, set: true }
}

/// Guard of [`task_scope`]; restores the previous task attribution on drop.
pub struct TaskScope {
    prev: Option<(u64, u64)>,
    set: bool,
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        if self.set {
            TASK.with(|task| task.set(self.prev));
        }
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (phase, procedure, task description).
    pub name: Cow<'static, str>,
    /// Coarse category: `phase`, `task`, `fm`, `cache`, `solve`, …
    pub cat: &'static str,
    /// Timeline row (see [`claim_lane`]).
    pub lane: u32,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// `(task id, queue-wait ns)` of the scheduler task this span ran under.
    pub task: Option<(u64, u64)>,
}

/// A live span; records itself when dropped.  Inert (and allocation-free)
/// when no session is active.
pub struct Span {
    inner: Option<(Cow<'static, str>, &'static str, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((name, cat, start_ns)) = self.inner.take() else {
            return;
        };
        // A session that ended mid-span drops the event rather than leak
        // it into the next session's buffer.
        if !enabled() {
            return;
        }
        let event = TraceEvent {
            name,
            cat,
            lane: lane_id(),
            start_ns,
            dur_ns: now_ns().saturating_sub(start_ns),
            task: TASK.with(|task| task.get()),
        };
        events().lock().expect("trace events lock").push(event);
    }
}

/// Opens a span with a static name.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some((Cow::Borrowed(name), cat, now_ns())),
    }
}

/// Opens a span whose name is built only if a session is recording.
#[inline]
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some((Cow::Owned(name()), cat, now_ns())),
    }
}

/// An exclusive recording session; end it with [`TraceSession::finish`].
pub struct TraceSession {
    finished: bool,
}

/// Starts recording, or returns `None` if a session is already active.
pub fn start() -> Option<TraceSession> {
    if ACTIVE
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return None;
    }
    events().lock().expect("trace events lock").clear();
    ENABLED.store(true, Ordering::Release);
    Some(TraceSession { finished: false })
}

impl TraceSession {
    /// Stops recording and returns the captured trace.
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        ENABLED.store(false, Ordering::Release);
        let events = std::mem::take(&mut *events().lock().expect("trace events lock"));
        let lanes = lanes().lock().expect("trace lanes lock").clone();
        ACTIVE.store(false, Ordering::Release);
        Trace { events, lanes }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            ENABLED.store(false, Ordering::Release);
            events().lock().expect("trace events lock").clear();
            ACTIVE.store(false, Ordering::Release);
        }
    }
}

/// A finished recording.
pub struct Trace {
    /// Every span captured, in completion order.
    pub events: Vec<TraceEvent>,
    /// Lane id → name (ids index this vector; not all lanes need appear in
    /// `events`).
    pub lanes: Vec<String>,
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl Trace {
    /// The distinct lane names that actually carry events.
    pub fn active_lanes(&self) -> Vec<&str> {
        let mut seen: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.iter()
            .filter_map(|&id| self.lanes.get(id as usize).map(String::as_str))
            .collect()
    }

    /// Serializes the trace as Chrome trace-event JSON: one `thread_name`
    /// metadata record per active lane, then one `ph:"X"` complete event
    /// per span (timestamps in microseconds, as the format requires).
    /// Loadable by `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut seen: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
        seen.sort_unstable();
        seen.dedup();
        for &lane in &seen {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\""
            ));
            escape_json(
                &mut out,
                self.lanes.get(lane as usize).map_or("?", String::as_str),
            );
            out.push_str("\"}}");
        }
        for event in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json(&mut out, &event.name);
            out.push_str("\",\"cat\":\"");
            escape_json(&mut out, event.cat);
            out.push_str(&format!(
                "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                event.lane,
                event.start_ns as f64 / 1000.0,
                event.dur_ns as f64 / 1000.0,
            ));
            if let Some((task, wait_ns)) = event.task {
                out.push_str(&format!(
                    ",\"args\":{{\"task\":{task},\"queue_wait_ms\":{:.3}}}",
                    wait_ns as f64 / 1e6
                ));
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_captures_spans_lanes_and_task_attribution() {
        let session = start().expect("no other session in this test binary");
        claim_lane("worker-test");
        {
            let _task = task_scope(7, 1_500_000);
            let _span = span("task", "component demo");
        }
        {
            let _span = span_with("phase", || "parse demo".to_string());
        }
        let trace = session.finish();
        assert!(!enabled());
        assert_eq!(trace.events.len(), 2);
        let component = &trace.events[0];
        assert_eq!(component.name, "component demo");
        assert_eq!(component.task, Some((7, 1_500_000)));
        assert!(trace.active_lanes().contains(&"worker-test"));
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"queue_wait_ms\":1.500"));
        assert!(json.contains("\"parse demo\""));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        // A second session can start once the first finished.
        let again = start().expect("session slot released");
        drop(again);
        assert!(!enabled());
    }
}
