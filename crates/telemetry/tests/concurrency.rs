//! Concurrency coverage for the metrics registry: a loom-free stress test
//! (exact final counts under N threads × M increments) and a property test
//! that histogram bucket counts always sum to the observation count.

use chora_telemetry::metrics::{registry, DEFAULT_BOUNDS_MS};
use proptest::prelude::*;

#[test]
fn counter_survives_contended_increments_exactly() {
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 25_000;
    let counter = registry().counter(
        "test_stress_counter_total",
        "exact-count stress test counter",
    );
    let histogram = registry().histogram("test_stress_histogram_ms", "stress test histogram");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..INCREMENTS {
                    counter.inc();
                    // Spread observations across buckets, including overflow.
                    histogram.observe_ms(((t as u64 * INCREMENTS + i) % 100_000) as f64);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * INCREMENTS);
    assert_eq!(histogram.count(), THREADS as u64 * INCREMENTS);
    assert_eq!(
        histogram.bucket_counts().iter().sum::<u64>(),
        THREADS as u64 * INCREMENTS,
        "per-bucket counts must account for every observation"
    );
}

#[test]
fn concurrent_registration_returns_one_series() {
    let handles: Vec<_> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let c = registry().counter(
                        "test_concurrent_registration_total",
                        "registration race test",
                    );
                    c.inc();
                    c as *const _ as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("registration thread"))
            .collect()
    });
    assert!(
        handles.windows(2).all(|w| w[0] == w[1]),
        "every thread must get the same leaked counter"
    );
    assert_eq!(
        registry()
            .counter(
                "test_concurrent_registration_total",
                "registration race test"
            )
            .get(),
        8
    );
}

proptest! {
    #[test]
    fn histogram_buckets_sum_to_observation_count(
        values in prop::collection::vec(0u64..200_000, 0..200),
    ) {
        // A fresh family per input size bucket would leak one histogram per
        // case; reuse one family and track the delta instead.
        let h = registry().histogram(
            "test_prop_histogram_ms",
            "bucket-sum property test histogram",
        );
        let count_before = h.count();
        let buckets_before: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(count_before, buckets_before);
        for v in &values {
            // Quarter-millisecond steps hit bucket boundaries exactly.
            h.observe_ms(*v as f64 / 4.0);
        }
        let buckets_after: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(h.count(), count_before + values.len() as u64);
        prop_assert_eq!(buckets_after, buckets_before + values.len() as u64);
        prop_assert_eq!(h.bucket_counts().len(), DEFAULT_BOUNDS_MS.len() + 1);
    }
}
