//! Instrumentation for the Fourier–Motzkin projection engine.
//!
//! Always compiled (the former `stats` cargo feature is gone): the
//! projection pass in [`crate::Polyhedron`] counts every combined row it
//! produces and every row the redundancy-control layers discard —
//! hash-cons dedup, quasi-syntactic domination, Imbert's acceleration —
//! plus the early-unsat exits and the widest intermediate system any
//! elimination step produced.  The counters are process-wide relaxed
//! atomics, mirroring `chora_numeric::stats`, and [`register_metrics`]
//! publishes the same cells into the [`chora_telemetry::metrics`] registry
//! as `chora_fm_*` series for the `/v1/metrics` scrape.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// A snapshot of the Fourier–Motzkin counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FmStats {
    /// Rows produced by pos×neg combination or equality substitution.
    pub rows_generated: u64,
    /// Produced rows dropped because an identical row was already kept.
    pub rows_deduped: u64,
    /// Rows dropped (or replaced) by a parallel row with a tighter constant.
    pub rows_dominated: u64,
    /// Combinations dropped by Kohler's ancestor/gone-set bound before the
    /// row was stored or bred from.
    pub imbert_skipped: u64,
    /// Projection passes abandoned early on a derived contradiction.
    pub early_unsat_exits: u64,
    /// The largest live constraint count any elimination step produced.
    pub max_width: u64,
}

pub(crate) static ROWS_GENERATED: AtomicU64 = AtomicU64::new(0);
pub(crate) static ROWS_DEDUPED: AtomicU64 = AtomicU64::new(0);
pub(crate) static ROWS_DOMINATED: AtomicU64 = AtomicU64::new(0);
pub(crate) static IMBERT_SKIPPED: AtomicU64 = AtomicU64::new(0);
pub(crate) static EARLY_UNSAT_EXITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static MAX_WIDTH: AtomicU64 = AtomicU64::new(0);

/// Reads the current counter values.
pub fn snapshot() -> FmStats {
    FmStats {
        rows_generated: ROWS_GENERATED.load(Ordering::Relaxed),
        rows_deduped: ROWS_DEDUPED.load(Ordering::Relaxed),
        rows_dominated: ROWS_DOMINATED.load(Ordering::Relaxed),
        imbert_skipped: IMBERT_SKIPPED.load(Ordering::Relaxed),
        early_unsat_exits: EARLY_UNSAT_EXITS.load(Ordering::Relaxed),
        max_width: MAX_WIDTH.load(Ordering::Relaxed),
    }
}

/// Zeroes all counters.
pub fn reset() {
    ROWS_GENERATED.store(0, Ordering::Relaxed);
    ROWS_DEDUPED.store(0, Ordering::Relaxed);
    ROWS_DOMINATED.store(0, Ordering::Relaxed);
    IMBERT_SKIPPED.store(0, Ordering::Relaxed);
    EARLY_UNSAT_EXITS.store(0, Ordering::Relaxed);
    MAX_WIDTH.store(0, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_width(width: u64) {
    MAX_WIDTH.fetch_max(width, Ordering::Relaxed);
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Publishes the counters into the process-wide metrics registry as
/// `chora_fm_*` series.  Idempotent.
pub fn register_metrics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let registry = chora_telemetry::metrics::registry();
        registry.register_counter_static(
            "chora_fm_rows_generated_total",
            "FM rows produced by pos/neg combination or equality substitution.",
            &ROWS_GENERATED,
        );
        registry.register_counter_static(
            "chora_fm_rows_deduped_total",
            "FM rows dropped because an identical row was already kept.",
            &ROWS_DEDUPED,
        );
        registry.register_counter_static(
            "chora_fm_rows_dominated_total",
            "FM rows dropped or replaced by a parallel row with a tighter constant.",
            &ROWS_DOMINATED,
        );
        registry.register_counter_static(
            "chora_fm_imbert_skipped_total",
            "FM combinations dropped by Kohler's ancestor/gone-set bound.",
            &IMBERT_SKIPPED,
        );
        registry.register_counter_static(
            "chora_fm_early_unsat_exits_total",
            "FM projection passes abandoned early on a derived contradiction.",
            &EARLY_UNSAT_EXITS,
        );
        registry.register_gauge_static(
            "chora_fm_max_width",
            "Largest live constraint count any FM elimination step produced.",
            &MAX_WIDTH,
        );
    });
}

macro_rules! fm_stat {
    ($counter:ident) => {
        $crate::stats::bump(&$crate::stats::$counter);
    };
}
pub(crate) use fm_stat;
