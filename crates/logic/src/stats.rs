//! Instrumentation for the Fourier–Motzkin projection engine.
//!
//! Compiled to no-ops unless the `stats` cargo feature is enabled (the bench
//! harness turns it on, and the CLI binary inherits it through
//! `chora-bench`): with the feature, the projection pass in
//! [`crate::Polyhedron`] counts every combined row it produces and every row
//! the redundancy-control layers discard — hash-cons dedup, quasi-syntactic
//! domination, Imbert's acceleration — plus the early-unsat exits and the
//! widest intermediate system any elimination step produced.  The counters
//! are process-wide relaxed atomics, mirroring `chora_numeric::stats`.

/// A snapshot of the Fourier–Motzkin counters (all zero without the `stats`
/// feature).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FmStats {
    /// Rows produced by pos×neg combination or equality substitution.
    pub rows_generated: u64,
    /// Produced rows dropped because an identical row was already kept.
    pub rows_deduped: u64,
    /// Rows dropped (or replaced) by a parallel row with a tighter constant.
    pub rows_dominated: u64,
    /// Combinations dropped by Kohler's ancestor/gone-set bound before the
    /// row was stored or bred from.
    pub imbert_skipped: u64,
    /// Projection passes abandoned early on a derived contradiction.
    pub early_unsat_exits: u64,
    /// The largest live constraint count any elimination step produced.
    pub max_width: u64,
}

#[cfg(feature = "stats")]
mod imp {
    use super::FmStats;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static ROWS_GENERATED: AtomicU64 = AtomicU64::new(0);
    pub(crate) static ROWS_DEDUPED: AtomicU64 = AtomicU64::new(0);
    pub(crate) static ROWS_DOMINATED: AtomicU64 = AtomicU64::new(0);
    pub(crate) static IMBERT_SKIPPED: AtomicU64 = AtomicU64::new(0);
    pub(crate) static EARLY_UNSAT_EXITS: AtomicU64 = AtomicU64::new(0);
    pub(crate) static MAX_WIDTH: AtomicU64 = AtomicU64::new(0);

    /// Reads the current counter values.
    pub fn snapshot() -> FmStats {
        FmStats {
            rows_generated: ROWS_GENERATED.load(Ordering::Relaxed),
            rows_deduped: ROWS_DEDUPED.load(Ordering::Relaxed),
            rows_dominated: ROWS_DOMINATED.load(Ordering::Relaxed),
            imbert_skipped: IMBERT_SKIPPED.load(Ordering::Relaxed),
            early_unsat_exits: EARLY_UNSAT_EXITS.load(Ordering::Relaxed),
            max_width: MAX_WIDTH.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset() {
        ROWS_GENERATED.store(0, Ordering::Relaxed);
        ROWS_DEDUPED.store(0, Ordering::Relaxed);
        ROWS_DOMINATED.store(0, Ordering::Relaxed);
        IMBERT_SKIPPED.store(0, Ordering::Relaxed);
        EARLY_UNSAT_EXITS.store(0, Ordering::Relaxed);
        MAX_WIDTH.store(0, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_width(width: u64) {
        MAX_WIDTH.fetch_max(width, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(not(feature = "stats"))]
mod imp {
    use super::FmStats;

    /// Reads the current counter values (always zero: `stats` feature off).
    pub fn snapshot() -> FmStats {
        FmStats::default()
    }

    /// Zeroes all counters (no-op: `stats` feature off).
    pub fn reset() {}

    #[inline(always)]
    pub(crate) fn record_width(_width: u64) {}
}

pub(crate) use imp::record_width;
pub use imp::{reset, snapshot};

macro_rules! fm_stat {
    ($counter:ident) => {
        #[cfg(feature = "stats")]
        $crate::stats::imp_bump::bump(&$crate::stats::imp_bump::$counter);
    };
}
pub(crate) use fm_stat;

#[cfg(feature = "stats")]
pub(crate) mod imp_bump {
    pub(crate) use super::imp::{bump, EARLY_UNSAT_EXITS, IMBERT_SKIPPED};
    pub(crate) use super::imp::{ROWS_DEDUPED, ROWS_DOMINATED, ROWS_GENERATED};
}
