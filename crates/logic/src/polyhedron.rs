//! Conjunctions of polynomial constraints, viewed as convex polyhedra over a
//! linearized dimension space.
//!
//! Following [25, Alg. 3] (and §3 of the CHORA paper), non-linear monomials
//! are treated as *additional dimensions*: the quadratic atom `x² − y ≤ 0`
//! becomes the linear atom `d_{x²} − y ≤ 0` over the dimension `d_{x²}`.
//! All domain operations — satisfiability, Fourier–Motzkin projection,
//! convex-hull join (Balas' extended formulation), entailment — are carried
//! out on the linearized view and mapped back to polynomial atoms.

use crate::atom::{Atom, AtomKind};
use crate::stats::fm_stat;
use chora_expr::{LinearExpr, Monomial, Polynomial, Symbol};
use chora_numeric::{BigInt, BigRational};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Safety valve: when an intermediate Fourier–Motzkin system grows beyond
/// this many constraints the operation falls back to a sound but less precise
/// result (dropping constraints for projection, weak join for hulls).
const FM_CONSTRAINT_BUDGET: usize = 600;

/// A conjunction of polynomial constraint [`Atom`]s.
///
/// ```
/// use chora_logic::{Atom, Polyhedron};
/// use chora_expr::{Polynomial, Symbol};
/// use chora_numeric::rat;
/// let x = Polynomial::var(Symbol::new("x"));
/// let p = Polyhedron::from_atoms(vec![
///     Atom::ge(x.clone(), Polynomial::constant(rat(0))),
///     Atom::le(x.clone(), Polynomial::constant(rat(5))),
/// ]);
/// assert!(!p.is_empty_set());
/// assert!(p.implies_atom(&Atom::le(x, Polynomial::constant(rat(7)))));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Polyhedron {
    atoms: Vec<Atom>,
}

impl Polyhedron {
    /// The universal polyhedron (no constraints).
    pub fn universe() -> Polyhedron {
        Polyhedron { atoms: Vec::new() }
    }

    /// A polyhedron from a list of constraint atoms.
    pub fn from_atoms(atoms: Vec<Atom>) -> Polyhedron {
        let mut p = Polyhedron::universe();
        for a in atoms {
            p.add_atom(a);
        }
        p
    }

    /// Restores a polyhedron from a previously-observed `atoms()` list
    /// **verbatim** — no dedup or trivial-truth filtering, so the result is
    /// bit-identical to the polyhedron the list was read from (the
    /// summary-cache deserialization constructor; see
    /// [`crate::TransitionFormula::from_parts`]).
    pub fn from_parts(atoms: Vec<Atom>) -> Polyhedron {
        Polyhedron { atoms }
    }

    /// An explicitly unsatisfiable polyhedron.
    pub fn contradiction() -> Polyhedron {
        Polyhedron::from_atoms(vec![Atom::le_zero(Polynomial::one())])
    }

    /// Adds a constraint (drops trivially true constraints).  The atom is
    /// stored in its canonical scaling form ([`Atom::canonical`]), so two
    /// constraints that differ only by a positive scalar multiple dedup here
    /// instead of surviving as distinct atoms.
    pub fn add_atom(&mut self, atom: Atom) {
        if atom.trivial_truth() == Some(true) {
            return;
        }
        let atom = atom.canonical();
        if !self.atoms.contains(&atom) {
            self.atoms.push(atom);
        }
    }

    /// The constraint atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether there are no constraints (the universal polyhedron).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All symbols mentioned.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for a in &self.atoms {
            out.extend(a.symbols());
        }
        out
    }

    /// Conjunction of two polyhedra.
    pub fn conjoin(&self, other: &Polyhedron) -> Polyhedron {
        let mut out = self.clone();
        for a in &other.atoms {
            out.add_atom(a.clone());
        }
        out
    }

    /// Renames symbols throughout.
    pub fn rename(&self, f: &mut impl FnMut(&Symbol) -> Symbol) -> Polyhedron {
        Polyhedron {
            atoms: self.atoms.iter().map(|a| a.rename(f)).collect(),
        }
    }

    /// Substitutes a polynomial for a symbol throughout.
    pub fn substitute(&self, s: &Symbol, replacement: &Polynomial) -> Polyhedron {
        Polyhedron::from_atoms(
            self.atoms
                .iter()
                .map(|a| a.substitute(s, replacement))
                .collect(),
        )
    }

    /// Whether the polyhedron is unsatisfiable over the rationals.
    pub fn is_empty_set(&self) -> bool {
        match Linearized::new(&self.atoms) {
            None => true,
            Some(sys) => sys.is_unsat(),
        }
    }

    /// Whether every point of the polyhedron satisfies the atom.
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        if atom.trivial_truth() == Some(true) {
            return true;
        }
        // P ⊨ a  iff  P ∧ ¬a is unsatisfiable, for every disjunct of ¬a.
        atom.negate().iter().all(|neg| {
            let mut with_neg = self.clone();
            with_neg.atoms.push(neg.clone());
            with_neg.is_empty_set()
        })
    }

    /// Whether this polyhedron is contained in `other`.
    pub fn is_subset_of(&self, other: &Polyhedron) -> bool {
        other.atoms.iter().all(|a| self.implies_atom(a))
    }

    /// Whether every point of the polyhedron satisfies *all* of the atoms —
    /// a batched `goals.iter().all(|a| self.implies_atom(a))`: the
    /// polyhedron is linearized once and the dimensions that no goal
    /// mentions are eliminated by a single shared Fourier–Motzkin pass,
    /// after which each goal is checked against the much smaller residual
    /// system (one FM run per atom over the full system was the dominant
    /// cost of assertion checking on conjunction-heavy assertions).
    ///
    /// In the exact (budget-free) case the batched check decides the same
    /// linear relaxation as the per-atom checks.  When an elimination falls
    /// back to the `FM_CONSTRAINT_BUDGET` over-approximation, the shared
    /// pass may drop constraints the per-atom order would have kept, so any
    /// goal the residual system cannot prove is re-checked individually
    /// before being reported unprovable — the batched result is therefore
    /// never less precise than the per-atom one.
    pub fn implies_all(&self, goals: &[Atom]) -> bool {
        let mut pending: Vec<&Atom> = Vec::new();
        for g in goals {
            match g.trivial_truth() {
                Some(true) => continue,
                // A ground-false goal is implied only by an empty polyhedron.
                Some(false) => {
                    if !self.is_empty_set() {
                        return false;
                    }
                }
                None => pending.push(g),
            }
        }
        if pending.is_empty() {
            return true;
        }
        // A dimension table covering the polyhedron and every goal, so both
        // sides agree on the symbol of each non-linear monomial.
        let table = Linearized::dim_table(self.atoms.iter().chain(pending.iter().copied()));
        let Some(sys) = Linearized::new_with_dims(&self.atoms, table.clone()) else {
            return true; // unsatisfiable implies everything
        };
        // Linear-space symbols (base symbols and dimension symbols) the goals
        // mention; everything else is projected away once, up front.
        let mut goal_syms: BTreeSet<Symbol> = BTreeSet::new();
        for g in &pending {
            for (m, _) in g.poly.terms() {
                if m.is_one() {
                    continue;
                }
                if m.degree() == 1 {
                    let (s, _) = m.powers().next().expect("degree-1 monomial has a symbol");
                    goal_syms.insert(*s);
                } else {
                    goal_syms.insert(table[m]);
                }
            }
        }
        let mut reduced = sys;
        let drop_dims: Vec<Symbol> = reduced
            .dims()
            .into_iter()
            .filter(|d| !goal_syms.contains(d))
            .collect();
        reduced.project(&drop_dims, None);
        if reduced.unsat {
            return true;
        }
        for g in pending {
            let implied = g.negate().iter().all(|neg| {
                let Some(neg_sys) =
                    Linearized::new_with_dims(std::slice::from_ref(neg), table.clone())
                else {
                    return true; // ¬g ground-false: g trivially holds
                };
                let mut constraints = reduced.constraints.clone();
                constraints.extend(neg_sys.constraints.iter().cloned());
                reduced.with_constraints(constraints, &neg_sys).is_unsat()
            });
            if !implied && !self.implies_atom(g) {
                return false;
            }
        }
        true
    }

    /// Projects onto the given symbols: the result mentions only symbols in
    /// `keep` (non-linear monomials are kept only if all their factors are
    /// kept) and over-approximates the original polyhedron.
    pub fn project_onto(&self, keep: &BTreeSet<Symbol>) -> Polyhedron {
        let _span = chora_telemetry::trace::span("fm", "fm_project");
        let pre = self.substitute_defined_symbols(|s| !keep.contains(s));
        match Linearized::new(&pre.atoms) {
            None => Polyhedron::contradiction(),
            Some(sys) => sys
                .project_keeping(|base_syms| base_syms.iter().all(|s| keep.contains(s)))
                .to_polyhedron(),
        }
    }

    /// Eliminates the given symbols (existential quantification), keeping
    /// everything else.
    pub fn eliminate(&self, drop: &BTreeSet<Symbol>) -> Polyhedron {
        let _span = chora_telemetry::trace::span("fm", "fm_eliminate");
        let pre = self.substitute_defined_symbols(|s| drop.contains(s));
        match Linearized::new(&pre.atoms) {
            None => Polyhedron::contradiction(),
            Some(sys) => sys
                .project_keeping(|base_syms| !base_syms.iter().any(|s| drop.contains(s)))
                .to_polyhedron(),
        }
    }

    /// Pre-pass used by projection: a symbol scheduled for elimination that
    /// is *defined* by a linear equality (`x = p`, `x` not in `p`) is
    /// substituted away at the polynomial level.  Unlike Fourier–Motzkin on
    /// the linearized view, substitution also reaches occurrences of the
    /// symbol inside non-linear monomials, so relations such as `i·b ≤ c`
    /// survive the elimination of `i` when `i` is fixed by an equality.
    fn substitute_defined_symbols(&self, should_eliminate: impl Fn(&Symbol) -> bool) -> Polyhedron {
        let mut atoms = self.atoms.clone();
        loop {
            let mut substitution: Option<(usize, Symbol, Polynomial)> = None;
            'search: for (i, a) in atoms.iter().enumerate() {
                if a.kind != AtomKind::Eq {
                    continue;
                }
                for s in a.symbols() {
                    if !should_eliminate(&s) {
                        continue;
                    }
                    // Needs a linear occurrence: coefficient of the monomial
                    // `s` with `s` absent from every other monomial non-linearly.
                    let m = chora_expr::Monomial::var(s);
                    let coeff = a.poly.coefficient(&m);
                    if coeff.is_zero() {
                        continue;
                    }
                    let rest = &a.poly - &Polynomial::term(coeff.clone(), m);
                    if rest.symbols().contains(&s) {
                        continue;
                    }
                    let replacement = rest.scale(&(-coeff).recip());
                    substitution = Some((i, s, replacement));
                    break 'search;
                }
            }
            match substitution {
                None => break,
                Some((i, s, replacement)) => {
                    atoms.remove(i);
                    atoms = atoms
                        .into_iter()
                        .map(|a| a.substitute(&s, &replacement))
                        .collect();
                }
            }
        }
        Polyhedron::from_atoms(atoms)
    }

    /// Convex-hull join (the ⊔ of Alg. 1).
    ///
    /// Uses Balas' extended formulation projected by Fourier–Motzkin; if the
    /// intermediate system exceeds the constraint budget, falls back to the
    /// sound *weak join* (mutually implied constraints).
    pub fn join(&self, other: &Polyhedron) -> Polyhedron {
        if self.is_empty_set() {
            return other.clone();
        }
        if other.is_empty_set() {
            return self.clone();
        }
        if let Some(hull) = self.try_exact_join(other) {
            return hull;
        }
        self.weak_join(other)
    }

    fn try_exact_join(&self, other: &Polyhedron) -> Option<Polyhedron> {
        // Both operands must agree on the dimension symbol of every shared
        // non-linear monomial, so a joint dimension table is built up front.
        let dim_table = Linearized::dim_table(self.atoms.iter().chain(other.atoms.iter()));
        let left = Linearized::new_with_dims(&self.atoms, dim_table.clone())?;
        let right = Linearized::new_with_dims(&other.atoms, dim_table)?;
        // Collect the union of dimensions.
        let mut dims: BTreeSet<Symbol> = BTreeSet::new();
        dims.extend(left.dims());
        dims.extend(right.dims());
        if dims.len() > 24 {
            return None;
        }
        // Operation-local scratch symbols: `λ` and one copy `z_d` per
        // dimension, all eliminated before this function returns.  Scratch
        // ids are assigned in dimension order, so the construction is fully
        // deterministic (the former implementation drew from the global
        // fresh-symbol counter).
        let lambda = Symbol::scratch(0);
        let mut z_names: BTreeMap<Symbol, Symbol> = BTreeMap::new();
        for (i, d) in dims.iter().enumerate() {
            z_names.insert(*d, Symbol::scratch(1 + i as u32));
        }
        let mut constraints: Vec<(LinearExpr, AtomKind)> = Vec::new();
        // P1 constraints on y = x - z, scaled by λ:  Σ aᵢ(xᵢ - zᵢ) + c·λ ◇ 0
        for (expr, kind) in left.constraints() {
            let mut e = LinearExpr::constant(BigRational::zero());
            for (s, c) in expr.coefficients() {
                e.add_coefficient(*s, c.clone());
                e.add_coefficient(z_names[s], -c.clone());
            }
            e.add_coefficient(lambda, expr.constant_term().clone());
            constraints.push((e, *kind));
        }
        // P2 constraints on z, scaled by (1-λ):  Σ bᵢ zᵢ + c·(1-λ) ◇ 0
        for (expr, kind) in right.constraints() {
            let mut e = LinearExpr::constant(expr.constant_term().clone());
            for (s, c) in expr.coefficients() {
                e.add_coefficient(z_names[s], c.clone());
            }
            e.add_coefficient(lambda, -expr.constant_term().clone());
            constraints.push((e, *kind));
        }
        // 0 ≤ λ ≤ 1
        constraints.push((
            LinearExpr::var(lambda).scale(&-BigRational::one()),
            AtomKind::Le,
        ));
        constraints.push((
            LinearExpr::var(lambda) + LinearExpr::constant(-BigRational::one()),
            AtomKind::Le,
        ));
        // Eliminate z's and λ; abort to the weak join if an intermediate
        // system overruns the budget.
        let mut to_drop: Vec<Symbol> = z_names.values().cloned().collect();
        to_drop.push(lambda);
        let mut sys = left.with_constraints(constraints, &right);
        if !sys.project(&to_drop, Some(FM_CONSTRAINT_BUDGET)) {
            return None;
        }
        Some(sys.to_polyhedron())
    }

    /// Weak join: constraints of either operand that are implied by the other.
    pub fn weak_join(&self, other: &Polyhedron) -> Polyhedron {
        let mut out = Polyhedron::universe();
        for a in &self.atoms {
            if other.implies_atom(a) {
                out.add_atom(a.clone());
            } else if a.kind == AtomKind::Eq {
                // An equality may weaken to a one-sided inequality.
                let le = Atom::le_zero(a.poly.clone());
                let ge = Atom::le_zero(-&a.poly);
                if other.implies_atom(&le) {
                    out.add_atom(le);
                }
                if other.implies_atom(&ge) {
                    out.add_atom(ge);
                }
            }
        }
        for a in &other.atoms {
            if self.implies_atom(a) {
                out.add_atom(a.clone());
            } else if a.kind == AtomKind::Eq {
                let le = Atom::le_zero(a.poly.clone());
                let ge = Atom::le_zero(-&a.poly);
                if self.implies_atom(&le) {
                    out.add_atom(le);
                }
                if self.implies_atom(&ge) {
                    out.add_atom(ge);
                }
            }
        }
        out
    }

    /// All upper bounds the polyhedron places on the symbol `s`
    /// (constraints of the form `s ≤ p` with `s` not occurring in `p`).
    pub fn upper_bounds_on(&self, s: &Symbol) -> Vec<Polynomial> {
        let mut out = Vec::new();
        for a in &self.atoms {
            match a.kind {
                AtomKind::Le | AtomKind::Lt => {
                    if let Some(b) = a.upper_bound_on(s) {
                        out.push(b);
                    }
                }
                AtomKind::Eq => {
                    if let Some(b) = Atom::le_zero(a.poly.clone()).upper_bound_on(s) {
                        out.push(b);
                    } else if let Some(b) = Atom::le_zero(-&a.poly).upper_bound_on(s) {
                        out.push(b);
                    }
                }
            }
        }
        out
    }

    /// Normalizes the constraint list: removes duplicates, trivially-true
    /// atoms, and inequalities subsumed by a tighter parallel inequality.
    pub fn simplify(&self) -> Polyhedron {
        match Linearized::new(&self.atoms) {
            None => Polyhedron::contradiction(),
            Some(sys) => sys.to_polyhedron(),
        }
    }

    /// The pre-optimization projection baseline: fixed elimination order, no
    /// canonical-row hashing, no domination pruning, no Imbert acceleration.
    /// Kept as the differential-testing oracle and the benchmark baseline;
    /// not part of the public API.
    #[doc(hidden)]
    pub fn project_onto_naive(&self, keep: &BTreeSet<Symbol>) -> Polyhedron {
        let pre = self.substitute_defined_symbols(|s| !keep.contains(s));
        match Linearized::new(&pre.atoms) {
            None => Polyhedron::contradiction(),
            Some(sys) => sys
                .naive_project(|base_syms| base_syms.iter().all(|s| keep.contains(s)))
                .to_polyhedron(),
        }
    }

    /// Baseline satisfiability via fixed-order elimination (see
    /// [`Polyhedron::project_onto_naive`]).
    #[doc(hidden)]
    pub fn is_empty_set_naive(&self) -> bool {
        match Linearized::new(&self.atoms) {
            None => true,
            Some(sys) => sys.naive_is_unsat(),
        }
    }

    /// Baseline entailment via [`Polyhedron::is_empty_set_naive`].
    #[doc(hidden)]
    pub fn implies_atom_naive(&self, atom: &Atom) -> bool {
        if atom.trivial_truth() == Some(true) {
            return true;
        }
        atom.negate().iter().all(|neg| {
            let mut with_neg = self.clone();
            with_neg.atoms.push(neg.clone());
            with_neg.is_empty_set_naive()
        })
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A linearized constraint system: polynomial atoms become linear constraints
/// over base symbols plus one dimension symbol per non-linear monomial.
///
/// Dimension symbols are *operation-local*: every entry point collects the
/// non-linear monomials of its input atoms and assigns [`Symbol::dimension`]
/// ids in monomial order, so the mapping is a deterministic function of the
/// inputs (the former implementation interned a rendered `$dim[m]` name per
/// monomial, paying a string allocation and a global interner lookup per
/// non-linear term).
struct Linearized {
    /// dimension symbol -> the non-linear monomial it represents
    mono_dims: BTreeMap<Symbol, Monomial>,
    /// the non-linear monomial -> its dimension symbol
    dim_of: BTreeMap<Monomial, Symbol>,
    /// linear constraints `expr ◇ 0`
    constraints: Vec<(LinearExpr, AtomKind)>,
    /// marker set when a trivially-false constraint is encountered
    unsat: bool,
}

/// Reusable buffers for [`Linearized::eliminate_dim`].
///
/// One scratch lives for a whole elimination pass (a `project`, `is_unsat`,
/// or join loop), so the pos/neg partition and the output row list keep
/// their allocations across dimensions instead of being rebuilt per
/// dimension.  The third tuple field is the (positive) coefficient the
/// combination step multiplies the opposite row by; the rows themselves are
/// stored with the eliminated dimension already stripped.
#[derive(Default)]
struct FmScratch {
    pos: Vec<(LinearExpr, AtomKind, BigRational)>,
    neg: Vec<(LinearExpr, AtomKind, BigRational)>,
    out: Vec<(LinearExpr, AtomKind)>,
}

/// Imbert ancestor set of a derived row: which of the pass's input rows it
/// is a nonnegative combination of.  Exact for the first 128 input rows;
/// beyond that `overflow` makes [`Ancestors::at_least`] a lower bound, which
/// only ever *weakens* the pruning (a combination is skipped only when even
/// the known part of its history already exceeds Imbert's bound).
#[derive(Clone, Copy, Default)]
struct Ancestors {
    bits: u128,
    overflow: bool,
}

impl Ancestors {
    fn origin(i: usize) -> Ancestors {
        if i < 128 {
            Ancestors {
                bits: 1u128 << i,
                overflow: false,
            }
        } else {
            Ancestors {
                bits: 0,
                overflow: true,
            }
        }
    }

    fn union(a: Ancestors, b: Ancestors) -> Ancestors {
        Ancestors {
            bits: a.bits | b.bits,
            overflow: a.overflow || b.overflow,
        }
    }

    /// A lower bound on the cardinality of the ancestor set.
    fn at_least(self) -> usize {
        self.bits.count_ones() as usize + self.overflow as usize
    }
}

/// Certified `a ⊆ b`: both sets must be exact, because an overflowed side
/// hides members the bit view cannot compare.  This is the test the
/// slot-collision rules use — Kohler completeness composes through row
/// replacement only when the survivor's ancestor *set* is contained in the
/// dying row's (`|A ∪ C| ≤ |A' ∪ C|` needs `A ⊆ A'`; a mere cardinality
/// comparison does not survive the union with a sibling's history).
fn anc_subset(a: Ancestors, b: Ancestors) -> bool {
    !a.overflow && !b.overflow && a.bits & !b.bits == 0
}

/// The set of dimensions a derived row has lost along its derivation —
/// eliminated explicitly by the pass *or* cancelled accidentally by a
/// combination step.  Kohler's redundancy criterion compares the ancestor
/// count against `1 + |gone|` **per row**; the explicit elimination count
/// alone under-states `|gone|` whenever a cancellation happens, which is why
/// this is tracked exactly.  The direction of safety is the opposite of
/// [`Ancestors`]: `overflow` here means the count is *unknown*, so the
/// pruning test must be declined rather than approximated.
#[derive(Clone, Copy, Default)]
struct GoneDims {
    bits: u128,
    overflow: bool,
}

impl GoneDims {
    fn union(a: GoneDims, b: GoneDims) -> GoneDims {
        GoneDims {
            bits: a.bits | b.bits,
            overflow: a.overflow || b.overflow,
        }
    }

    /// Marks one dimension (by its pass-wide bit index) as gone; `None`
    /// (a dimension past the 128-bit window) poisons the set.
    fn insert(&mut self, bit: Option<usize>) {
        match bit {
            Some(i) if i < 128 => self.bits |= 1u128 << i,
            _ => self.overflow = true,
        }
    }

    /// The exact cardinality, or `None` when the set overflowed and only a
    /// lower bound is known (unusable for Kohler's test).
    fn exact(self) -> Option<usize> {
        (!self.overflow).then(|| self.bits.count_ones() as usize)
    }
}

/// One live constraint of a projection pass: a canonical row plus its
/// derivation certificate — the Imbert ancestor set and gone-dimension set.
///
/// **Certificate poisoning.**  Kohler's skip is only complete if, for every
/// facet of the projection, some surviving lineage keeps a within-bound
/// history: the textbook argument threads facets through extreme-ray
/// derivations whose histories stay under the bound at every step, and that
/// argument composes through row replacement only when the survivor's
/// ancestor set is a *subset* of the dying row's ([`anc_subset`]).
/// Constant-domination freely violates this — it keeps one row per
/// coefficient vector and drops looser parallel rows whose distinct
/// histories a later contradiction may need (pure Fourier–Motzkin keeps
/// both, which is why the counting criteria are usually stated without
/// domination).  So at every slot collision where the surviving
/// certificate is not certifiably contained in the dying one — or either
/// side is already tainted — the survivor's `gone` set is poisoned
/// (`overflow = true`): its descendants are exempt from the counting skip,
/// while every other pruning layer still applies.  Poison is sticky (it
/// propagates through [`GoneDims::union`] and is inherited across
/// replacements), which keeps the skip sound at the price of firing less
/// often on domination-heavy systems.
struct FmRow {
    expr: LinearExpr,
    kind: AtomKind,
    anc: Ancestors,
    gone: GoneDims,
}

/// Scales a row so its coefficient vector is the unique coprime-integer
/// representative of its ray (the constant term may stay rational).
/// Positive scalar multiples of the same constraint thereby become identical
/// rows, which is what lets [`RowStore`] dedup and dominate them by hashing.
/// Equations are deliberately *not* sign-flipped here — downstream bound
/// extraction reads their orientation — the sign convention lives in the
/// hash key instead (see [`RowStore::insert`]).  The caller guarantees the
/// row is not constant.
fn canonicalize_row(expr: &mut LinearExpr) {
    let mut lcm = BigInt::one();
    for (_, c) in expr.coefficients() {
        lcm = lcm.lcm(c.denom());
    }
    if !lcm.is_one() {
        *expr = expr.scale(&BigRational::from_integer(lcm));
    }
    let mut gcd = BigInt::zero();
    for (_, c) in expr.coefficients() {
        gcd = gcd.gcd(c.numer());
    }
    let k = BigRational::from_integer(gcd).recip();
    if !k.is_one() {
        *expr = expr.scale(&k);
    }
}

/// Whether an equation's stored orientation is flipped relative to its
/// canonical hash-key orientation (least symbol's coefficient positive).
/// `p = 0` and `-p = 0` are the same constraint, so both must land in the
/// same [`RowStore`] bucket; inequalities never flip.
fn eq_key_flipped(row: &FmRow) -> bool {
    row.kind == AtomKind::Eq
        && row
            .expr
            .coefficients()
            .next()
            .is_some_and(|(_, c)| c.is_negative())
}

/// The row's constant term read in key orientation (negated for flipped
/// equations), so parallel rows compare on a common orientation.
fn oriented_const(row: &FmRow) -> BigRational {
    if eq_key_flipped(row) {
        -row.expr.constant_term().clone()
    } else {
        row.expr.constant_term().clone()
    }
}

/// The redundancy-controlled constraint set of a projection pass.
///
/// Every inserted row is brought to canonical form first (see
/// [`canonicalize_row`]), so rows that are positive scalar multiples of one
/// another collide.  The store then keeps at most one row per linear part:
/// syntactic duplicates are dropped (hash-consing), parallel inequalities
/// keep only the tighter constant (quasi-syntactic domination), an equation
/// absorbs the parallel inequalities it implies, and contradictory parallel
/// rows flip the store to `unsat` — the early exit that `implies_atom` and
/// `implies_all` rely on.
///
/// Kill-or-replace decisions go through the `index` HashMap, but the map is
/// never iterated: surviving rows are read back in insertion order, so every
/// result is deterministic.
#[derive(Default)]
struct RowStore {
    /// Rows in insertion order; `None` marks a dominated (killed) row.
    rows: Vec<Option<FmRow>>,
    /// Number of live rows.
    live: usize,
    /// Canonical linear part (constant zeroed) -> index of its live row.
    index: HashMap<LinearExpr, usize>,
    /// Set when two parallel rows contradict or a ground-false row arrives.
    unsat: bool,
}

impl RowStore {
    fn with_capacity(n: usize) -> RowStore {
        RowStore {
            rows: Vec::with_capacity(n),
            live: 0,
            index: HashMap::with_capacity(n),
            unsat: false,
        }
    }

    /// Whether `diff ◇ 0` holds, for the slack between parallel rows.
    fn slack_holds(diff: &BigRational, kind: AtomKind) -> bool {
        match kind {
            AtomKind::Le => !diff.is_positive(),
            AtomKind::Lt => diff.is_negative(),
            AtomKind::Eq => diff.is_zero(),
        }
    }

    /// Resolves a slot's certificate after an exact duplicate arrived: the
    /// same constraint now has two derivations and either certificate is
    /// valid for it, so keep whichever ancestor set is contained in the
    /// other.  Incomparable sets, or taint on either side, poison the slot
    /// (see the note on [`FmRow`]).
    fn dedup_cert(kept: &mut FmRow, dup: &FmRow) {
        let tainted = kept.gone.overflow || dup.gone.overflow;
        if anc_subset(dup.anc, kept.anc) {
            kept.anc = dup.anc;
            kept.gone = dup.gone;
        } else if !anc_subset(kept.anc, dup.anc) {
            kept.gone.overflow = true;
        }
        kept.gone.overflow |= tainted;
    }

    /// Poisons the surviving row of a domination kill unless its ancestor
    /// set is certifiably contained in the dying row's untainted one —
    /// the only case in which Kohler completeness survives the kill (see
    /// the note on [`FmRow`]).
    fn domination_cert(survivor: &mut FmRow, dying: &FmRow) {
        if !anc_subset(survivor.anc, dying.anc) || dying.gone.overflow {
            survivor.gone.overflow = true;
        }
    }

    /// Inserts a row, resolving it against the store's row with the same
    /// linear part (if any).  `canonical` says the expression is already in
    /// canonical form and need not be re-scaled.
    fn insert(&mut self, mut row: FmRow, canonical: bool) {
        if self.unsat {
            return;
        }
        if row.expr.is_constant() {
            if !Self::slack_holds(row.expr.constant_term(), row.kind) {
                self.unsat = true;
            }
            return;
        }
        if !canonical {
            canonicalize_row(&mut row.expr);
        }
        let mut key = if eq_key_flipped(&row) {
            row.expr.scale(&-BigRational::one())
        } else {
            row.expr.clone()
        };
        let neg_const = -key.constant_term().clone();
        key.add_constant(&neg_const);
        match self.index.entry(key) {
            Entry::Vacant(v) => {
                v.insert(self.rows.len());
                self.rows.push(Some(row));
                self.live += 1;
            }
            Entry::Occupied(mut o) => {
                let id = *o.get();
                let prev = self.rows[id].as_ref().expect("index points at live rows");
                match (prev.kind, row.kind) {
                    (AtomKind::Eq, AtomKind::Eq) => {
                        // `p = 0` and `-p = 0` share a bucket; compare the
                        // constants in key orientation.
                        if oriented_const(prev) == oriented_const(&row) {
                            Self::dedup_cert(self.rows[id].as_mut().expect("live"), &row);
                            fm_stat!(ROWS_DEDUPED);
                        } else {
                            self.unsat = true;
                        }
                    }
                    (AtomKind::Eq, _) => {
                        // prev: L + a = 0, new: L + b ◇ 0  ⇒  b − a ◇ 0
                        // (both read in key orientation).
                        let diff = row.expr.constant_term() - &oriented_const(prev);
                        if Self::slack_holds(&diff, row.kind) {
                            fm_stat!(ROWS_DOMINATED);
                            Self::domination_cert(self.rows[id].as_mut().expect("live"), &row);
                        } else {
                            self.unsat = true;
                        }
                    }
                    (_, AtomKind::Eq) => {
                        let diff = prev.expr.constant_term() - &oriented_const(&row);
                        let prev_kind = prev.kind;
                        if Self::slack_holds(&diff, prev_kind) {
                            fm_stat!(ROWS_DOMINATED);
                            Self::domination_cert(&mut row, prev);
                            self.rows[id] = None;
                            self.live -= 1;
                            o.insert(self.rows.len());
                            self.rows.push(Some(row));
                            self.live += 1;
                        } else {
                            self.unsat = true;
                        }
                    }
                    (pk, nk) => {
                        // Parallel inequalities: the larger constant is
                        // tighter; on ties a strict inequality beats a
                        // non-strict one (as the old `normalize` ruled).
                        let prev_c = prev.expr.constant_term();
                        let new_c = row.expr.constant_term();
                        let same_constant = prev_c == new_c;
                        let prev_at_least_as_tight = prev_c > new_c
                            || (same_constant && (pk == AtomKind::Lt || nk == AtomKind::Le));
                        if prev_at_least_as_tight {
                            if same_constant && pk == nk {
                                Self::dedup_cert(self.rows[id].as_mut().expect("live"), &row);
                                fm_stat!(ROWS_DEDUPED);
                            } else {
                                fm_stat!(ROWS_DOMINATED);
                                Self::domination_cert(self.rows[id].as_mut().expect("live"), &row);
                            }
                        } else {
                            fm_stat!(ROWS_DOMINATED);
                            Self::domination_cert(&mut row, prev);
                            self.rows[id] = None;
                            self.live -= 1;
                            o.insert(self.rows.len());
                            self.rows.push(Some(row));
                            self.live += 1;
                        }
                    }
                }
            }
        }
    }

    /// The live rows, in insertion order.
    fn take_rows(self) -> Vec<FmRow> {
        self.rows.into_iter().flatten().collect()
    }

    /// The live rows as constraint pairs, in insertion order.
    fn into_pairs(self) -> Vec<(LinearExpr, AtomKind)> {
        self.rows
            .into_iter()
            .flatten()
            .map(|r| (r.expr, r.kind))
            .collect()
    }
}

/// The greedy elimination choice: any dimension an equation mentions comes
/// first (substitution strictly shrinks the system), otherwise the minimizer
/// of Chvátal's growth estimate `pos·neg − (pos + neg)`; ties break toward
/// the smallest symbol, so the order is deterministic.
fn choose_dim(occ: &BTreeMap<Symbol, (i64, i64, bool)>) -> Option<Symbol> {
    let mut best: Option<(bool, i64, Symbol)> = None;
    for (s, (pos, neg, eq)) in occ {
        let cand = if *eq {
            (false, 0, *s)
        } else {
            (true, pos * neg - pos - neg, *s)
        };
        let better = match best {
            None => true,
            Some(b) => cand < b,
        };
        if better {
            best = Some(cand);
        }
    }
    best.map(|(_, _, s)| s)
}

/// Eliminates `d` from the store: by substitution through an equation when
/// one mentions `d`, otherwise by pos×neg Fourier–Motzkin combination.
/// `imbert` maps every dimension of the system to its bit in the per-row
/// [`GoneDims`] set (`None` once equality substitution has mixed Gaussian
/// steps into the ancestor accounting); a combined row is dropped when
/// Kohler's criterion — more than `1 + |gone|` ancestors — proves it
/// redundant.  Returns the new store and whether the step substituted.
fn eliminate_rows(
    store: RowStore,
    d: &Symbol,
    imbert: Option<&BTreeMap<Symbol, usize>>,
) -> (RowStore, bool) {
    let mut rows = store.take_rows();
    let mut next = RowStore::with_capacity(rows.len());
    if let Some(eq_idx) = rows
        .iter()
        .position(|r| r.kind == AtomKind::Eq && !r.expr.coefficient(d).is_zero())
    {
        let eq = rows.swap_remove(eq_idx);
        // swap_remove breaks insertion order; restore it so the surviving
        // row order (and hence every downstream result) stays deterministic.
        if eq_idx < rows.len() {
            let moved = rows.pop().expect("swap_remove left a moved row");
            rows.insert(eq_idx, moved);
        }
        let coeff = eq.expr.coefficient(d);
        let mut rest = eq.expr;
        rest.add_coefficient(*d, -coeff.clone());
        let replacement = rest.scale(&(-coeff.recip()));
        for r in rows {
            if r.expr.coefficient(d).is_zero() {
                next.insert(r, true);
            } else {
                fm_stat!(ROWS_GENERATED);
                let expr = r.expr.substitute(d, &replacement);
                next.insert(
                    FmRow {
                        expr,
                        kind: r.kind,
                        anc: Ancestors::union(r.anc, eq.anc),
                        // Substitution disables Imbert pruning for the rest
                        // of the pass, so the gone set is carried but unread.
                        gone: GoneDims::union(r.gone, eq.gone),
                    },
                    false,
                );
            }
            if next.unsat {
                break;
            }
        }
        return (next, true);
    }
    let mut pos: Vec<(LinearExpr, AtomKind, BigRational, Ancestors, GoneDims)> = Vec::new();
    let mut neg: Vec<(LinearExpr, AtomKind, BigRational, Ancestors, GoneDims)> = Vec::new();
    for r in rows {
        let c = r.expr.coefficient(d);
        if c.is_zero() {
            next.insert(r, true);
        } else {
            let mut e = r.expr;
            e.add_coefficient(*d, -c.clone());
            if c.is_positive() {
                pos.push((e, r.kind, c, r.anc, r.gone));
            } else {
                neg.push((e, r.kind, -c, r.anc, r.gone));
            }
        }
    }
    if pos.len() * neg.len() + next.live > FM_CONSTRAINT_BUDGET {
        // Over-approximate: drop every row involving d (the pre-existing
        // budget fallback).
        return (next, false);
    }
    'combine: for (p_rest, pk, pc, pa, pg) in &pos {
        for (n_rest, nk, n_abs, na, ng) in &neg {
            let anc = Ancestors::union(*pa, *na);
            let combined = n_rest.scaled_sum(pc, p_rest, n_abs);
            // The combined row loses `d` plus any dimension the two parents
            // mention that cancelled accidentally in the sum; Kohler's
            // criterion needs both kinds counted, so the gone set is only
            // known after the row is materialized.
            let mut gone = GoneDims::union(*pg, *ng);
            if let Some(dims) = imbert {
                gone.insert(dims.get(d).copied());
                for (s, _) in p_rest.coefficients().chain(n_rest.coefficients()) {
                    if combined.coefficient(s).is_zero() {
                        gone.insert(dims.get(s).copied());
                    }
                }
                // Kohler: a row derived from more than `1 + |gone|` original
                // rows is a nonnegative combination of rows with smaller
                // histories, hence redundant.  The test is stated for
                // non-strict systems, so it only fires on an all-`Le`
                // derivation (`Lt` is sticky through combination), and an
                // overflowed gone set declines rather than guesses.
                if let Some(count) = gone.exact() {
                    if (*pk, *nk) == (AtomKind::Le, AtomKind::Le) && anc.at_least() > 1 + count {
                        fm_stat!(IMBERT_SKIPPED);
                        continue;
                    }
                }
            }
            fm_stat!(ROWS_GENERATED);
            let kind = match (pk, nk) {
                (AtomKind::Lt, _) | (_, AtomKind::Lt) => AtomKind::Lt,
                _ => AtomKind::Le,
            };
            next.insert(
                FmRow {
                    expr: combined,
                    kind,
                    anc,
                    gone,
                },
                false,
            );
            if next.unsat {
                break 'combine;
            }
        }
    }
    (next, false)
}

impl Linearized {
    /// Assigns a dimension symbol to every non-linear monomial occurring in
    /// the atoms, in monomial order.
    fn dim_table<'a>(atoms: impl Iterator<Item = &'a Atom>) -> BTreeMap<Monomial, Symbol> {
        let mut monomials: BTreeSet<Monomial> = BTreeSet::new();
        for a in atoms {
            for (m, _) in a.poly.terms() {
                if m.degree() > 1 {
                    monomials.insert(m.clone());
                }
            }
        }
        monomials
            .into_iter()
            .enumerate()
            .map(|(i, m)| (m, Symbol::dimension(i as u32)))
            .collect()
    }

    /// Builds the linearized view; returns `None` if a trivially false ground
    /// atom is present (caller should treat the system as unsatisfiable).
    fn new(atoms: &[Atom]) -> Option<Linearized> {
        Linearized::new_with_dims(atoms, Linearized::dim_table(atoms.iter()))
    }

    /// Builds the linearized view with a pre-assigned dimension table (used
    /// by joins, where both operands must share dimension symbols).
    fn new_with_dims(atoms: &[Atom], dim_of: BTreeMap<Monomial, Symbol>) -> Option<Linearized> {
        let mut sys = Linearized {
            mono_dims: dim_of.iter().map(|(m, d)| (*d, m.clone())).collect(),
            dim_of,
            constraints: Vec::new(),
            unsat: false,
        };
        for a in atoms {
            match a.trivial_truth() {
                Some(true) => continue,
                Some(false) => return None,
                None => {}
            }
            let expr = sys.linearize_poly(&a.poly);
            sys.constraints.push((expr, a.kind));
        }
        sys.normalize();
        if sys.unsat {
            None
        } else {
            Some(sys)
        }
    }

    fn linearize_poly(&mut self, p: &Polynomial) -> LinearExpr {
        let mut out = LinearExpr::constant(BigRational::zero());
        for (m, c) in p.terms() {
            if m.is_one() {
                out.add_constant(c);
            } else if m.degree() == 1 {
                let (s, _) = m.powers().next().expect("degree-1 monomial has a symbol");
                out.add_coefficient(*s, c.clone());
            } else {
                let dim = *self
                    .dim_of
                    .get(m)
                    .expect("dimension table covers every non-linear monomial");
                out.add_coefficient(dim, c.clone());
            }
        }
        out
    }

    fn delinearize(&self, expr: &LinearExpr) -> Polynomial {
        let mut p = Polynomial::constant(expr.constant_term().clone());
        for (s, c) in expr.coefficients() {
            let m = match self.mono_dims.get(s) {
                Some(m) => m.clone(),
                None => Monomial::var(*s),
            };
            p = &p + &Polynomial::term(c.clone(), m);
        }
        p
    }

    fn dims(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for (e, _) in &self.constraints {
            out.extend(e.symbols());
        }
        out
    }

    fn constraints(&self) -> &[(LinearExpr, AtomKind)] {
        &self.constraints
    }

    /// Builds a new system sharing the monomial-dimension tables of `self`
    /// and `other`, with the given constraints.
    fn with_constraints(
        &self,
        constraints: Vec<(LinearExpr, AtomKind)>,
        other: &Linearized,
    ) -> Linearized {
        let mut mono_dims = self.mono_dims.clone();
        mono_dims.extend(other.mono_dims.clone());
        let mut dim_of = self.dim_of.clone();
        dim_of.extend(other.dim_of.clone());
        let mut sys = Linearized {
            mono_dims,
            dim_of,
            constraints,
            unsat: false,
        };
        sys.normalize();
        sys
    }

    /// The base (program-level) symbols a dimension depends on.
    fn base_symbols(&self, dim: &Symbol) -> Vec<Symbol> {
        match self.mono_dims.get(dim) {
            Some(m) => m.symbols().into_iter().collect(),
            None => vec![*dim],
        }
    }

    /// Canonicalizes every row and removes duplicates, trivial constraints,
    /// and parallel rows dominated by a tighter constant; detects ground and
    /// parallel contradictions (the early-unsat entry of the projection
    /// pipeline).
    fn normalize(&mut self) {
        if self.unsat {
            return;
        }
        let mut store = RowStore::with_capacity(self.constraints.len());
        for (i, (e, k)) in std::mem::take(&mut self.constraints)
            .into_iter()
            .enumerate()
        {
            store.insert(
                FmRow {
                    expr: e,
                    kind: k,
                    anc: Ancestors::origin(i),
                    gone: GoneDims::default(),
                },
                false,
            );
        }
        if store.unsat {
            self.unsat = true;
            return;
        }
        self.constraints = store.into_pairs();
    }

    /// The pre-optimization `normalize`: duplicate / trivial / parallel-
    /// subsumption filtering without canonical scaling, exactly as the fixed-
    /// order baseline ran it.  Used only by the `naive_*` oracle path.
    fn naive_normalize(&mut self) {
        // Keyed by the normalized coefficient vector (without constant).
        let mut kept: Vec<(LinearExpr, AtomKind)> = Vec::new();
        for (expr, kind) in std::mem::take(&mut self.constraints) {
            if expr.is_constant() {
                let c = expr.constant_term();
                let holds = match kind {
                    AtomKind::Le => !c.is_positive(),
                    AtomKind::Lt => c.is_negative(),
                    AtomKind::Eq => c.is_zero(),
                };
                if !holds {
                    self.unsat = true;
                    return;
                }
                continue;
            }
            kept.push((expr, kind));
        }
        // Subsumption between parallel inequalities with identical linear part.
        let mut result: Vec<(LinearExpr, AtomKind)> = Vec::new();
        'outer: for (expr, kind) in kept {
            let mut i = 0;
            while i < result.len() {
                let (prev_expr, prev_kind) = &result[i];
                if Self::same_linear_part(prev_expr, &expr) {
                    match (prev_kind, kind) {
                        (AtomKind::Eq, _) | (_, AtomKind::Eq) => {
                            // Keep both unless identical; equality handling is
                            // precision-sensitive so do not subsume.
                            if prev_expr == &expr && *prev_kind == kind {
                                continue 'outer;
                            }
                        }
                        _ => {
                            // expr + c ≤/< 0 : larger constant is tighter;
                            // on ties a strict inequality is tighter than a
                            // non-strict one.
                            let prev_c = prev_expr.constant_term();
                            let new_c = expr.constant_term();
                            let prev_at_least_as_tight = prev_c > new_c
                                || (prev_c == new_c
                                    && (*prev_kind == AtomKind::Lt || kind == AtomKind::Le));
                            if prev_at_least_as_tight {
                                continue 'outer;
                            }
                            result.remove(i);
                            continue;
                        }
                    }
                }
                i += 1;
            }
            result.push((expr, kind));
        }
        self.constraints = result;
    }

    fn same_linear_part(a: &LinearExpr, b: &LinearExpr) -> bool {
        let za = a - &LinearExpr::constant(a.constant_term().clone());
        let zb = b - &LinearExpr::constant(b.constant_term().clone());
        za == zb
    }

    /// Fixed-order Fourier–Motzkin elimination of a single dimension — the
    /// pre-optimization implementation, kept verbatim as the `naive_*`
    /// oracle.  The production path is [`Linearized::project`].
    ///
    /// When the intermediate system would exceed the constraint budget, the
    /// constraints involving the dimension are dropped instead (a sound
    /// over-approximation).
    ///
    /// `scratch` holds the pos/neg partition and output buffers; reusing one
    /// [`FmScratch`] across a whole elimination pass means the partition
    /// vectors are allocated once per pass instead of once per dimension,
    /// and each dimension's coefficient is stripped from its row exactly
    /// once (outside the pos×neg combination loop).
    fn naive_eliminate_dim(&mut self, d: &Symbol, scratch: &mut FmScratch) {
        if self.unsat {
            return;
        }
        // Prefer substitution through an equality involving d.
        if let Some(idx) = self
            .constraints
            .iter()
            .position(|(e, k)| *k == AtomKind::Eq && !e.coefficient(d).is_zero())
        {
            let (eq_expr, _) = self.constraints.remove(idx);
            let coeff = eq_expr.coefficient(d);
            // d = -(rest)/coeff
            let mut rest = eq_expr;
            rest.add_coefficient(*d, -coeff.clone());
            let replacement = rest.scale(&(-coeff.recip()));
            for (e, _) in self.constraints.iter_mut() {
                if !e.coefficient(d).is_zero() {
                    *e = e.substitute(d, &replacement);
                }
            }
            self.naive_normalize();
            return;
        }
        scratch.pos.clear();
        scratch.neg.clear();
        scratch.out.clear();
        for (mut e, k) in self.constraints.drain(..) {
            let c = e.coefficient(d);
            if c.is_zero() {
                scratch.out.push((e, k));
            } else if c.is_positive() {
                // Strip d here, once, so the stored row IS the p_rest of the
                // combination formula below.
                e.add_coefficient(*d, -c.clone());
                scratch.pos.push((e, k, c));
            } else {
                e.add_coefficient(*d, -c.clone());
                // Store |c| (= -c > 0), the factor the combination needs.
                scratch.neg.push((e, k, -c));
            }
        }
        if scratch.pos.len() * scratch.neg.len() + scratch.out.len() > FM_CONSTRAINT_BUDGET {
            // Over-approximate: drop every constraint involving d.
            std::mem::swap(&mut self.constraints, &mut scratch.out);
            self.naive_normalize();
            return;
        }
        for (p_rest, pk, pc) in &scratch.pos {
            for (n_rest, nk, n_abs) in &scratch.neg {
                // pos: pc·d + p_rest ◇ 0  (pc > 0)  =>  d ≤ -p_rest/pc (for ◇ = ≤)
                // neg: nc·d + n_rest ◇ 0  (nc < 0)  =>  d ≥ n_rest/(-nc)
                // combined:  n_rest/(-nc) ≤ -p_rest/pc
                //            pc·n_rest + (-nc)·p_rest ≤ 0
                let combined = n_rest.scaled_sum(pc, p_rest, n_abs);
                let kind = match (pk, nk) {
                    (AtomKind::Lt, _) | (_, AtomKind::Lt) => AtomKind::Lt,
                    _ => AtomKind::Le,
                };
                scratch.out.push((combined, kind));
            }
        }
        std::mem::swap(&mut self.constraints, &mut scratch.out);
        self.naive_normalize();
    }

    /// The single Fourier–Motzkin entry point: eliminates every symbol in
    /// `drop`, greedily picking at each step a dimension an equation fixes
    /// (substitution strictly shrinks the system) or, failing that, the one
    /// minimizing Chvátal's `pos·neg − pos − neg` growth estimate over the
    /// current rows.  Rows flow through a [`RowStore`] — canonical form,
    /// hash-cons dedup, domination pruning, Imbert's acceleration — and the
    /// pass stops as soon as a contradiction surfaces (`self.unsat`), which
    /// is what lets `implies_atom`/`implies_all` return early.
    ///
    /// With `abort_over` set, returns `false` as soon as an intermediate
    /// system exceeds that many rows (the exact-join fallback trigger);
    /// otherwise always returns `true`.
    fn project(&mut self, drop: &[Symbol], abort_over: Option<usize>) -> bool {
        if self.unsat || drop.is_empty() || self.constraints.is_empty() {
            return true;
        }
        let mut store = RowStore::with_capacity(self.constraints.len());
        for (i, (e, k)) in std::mem::take(&mut self.constraints)
            .into_iter()
            .enumerate()
        {
            // Rows are canonical here: every construction site runs
            // `normalize`, which canonicalizes through the same store.
            store.insert(
                FmRow {
                    expr: e,
                    kind: k,
                    anc: Ancestors::origin(i),
                    gone: GoneDims::default(),
                },
                true,
            );
        }
        // Every dimension of the system gets one bit in the per-row gone
        // sets; combinations only ever cancel dimensions, so the map never
        // needs to grow mid-pass.
        let mut dim_bits: BTreeMap<Symbol, usize> = BTreeMap::new();
        for row in store.rows.iter().flatten() {
            for (s, _) in row.expr.coefficients() {
                let bit = dim_bits.len();
                dim_bits.entry(*s).or_insert(bit);
            }
        }
        let mut remaining: BTreeSet<Symbol> = drop.iter().copied().collect();
        // Kohler's criterion is stated for pure pos×neg elimination; once a
        // step substitutes through an equation the ancestor accounting mixes
        // Gaussian steps in, so pruning is switched off for the rest of the
        // pass rather than argued about.
        let mut imbert_ok = true;
        while !store.unsat && !remaining.is_empty() {
            // One scan counting, per still-to-eliminate dimension, its
            // positive/negative inequality occurrences and whether an
            // equation mentions it.
            let mut occ: BTreeMap<Symbol, (i64, i64, bool)> = BTreeMap::new();
            for row in store.rows.iter().flatten() {
                for (s, c) in row.expr.coefficients() {
                    if !remaining.contains(s) {
                        continue;
                    }
                    let e = occ.entry(*s).or_insert((0, 0, false));
                    if row.kind == AtomKind::Eq {
                        e.2 = true;
                    } else if c.is_positive() {
                        e.0 += 1;
                    } else {
                        e.1 += 1;
                    }
                }
            }
            // Dimensions no row mentions are already (vacuously) eliminated.
            remaining.retain(|s| occ.contains_key(s));
            let Some(d) = choose_dim(&occ) else { break };
            remaining.remove(&d);
            let imbert = if imbert_ok { Some(&dim_bits) } else { None };
            let (next, substituted) = eliminate_rows(store, &d, imbert);
            store = next;
            if substituted {
                imbert_ok = false;
            }
            crate::stats::record_width(store.live as u64);
            if let Some(limit) = abort_over {
                if store.live > limit {
                    self.constraints = store.into_pairs();
                    return false;
                }
            }
        }
        if store.unsat {
            if !remaining.is_empty() {
                fm_stat!(EARLY_UNSAT_EXITS);
            }
            self.unsat = true;
            self.constraints.clear();
            return true;
        }
        self.constraints = store.into_pairs();
        true
    }

    /// Projects onto the dimensions whose base symbols all satisfy `keep`,
    /// routing through [`Linearized::project`].
    fn project_keeping(mut self, keep: impl Fn(&[Symbol]) -> bool) -> Linearized {
        let drop: Vec<Symbol> = self
            .dims()
            .into_iter()
            .filter(|d| !keep(&self.base_symbols(d)))
            .collect();
        self.project(&drop, None);
        self
    }

    #[allow(clippy::wrong_self_convention)] // consumes self: elimination destroys the system
    fn is_unsat(mut self) -> bool {
        let dims: Vec<Symbol> = self.dims().into_iter().collect();
        self.project(&dims, None);
        self.unsat
    }

    /// Fixed-order projection — the pre-optimization oracle.
    fn naive_project(mut self, keep: impl Fn(&[Symbol]) -> bool) -> Linearized {
        let dims = self.dims();
        let mut scratch = FmScratch::default();
        for d in dims {
            let bases = self.base_symbols(&d);
            if keep(&bases) {
                continue;
            }
            self.naive_eliminate_dim(&d, &mut scratch);
            if self.unsat {
                break;
            }
        }
        self
    }

    /// Fixed-order satisfiability — the pre-optimization oracle.
    #[allow(clippy::wrong_self_convention)] // consumes self: elimination destroys the system
    fn naive_is_unsat(mut self) -> bool {
        let dims = self.dims();
        let mut scratch = FmScratch::default();
        for d in dims {
            self.naive_eliminate_dim(&d, &mut scratch);
            if self.unsat {
                return true;
            }
        }
        self.unsat
    }

    fn to_polyhedron(&self) -> Polyhedron {
        if self.unsat {
            return Polyhedron::contradiction();
        }
        let mut atoms = Vec::new();
        for (e, k) in &self.constraints {
            let poly = self.delinearize(&e.normalize_gcd());
            atoms.push(Atom { poly, kind: *k });
        }
        Polyhedron::from_atoms(atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::rat;

    fn var(name: &str) -> Polynomial {
        Polynomial::var(Symbol::new(name))
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn satisfiability_basic() {
        let p = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(0)), Atom::le(var("x"), c(5))]);
        assert!(!p.is_empty_set());
        let q = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(6)), Atom::le(var("x"), c(5))]);
        assert!(q.is_empty_set());
        assert!(Polyhedron::contradiction().is_empty_set());
        assert!(!Polyhedron::universe().is_empty_set());
    }

    #[test]
    fn satisfiability_strict() {
        let p = Polyhedron::from_atoms(vec![Atom::gt(var("x"), c(5)), Atom::lt(var("x"), c(6))]);
        // Rational satisfiable (5 < x < 6).
        assert!(!p.is_empty_set());
        let q = Polyhedron::from_atoms(vec![Atom::gt(var("x"), c(5)), Atom::lt(var("x"), c(5))]);
        assert!(q.is_empty_set());
        let r = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(5)), Atom::lt(var("x"), c(5))]);
        assert!(r.is_empty_set());
    }

    #[test]
    fn satisfiability_chained() {
        // x <= y, y <= z, z <= x - 1 is unsat
        let p = Polyhedron::from_atoms(vec![
            Atom::le(var("x"), var("y")),
            Atom::le(var("y"), var("z")),
            Atom::le(var("z"), &var("x") - &c(1)),
        ]);
        assert!(p.is_empty_set());
        // ... but z <= x + 1 is fine
        let q = Polyhedron::from_atoms(vec![
            Atom::le(var("x"), var("y")),
            Atom::le(var("y"), var("z")),
            Atom::le(var("z"), &var("x") + &c(1)),
        ]);
        assert!(!q.is_empty_set());
    }

    #[test]
    fn implication() {
        let p =
            Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(1)), Atom::le(var("x"), var("y"))]);
        assert!(p.implies_atom(&Atom::ge(var("y"), c(1))));
        assert!(p.implies_atom(&Atom::ge(var("y"), var("x"))));
        assert!(!p.implies_atom(&Atom::ge(var("x"), c(2))));
        assert!(p.implies_atom(&Atom::gt(var("y"), c(0))));
    }

    #[test]
    fn implication_with_equalities() {
        let p = Polyhedron::from_atoms(vec![
            Atom::eq(var("x"), &var("y") + &c(1)),
            Atom::eq(var("y"), c(3)),
        ]);
        assert!(p.implies_atom(&Atom::eq(var("x"), c(4))));
        assert!(!p.implies_atom(&Atom::eq(var("x"), c(5))));
    }

    #[test]
    fn projection_transitive_bound() {
        // x <= y, y <= 5  projected onto {x}  =>  x <= 5
        let p =
            Polyhedron::from_atoms(vec![Atom::le(var("x"), var("y")), Atom::le(var("y"), c(5))]);
        let keep: BTreeSet<Symbol> = [Symbol::new("x")].into_iter().collect();
        let proj = p.project_onto(&keep);
        assert!(proj.implies_atom(&Atom::le(var("x"), c(5))));
        assert!(proj.symbols().iter().all(|s| s == &Symbol::new("x")));
    }

    #[test]
    fn projection_keeps_nonlinear_dims_over_kept_symbols() {
        // x^2 <= y, y <= 9 : the x^2 dimension survives projection because
        // its only base symbol is x.
        let x2 = &var("x") * &var("x");
        let p = Polyhedron::from_atoms(vec![
            Atom::le(x2.clone(), var("y")),
            Atom::le(var("y"), c(9)),
        ]);
        let keep_xy: BTreeSet<Symbol> = [Symbol::new("x"), Symbol::new("y")].into_iter().collect();
        let proj = p.project_onto(&keep_xy);
        assert!(proj.implies_atom(&Atom::le(x2.clone(), c(9))));
        let keep_x: BTreeSet<Symbol> = [Symbol::new("x")].into_iter().collect();
        let proj_x = p.project_onto(&keep_x);
        assert!(proj_x.implies_atom(&Atom::le(x2, c(9))));
    }

    #[test]
    fn eliminate_single_symbol() {
        let p = Polyhedron::from_atoms(vec![
            Atom::eq(var("mid"), &var("x") + &c(1)),
            Atom::eq(var("y"), &var("mid") + &c(1)),
        ]);
        let drop: BTreeSet<Symbol> = [Symbol::new("mid")].into_iter().collect();
        let out = p.eliminate(&drop);
        assert!(out.implies_atom(&Atom::eq(var("y"), &var("x") + &c(2))));
        assert!(!out.symbols().contains(&Symbol::new("mid")));
    }

    #[test]
    fn join_intervals() {
        // hull of [0,1] and [3,4] is [0,4]
        let a = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(0)), Atom::le(var("x"), c(1))]);
        let b = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(3)), Atom::le(var("x"), c(4))]);
        let hull = a.join(&b);
        assert!(hull.implies_atom(&Atom::ge(var("x"), c(0))));
        assert!(hull.implies_atom(&Atom::le(var("x"), c(4))));
        assert!(!hull.implies_atom(&Atom::le(var("x"), c(3))));
    }

    #[test]
    fn join_points_recovers_line() {
        // hull of {x=0, y=0} and {x=1, y=1} implies x = y
        let a = Polyhedron::from_atoms(vec![Atom::eq(var("x"), c(0)), Atom::eq(var("y"), c(0))]);
        let b = Polyhedron::from_atoms(vec![Atom::eq(var("x"), c(1)), Atom::eq(var("y"), c(1))]);
        let hull = a.join(&b);
        assert!(hull.implies_atom(&Atom::eq(var("x"), var("y"))));
        assert!(hull.implies_atom(&Atom::ge(var("x"), c(0))));
        assert!(hull.implies_atom(&Atom::le(var("x"), c(1))));
    }

    #[test]
    fn join_with_empty_operand() {
        let a = Polyhedron::from_atoms(vec![Atom::eq(var("x"), c(7))]);
        let empty = Polyhedron::contradiction();
        assert_eq!(a.join(&empty).atoms().len(), a.atoms().len());
        assert_eq!(empty.join(&a).atoms().len(), a.atoms().len());
    }

    #[test]
    fn join_unbounded() {
        // hull of {x >= 0} and {x >= 2, y = 0} should still imply x >= 0.
        let a = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(0))]);
        let b = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(2)), Atom::eq(var("y"), c(0))]);
        let hull = a.join(&b);
        assert!(hull.implies_atom(&Atom::ge(var("x"), c(0))));
        assert!(!hull.implies_atom(&Atom::ge(var("x"), c(2))));
    }

    #[test]
    fn weak_join_is_sound() {
        let a = Polyhedron::from_atoms(vec![Atom::eq(var("x"), c(0))]);
        let b = Polyhedron::from_atoms(vec![Atom::eq(var("x"), c(1))]);
        let wj = a.weak_join(&b);
        // 0 <= x <= 1 must be implied (equalities weaken to inequalities).
        assert!(wj.implies_atom(&Atom::ge(var("x"), c(0))));
        assert!(wj.implies_atom(&Atom::le(var("x"), c(1))));
    }

    #[test]
    fn subset_check() {
        let small =
            Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(1)), Atom::le(var("x"), c(2))]);
        let big = Polyhedron::from_atoms(vec![Atom::ge(var("x"), c(0)), Atom::le(var("x"), c(5))]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
    }

    #[test]
    fn upper_bounds() {
        let p = Polyhedron::from_atoms(vec![
            Atom::le(var("x"), &var("n") + &c(1)),
            Atom::le(var("x").scale(&rat(2)), c(10)),
            Atom::ge(var("x"), c(0)),
        ]);
        let ubs = p.upper_bounds_on(&Symbol::new("x"));
        assert_eq!(ubs.len(), 2);
        assert!(ubs.iter().any(|b| b.to_string() == "n + 1"));
        assert!(ubs.iter().any(|b| b.to_string() == "5"));
    }

    #[test]
    fn simplify_removes_redundant_parallel_constraints() {
        let p = Polyhedron::from_atoms(vec![
            Atom::le(var("x"), c(5)),
            Atom::le(var("x"), c(9)),
            Atom::le(c(0), c(1)),
        ]);
        let s = p.simplify();
        assert_eq!(s.len(), 1);
        assert!(s.implies_atom(&Atom::le(var("x"), c(5))));
    }

    #[test]
    fn implies_all_matches_per_atom_checks() {
        let x2 = &var("x") * &var("x");
        let p = Polyhedron::from_atoms(vec![
            Atom::ge(var("x"), c(1)),
            Atom::le(var("x"), var("y")),
            Atom::le(x2.clone(), c(9)),
            Atom::eq(var("z"), &var("y") + &c(1)),
        ]);
        let goal_sets: Vec<Vec<Atom>> = vec![
            vec![Atom::ge(var("y"), c(1)), Atom::gt(var("z"), var("y"))],
            vec![Atom::le(x2.clone(), c(10)), Atom::ge(var("x"), c(1))],
            vec![Atom::ge(var("y"), c(1)), Atom::ge(var("x"), c(2))], // second fails
            vec![Atom::le(c(0), c(1))],                               // trivially true
            vec![Atom::le(c(1), c(0))],                               // trivially false
            vec![Atom::eq(var("z"), &var("y") + &c(1))],
        ];
        for goals in &goal_sets {
            let expected = goals.iter().all(|a| p.implies_atom(a));
            assert_eq!(
                p.implies_all(goals),
                expected,
                "batched and per-atom entailment disagree on {goals:?}"
            );
        }
        // An unsatisfiable polyhedron implies everything, including false.
        let empty = Polyhedron::contradiction();
        assert!(empty.implies_all(&[Atom::le(c(1), c(0))]));
        assert!(empty.implies_all(&[Atom::ge(var("q"), c(5))]));
    }

    #[test]
    fn substitution_detects_contradiction() {
        let p = Polyhedron::from_atoms(vec![Atom::le(var("x"), c(3))]);
        let q = p.substitute(&Symbol::new("x"), &c(10));
        assert!(q.is_empty_set());
    }

    #[test]
    fn rename_polyhedron() {
        let p = Polyhedron::from_atoms(vec![Atom::le(var("x"), c(3))]);
        let r = p.rename(&mut |s| s.primed());
        assert!(r.symbols().contains(&Symbol::new("x'")));
    }
}
