//! Transition formulas: guarded-DNF relations between pre- and post-states.
//!
//! A [`TransitionFormula`] is a bounded disjunction of [`Polyhedron`]s over
//! the vocabulary `Var ∪ Var' ∪ SymConst`, where `Var` are pre-state program
//! variables, `Var'` their post-state (primed) copies, and `SymConst` rigid
//! symbolic constants such as the hypothetical bounding functions `b_k(h)` of
//! Alg. 2.  This realizes the paper's transition-formula algebra without an
//! external SMT solver: because the DNF is explicit, the lazy model-driven
//! enumeration of Alg. 1 degenerates to a fold of polyhedral joins, which is
//! exactly the output that algorithm computes.

use crate::atom::Atom;
use crate::polyhedron::Polyhedron;
use chora_expr::{Polynomial, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// Default maximum number of disjuncts kept before eagerly joining.
pub const DEFAULT_DISJUNCT_CAP: usize = 12;

/// A transition formula in guarded disjunctive normal form.
///
/// ```
/// use chora_logic::TransitionFormula;
/// use chora_expr::{Polynomial, Symbol};
/// use chora_numeric::rat;
/// let vars = vec![Symbol::new("x")];
/// // x' = x + 1 ; x' = x + 1   composes to   x' = x + 2
/// let inc = TransitionFormula::assign(
///     &Symbol::new("x"),
///     &(&Polynomial::var(Symbol::new("x")) + &Polynomial::constant(rat(1))),
///     &vars,
/// );
/// let two = inc.sequence(&inc, &vars);
/// let expect = chora_logic::Atom::eq(
///     Polynomial::var(Symbol::post("x")),
///     &Polynomial::var(Symbol::new("x")) + &Polynomial::constant(rat(2)),
/// );
/// assert!(two.implies_atom(&expect));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TransitionFormula {
    disjuncts: Vec<Polyhedron>,
    cap: usize,
}

impl TransitionFormula {
    /// The unsatisfiable transition formula `false` (no behaviours).
    pub fn bottom() -> TransitionFormula {
        TransitionFormula {
            disjuncts: Vec::new(),
            cap: DEFAULT_DISJUNCT_CAP,
        }
    }

    /// The single-disjunct formula `true` — everything (including all primed
    /// variables) is unconstrained, i.e. a havoc of the entire state.
    pub fn top() -> TransitionFormula {
        TransitionFormula::from_polyhedron(Polyhedron::universe())
    }

    /// A formula with a single disjunct.
    pub fn from_polyhedron(p: Polyhedron) -> TransitionFormula {
        TransitionFormula {
            disjuncts: vec![p],
            cap: DEFAULT_DISJUNCT_CAP,
        }
    }

    /// A formula from explicit disjuncts.
    pub fn from_disjuncts(disjuncts: Vec<Polyhedron>) -> TransitionFormula {
        let mut f = TransitionFormula::bottom();
        for d in disjuncts {
            f.push_disjunct(d);
        }
        f
    }

    /// Restores a formula from a previously-observed `(disjuncts(), cap())`
    /// pair **verbatim** — no empty/subsumption filtering and no cap
    /// enforcement is applied, so the result is bit-identical to the
    /// formula the pair was read from.
    ///
    /// This is the summary-cache deserialization constructor: live formulas
    /// reach their final shape through operations that bypass
    /// `push_disjunct` (`conjoin`, `project_onto`, `simplify`, ...), so
    /// re-filtering on restore could drop semantically subsumed disjuncts
    /// the original value still carried and make a warm run diverge from a
    /// cold one.  Only feed this pairs obtained from an actual formula.
    pub fn from_parts(disjuncts: Vec<Polyhedron>, cap: usize) -> TransitionFormula {
        TransitionFormula {
            disjuncts,
            cap: cap.max(1),
        }
    }

    /// The frame equality `v' = v` (with the inline term storage this builds
    /// no heap rows, so stamping frames onto every statement is cheap).
    fn frame_atom(v: &Symbol) -> Atom {
        Atom::eq(Polynomial::var(v.primed()), Polynomial::var(*v))
    }

    /// The identity (skip) transition over the given variables: `v' = v`.
    pub fn identity(vars: &[Symbol]) -> TransitionFormula {
        let atoms = vars.iter().map(Self::frame_atom).collect();
        TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms))
    }

    /// Assignment `var := rhs` (rhs over pre-state variables); all other
    /// variables keep their values.
    pub fn assign(var: &Symbol, rhs: &Polynomial, vars: &[Symbol]) -> TransitionFormula {
        let mut atoms = vec![Atom::eq(Polynomial::var(var.primed()), rhs.clone())];
        for v in vars {
            if v != var {
                atoms.push(Self::frame_atom(v));
            }
        }
        TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms))
    }

    /// Non-deterministic assignment `var := *`; all other variables keep
    /// their values.
    pub fn havoc(havocked: &[Symbol], vars: &[Symbol]) -> TransitionFormula {
        let atoms = vars
            .iter()
            .filter(|v| !havocked.contains(v))
            .map(Self::frame_atom)
            .collect();
        TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms))
    }

    /// `assume(cond)`: the guard atoms hold of the pre-state and the state is
    /// unchanged.
    pub fn assume(guards: Vec<Atom>, vars: &[Symbol]) -> TransitionFormula {
        let mut atoms = guards;
        for v in vars {
            atoms.push(Self::frame_atom(v));
        }
        TransitionFormula::from_polyhedron(Polyhedron::from_atoms(atoms))
    }

    /// Sets the disjunct cap (used when unioning).
    pub fn with_cap(mut self, cap: usize) -> TransitionFormula {
        self.cap = cap.max(1);
        self
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Polyhedron] {
        &self.disjuncts
    }

    /// The disjunct cap (see [`TransitionFormula::with_cap`]).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether the formula has no satisfiable disjunct.
    pub fn is_bottom(&self) -> bool {
        self.disjuncts.iter().all(|d| d.is_empty_set())
    }

    /// All symbols mentioned.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for d in &self.disjuncts {
            out.extend(d.symbols());
        }
        out
    }

    fn push_disjunct(&mut self, p: Polyhedron) {
        if p.is_empty_set() {
            return;
        }
        // Skip disjuncts subsumed by an existing one.
        if self.disjuncts.iter().any(|d| p.is_subset_of(d)) {
            return;
        }
        self.disjuncts.push(p);
        if self.disjuncts.len() > self.cap {
            // Join the two smallest disjuncts to stay within the cap.
            let a = self.disjuncts.remove(0);
            let b = self.disjuncts.remove(0);
            let joined = a.join(&b);
            self.disjuncts.insert(0, joined);
        }
    }

    /// Disjunction (choice) of two formulas.
    pub fn union(&self, other: &TransitionFormula) -> TransitionFormula {
        let mut out = self.clone();
        for d in &other.disjuncts {
            out.push_disjunct(d.clone());
        }
        out
    }

    /// Conjoins a polyhedron onto every disjunct.
    pub fn conjoin(&self, p: &Polyhedron) -> TransitionFormula {
        let disjuncts = self
            .disjuncts
            .iter()
            .map(|d| d.conjoin(p))
            .filter(|d| !d.is_empty_set())
            .collect();
        TransitionFormula {
            disjuncts,
            cap: self.cap,
        }
    }

    /// Conjoins a single atom onto every disjunct.
    pub fn conjoin_atom(&self, a: &Atom) -> TransitionFormula {
        self.conjoin(&Polyhedron::from_atoms(vec![a.clone()]))
    }

    /// Relational composition `self ; other` over the given program
    /// variables: `other`'s pre-state is identified with `self`'s post-state
    /// and the intermediate state is projected away.  Symbols not in `vars`
    /// (symbolic constants such as `b_k(h)`) are left untouched.
    pub fn sequence(&self, other: &TransitionFormula, vars: &[Symbol]) -> TransitionFormula {
        let mut out = TransitionFormula::bottom();
        out.cap = self.cap.max(other.cap);
        if self.disjuncts.is_empty() || other.disjuncts.is_empty() {
            return out;
        }
        // Scratch intermediate names, one per variable.  Scratch symbols are
        // operation-local (neither operand can contain one — every polyhedral
        // operation eliminates its scratch symbols before returning), so
        // indexing by variable position is collision-free and deterministic.
        let mids: Vec<(Symbol, Symbol, Symbol)> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, v.primed(), Symbol::scratch(i as u32)))
            .collect();
        let drop: BTreeSet<Symbol> = mids.iter().map(|(_, _, m)| *m).collect();
        for left in &self.disjuncts {
            let left_renamed = left.rename(&mut |s| {
                for (_, post, mid) in &mids {
                    if s == post {
                        return *mid;
                    }
                }
                *s
            });
            for right in &other.disjuncts {
                let right_renamed = right.rename(&mut |s| {
                    for (pre, _, mid) in &mids {
                        if s == pre {
                            return *mid;
                        }
                    }
                    *s
                });
                let combined = left_renamed.conjoin(&right_renamed);
                if combined.is_empty_set() {
                    continue;
                }
                let projected = combined.eliminate(&drop);
                out.push_disjunct(projected);
            }
        }
        out
    }

    /// Projects every disjunct onto the given symbols (dropping constraints
    /// that mention anything else).
    pub fn project_onto(&self, keep: &BTreeSet<Symbol>) -> TransitionFormula {
        let disjuncts = self
            .disjuncts
            .iter()
            .map(|d| d.project_onto(keep))
            .collect();
        TransitionFormula {
            disjuncts,
            cap: self.cap,
        }
    }

    /// Eliminates the given symbols from every disjunct.
    pub fn eliminate(&self, drop: &BTreeSet<Symbol>) -> TransitionFormula {
        let disjuncts = self.disjuncts.iter().map(|d| d.eliminate(drop)).collect();
        TransitionFormula {
            disjuncts,
            cap: self.cap,
        }
    }

    /// `Abstract(φ, V)` (Alg. 1 / [25, Alg. 3]): the convex hull of the
    /// formula projected onto the symbols `keep`, returned as a single
    /// conjunction of polynomial inequations.
    pub fn abstract_hull(&self, keep: &BTreeSet<Symbol>) -> Polyhedron {
        let mut result: Option<Polyhedron> = None;
        for d in &self.disjuncts {
            if d.is_empty_set() {
                continue;
            }
            let projected = d.project_onto(keep);
            result = Some(match result {
                None => projected,
                Some(acc) => acc.join(&projected),
            });
        }
        result.unwrap_or_else(Polyhedron::contradiction)
    }

    /// Whether every behaviour of the formula satisfies the atom.
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        self.disjuncts.iter().all(|d| d.implies_atom(atom))
    }

    /// Renames symbols throughout.
    pub fn rename(&self, f: &mut impl FnMut(&Symbol) -> Symbol) -> TransitionFormula {
        TransitionFormula {
            disjuncts: self.disjuncts.iter().map(|d| d.rename(f)).collect(),
            cap: self.cap,
        }
    }

    /// Substitutes a polynomial for a symbol throughout.
    pub fn substitute(&self, s: &Symbol, replacement: &Polynomial) -> TransitionFormula {
        TransitionFormula {
            disjuncts: self
                .disjuncts
                .iter()
                .map(|d| d.substitute(s, replacement))
                .collect(),
            cap: self.cap,
        }
    }

    /// Drops unsatisfiable disjuncts and simplifies the rest.
    pub fn simplify(&self) -> TransitionFormula {
        let disjuncts = self
            .disjuncts
            .iter()
            .filter(|d| !d.is_empty_set())
            .map(|d| d.simplify())
            .collect();
        TransitionFormula {
            disjuncts,
            cap: self.cap,
        }
    }
}

impl fmt::Display for TransitionFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∨  ")?;
            }
            write!(f, "({d})")?;
        }
        Ok(())
    }
}

impl fmt::Debug for TransitionFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::rat;

    fn x() -> Symbol {
        Symbol::new("x")
    }
    fn y() -> Symbol {
        Symbol::new("y")
    }
    fn pvar(s: &Symbol) -> Polynomial {
        Polynomial::var(*s)
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn identity_and_assign_compose() {
        let vars = vec![x(), y()];
        let skip = TransitionFormula::identity(&vars);
        let inc = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(1)), &vars);
        let seq = skip.sequence(&inc, &vars);
        assert!(seq.implies_atom(&Atom::eq(pvar(&x().primed()), &pvar(&x()) + &c(1))));
        assert!(seq.implies_atom(&Atom::eq(pvar(&y().primed()), pvar(&y()))));
    }

    #[test]
    fn composition_accumulates() {
        let vars = vec![x()];
        let inc = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(1)), &vars);
        let mut acc = TransitionFormula::identity(&vars);
        for _ in 0..5 {
            acc = acc.sequence(&inc, &vars);
        }
        assert!(acc.implies_atom(&Atom::eq(pvar(&x().primed()), &pvar(&x()) + &c(5))));
    }

    #[test]
    fn havoc_forgets() {
        let vars = vec![x(), y()];
        let h = TransitionFormula::havoc(&[x()], &vars);
        assert!(!h.implies_atom(&Atom::eq(pvar(&x().primed()), pvar(&x()))));
        assert!(h.implies_atom(&Atom::eq(pvar(&y().primed()), pvar(&y()))));
    }

    #[test]
    fn assume_guards_filter_behaviours() {
        let vars = vec![x()];
        // assume(x >= 3); then x := x - 1   implies x' >= 2
        let guard = TransitionFormula::assume(vec![Atom::ge(pvar(&x()), c(3))], &vars);
        let dec = TransitionFormula::assign(&x(), &(&pvar(&x()) - &c(1)), &vars);
        let seq = guard.sequence(&dec, &vars);
        assert!(seq.implies_atom(&Atom::ge(pvar(&x().primed()), c(2))));
        assert!(!seq.implies_atom(&Atom::ge(pvar(&x().primed()), c(3))));
    }

    #[test]
    fn union_keeps_both_behaviours() {
        let vars = vec![x()];
        let set1 = TransitionFormula::assign(&x(), &c(1), &vars);
        let set2 = TransitionFormula::assign(&x(), &c(5), &vars);
        let either = set1.union(&set2);
        assert_eq!(either.disjuncts().len(), 2);
        assert!(!either.implies_atom(&Atom::eq(pvar(&x().primed()), c(1))));
        assert!(either.implies_atom(&Atom::ge(pvar(&x().primed()), c(1))));
        assert!(either.implies_atom(&Atom::le(pvar(&x().primed()), c(5))));
    }

    #[test]
    fn union_respects_cap_soundly() {
        let vars = vec![x()];
        let mut f = TransitionFormula::bottom().with_cap(3);
        for i in 0..8 {
            f = f.union(&TransitionFormula::assign(&x(), &c(i), &vars));
        }
        assert!(f.disjuncts().len() <= 3);
        // Hull still bounds the range soundly.
        assert!(f.implies_atom(&Atom::ge(pvar(&x().primed()), c(0))));
        assert!(f.implies_atom(&Atom::le(pvar(&x().primed()), c(7))));
    }

    #[test]
    fn bottom_behaviour() {
        let vars = vec![x()];
        let inc = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(1)), &vars);
        let bot = TransitionFormula::bottom();
        assert!(bot.is_bottom());
        assert!(bot.sequence(&inc, &vars).is_bottom());
        assert!(inc.sequence(&bot, &vars).is_bottom());
        assert_eq!(bot.union(&inc).disjuncts().len(), 1);
        // bottom implies anything
        assert!(bot.implies_atom(&Atom::eq(pvar(&x()), c(42))));
    }

    #[test]
    fn subsumed_disjuncts_are_dropped() {
        let vars = vec![x()];
        let narrow = TransitionFormula::assume(vec![Atom::eq(pvar(&x()), c(2))], &vars);
        let wide = TransitionFormula::assume(
            vec![Atom::ge(pvar(&x()), c(0)), Atom::le(pvar(&x()), c(5))],
            &vars,
        );
        let u = wide.union(&narrow);
        assert_eq!(u.disjuncts().len(), 1);
    }

    #[test]
    fn abstract_hull_over_branches() {
        // Two branches: x' = x + 1 and x' = x + 3; the hull over {x, x'}
        // should contain x + 1 <= x' <= x + 3.
        let vars = vec![x()];
        let b1 = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(1)), &vars);
        let b2 = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(3)), &vars);
        let both = b1.union(&b2);
        let keep: BTreeSet<Symbol> = [x(), x().primed()].into_iter().collect();
        let hull = both.abstract_hull(&keep);
        assert!(hull.implies_atom(&Atom::ge(pvar(&x().primed()), &pvar(&x()) + &c(1))));
        assert!(hull.implies_atom(&Atom::le(pvar(&x().primed()), &pvar(&x()) + &c(3))));
    }

    #[test]
    fn sequence_preserves_rigid_symbols() {
        // A symbolic constant (not in vars) must not be renamed or projected.
        let vars = vec![x()];
        let b = Symbol::bound_at_h(1);
        let call = TransitionFormula::from_polyhedron(Polyhedron::from_atoms(vec![Atom::le(
            pvar(&x().primed()),
            &pvar(&x()) + &pvar(&b),
        )]));
        let inc = TransitionFormula::assign(&x(), &(&pvar(&x()) + &c(1)), &vars);
        let seq = inc.sequence(&call, &vars);
        // x' <= x + 1 + b1(h)
        let expect = Atom::le(pvar(&x().primed()), &(&pvar(&x()) + &c(1)) + &pvar(&b));
        assert!(seq.implies_atom(&expect));
        assert!(seq.symbols().contains(&b));
    }

    #[test]
    fn project_and_eliminate() {
        let vars = vec![x(), y()];
        let f = TransitionFormula::assign(&x(), &(&pvar(&y()) + &c(2)), &vars);
        let keep: BTreeSet<Symbol> = [y(), x().primed()].into_iter().collect();
        let proj = f.project_onto(&keep);
        assert!(proj.implies_atom(&Atom::eq(pvar(&x().primed()), &pvar(&y()) + &c(2))));
        let drop: BTreeSet<Symbol> = [y()].into_iter().collect();
        let elim = f.eliminate(&drop);
        assert!(!elim.symbols().contains(&y()));
    }

    #[test]
    fn substitute_symbolic_constant() {
        let b = Symbol::bound_at_h(1);
        let f = TransitionFormula::from_polyhedron(Polyhedron::from_atoms(vec![Atom::le(
            pvar(&x().primed()),
            pvar(&b),
        )]));
        let g = f.substitute(&b, &c(7));
        assert!(g.implies_atom(&Atom::le(pvar(&x().primed()), c(7))));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TransitionFormula::bottom().to_string(), "false");
        let vars = vec![x()];
        let f = TransitionFormula::identity(&vars);
        assert!(f.to_string().contains("x'"));
    }
}
