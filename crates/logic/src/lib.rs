//! # chora-logic
//!
//! The symbolic-abstraction substrate of the CHORA analysis:
//!
//! * [`Atom`] — polynomial (in)equations `p ◇ 0`,
//! * [`Polyhedron`] — conjunctions of atoms with exact-rational domain
//!   operations (satisfiability, Fourier–Motzkin projection, convex-hull
//!   join, entailment), with non-linear monomials handled by linearization
//!   into extra dimensions as in [25, Alg. 3],
//! * [`TransitionFormula`] — bounded-DNF relations between pre-state and
//!   post-state, the representation on which procedure summaries, the
//!   hypothetical summaries of Alg. 2, and the depth-bounding model of
//!   Alg. 4 are all built.
//!
//! In the original CHORA implementation these roles are played by Z3 plus the
//! SRK/duet wedge domain; here they are built from scratch on exact rational
//! arithmetic (see DESIGN.md for the substitution argument).
//!
//! ```
//! use chora_logic::{Atom, TransitionFormula};
//! use chora_expr::{Polynomial, Symbol};
//! use chora_numeric::rat;
//!
//! // nTicks' = nTicks + 1  composed with  nTicks' = nTicks + 1
//! let n = Symbol::new("nTicks");
//! let vars = vec![n.clone()];
//! let tick = TransitionFormula::assign(
//!     &n,
//!     &(&Polynomial::var(n.clone()) + &Polynomial::constant(rat(1))),
//!     &vars,
//! );
//! let two_ticks = tick.sequence(&tick, &vars);
//! assert!(two_ticks.implies_atom(&Atom::eq(
//!     Polynomial::var(n.primed()),
//!     &Polynomial::var(n.clone()) + &Polynomial::constant(rat(2)),
//! )));
//! ```

mod atom;
mod polyhedron;
pub mod stats;
mod transition;

pub use atom::{Atom, AtomKind};
pub use polyhedron::Polyhedron;
pub use transition::{TransitionFormula, DEFAULT_DISJUNCT_CAP};
