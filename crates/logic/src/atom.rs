//! Polynomial constraint atoms.
//!
//! An [`Atom`] is a single polynomial (in)equation `p ◇ 0` with
//! `◇ ∈ {≤, <, =}` over program variables, primed variables, and symbolic
//! constants (such as the hypothetical bounding functions `b_k(h)` of Alg. 2).
//! Conjunctions of atoms form a [`crate::Polyhedron`]; bounded disjunctions
//! of polyhedra form a [`crate::TransitionFormula`].

use chora_expr::{LinearExpr, Monomial, Polynomial, Symbol};
use chora_numeric::{BigInt, BigRational};
use std::collections::BTreeSet;
use std::fmt;

/// The comparison kind of an [`Atom`] (always against zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomKind {
    /// `p ≤ 0`
    Le,
    /// `p < 0` (used internally for negations during entailment checking)
    Lt,
    /// `p = 0`
    Eq,
}

/// A polynomial constraint `p ◇ 0`.
///
/// ```
/// use chora_logic::Atom;
/// use chora_expr::{Polynomial, Symbol};
/// let x = Polynomial::var(Symbol::new("x"));
/// let a = Atom::le(x.clone(), Polynomial::constant(chora_numeric::rat(5)));
/// assert_eq!(a.to_string(), "x - 5 ≤ 0");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The polynomial `p` constrained against zero.
    pub poly: Polynomial,
    /// The comparison kind.
    pub kind: AtomKind,
}

impl Atom {
    /// The atom `p ≤ 0`.
    pub fn le_zero(p: Polynomial) -> Atom {
        Atom {
            poly: p,
            kind: AtomKind::Le,
        }
    }

    /// The atom `p < 0`.
    pub fn lt_zero(p: Polynomial) -> Atom {
        Atom {
            poly: p,
            kind: AtomKind::Lt,
        }
    }

    /// The atom `p = 0`.
    pub fn eq_zero(p: Polynomial) -> Atom {
        Atom {
            poly: p,
            kind: AtomKind::Eq,
        }
    }

    /// The atom `lhs ≤ rhs`.
    pub fn le(lhs: Polynomial, rhs: Polynomial) -> Atom {
        Atom::le_zero(&lhs - &rhs)
    }

    /// The atom `lhs < rhs`.
    pub fn lt(lhs: Polynomial, rhs: Polynomial) -> Atom {
        Atom::lt_zero(&lhs - &rhs)
    }

    /// The atom `lhs ≥ rhs`.
    pub fn ge(lhs: Polynomial, rhs: Polynomial) -> Atom {
        Atom::le_zero(&rhs - &lhs)
    }

    /// The atom `lhs > rhs`.
    pub fn gt(lhs: Polynomial, rhs: Polynomial) -> Atom {
        Atom::lt_zero(&rhs - &lhs)
    }

    /// The atom `lhs = rhs`.
    pub fn eq(lhs: Polynomial, rhs: Polynomial) -> Atom {
        Atom::eq_zero(&lhs - &rhs)
    }

    /// The symbols mentioned by the atom.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        self.poly.symbols()
    }

    /// The canonical representative of the atom's scaling class: denominators
    /// cleared and the integer coefficients divided by their gcd, so any two
    /// positive scalar multiples of the same constraint become the same atom
    /// (`2x ≤ 10` and `x ≤ 5` both canonicalize to `x - 5 ≤ 0`).  The sign
    /// of an equation is preserved — downstream bound extraction reads the
    /// orientation of `p = 0`, so `-p = 0` is deduped against it only inside
    /// the projection engine's hash keys, never rewritten here.
    pub fn canonical(&self) -> Atom {
        if self.poly.is_constant() {
            return self.clone();
        }
        let (_, cleared) = self.poly.clear_denominators();
        let mut gcd = BigInt::zero();
        for (_, c) in cleared.terms() {
            gcd = gcd.gcd(c.numer());
        }
        let scale = BigRational::from_integer(gcd).recip();
        Atom {
            poly: cleared.scale(&scale),
            kind: self.kind,
        }
    }

    /// Whether the constraint holds trivially (e.g. `-1 ≤ 0`).
    ///
    /// Returns `None` when the polynomial is not a constant.
    pub fn trivial_truth(&self) -> Option<bool> {
        let c = self.poly.as_constant()?;
        Some(match self.kind {
            AtomKind::Le => !c.is_positive(),
            AtomKind::Lt => c.is_negative(),
            AtomKind::Eq => c.is_zero(),
        })
    }

    /// The negation of this atom as one or more atoms whose *disjunction* is
    /// the negation (an equality negates to two strict inequalities).
    pub fn negate(&self) -> Vec<Atom> {
        match self.kind {
            AtomKind::Le => vec![Atom::lt_zero(-&self.poly)],
            AtomKind::Lt => vec![Atom::le_zero(-&self.poly)],
            AtomKind::Eq => vec![Atom::lt_zero(self.poly.clone()), Atom::lt_zero(-&self.poly)],
        }
    }

    /// Renames symbols throughout the atom.
    pub fn rename(&self, f: &mut impl FnMut(&Symbol) -> Symbol) -> Atom {
        Atom {
            poly: self.poly.rename(f),
            kind: self.kind,
        }
    }

    /// Substitutes a polynomial for a symbol.
    pub fn substitute(&self, s: &Symbol, replacement: &Polynomial) -> Atom {
        Atom {
            poly: self.poly.substitute(s, replacement),
            kind: self.kind,
        }
    }

    /// If the atom is linear, returns its linear expression.
    pub fn as_linear(&self) -> Option<LinearExpr> {
        self.poly.as_linear()
    }

    /// Whether the atom's polynomial is linear in its symbols.
    pub fn is_linear(&self) -> bool {
        self.poly.is_linear()
    }

    /// Whether the atom is an upper bound on the given symbol, i.e. has the
    /// form `c·s + rest ≤ 0` with `c > 0` and `s` not occurring in `rest`.
    /// Returns the bound `rest / -c` (so `s ≤ bound`) when it is.
    pub fn upper_bound_on(&self, s: &Symbol) -> Option<Polynomial> {
        let lin_coeff = self.linear_coefficient_of(s)?;
        if !lin_coeff.is_positive() {
            return None;
        }
        // Build the single term directly rather than scaling a fresh
        // one-term polynomial (one allocation instead of two per bound probe
        // — this runs once per atom × candidate symbol during height-bound
        // extraction).
        let var_part = Polynomial::term(lin_coeff.clone(), Monomial::var(*s));
        let rest = &self.poly - &var_part;
        if rest.symbols().contains(s) {
            return None;
        }
        Some(rest.scale(&(-lin_coeff.recip())))
    }

    /// Whether the atom is a lower bound on the given symbol, i.e. has the
    /// form `-c·s + rest ≤ 0` with `c > 0` and `s` not occurring in `rest`.
    /// Returns the bound `rest / c` (so `s ≥ bound`) when it is.
    pub fn lower_bound_on(&self, s: &Symbol) -> Option<Polynomial> {
        let lin_coeff = self.linear_coefficient_of(s)?;
        if !lin_coeff.is_negative() {
            return None;
        }
        let var_part = Polynomial::term(lin_coeff.clone(), Monomial::var(*s));
        let rest = &self.poly - &var_part;
        if rest.symbols().contains(s) {
            return None;
        }
        Some(rest.scale(&(-lin_coeff).recip()))
    }

    /// The coefficient of `s` as a *linear* occurrence; `None` if `s` occurs
    /// inside a non-linear monomial.
    fn linear_coefficient_of(&self, s: &Symbol) -> Option<BigRational> {
        let mut coeff = BigRational::zero();
        for (m, c) in self.poly.terms() {
            let e = m.exponent(s);
            if e == 0 {
                continue;
            }
            if e > 1 || m.degree() > 1 {
                return None;
            }
            coeff = c.clone();
        }
        Some(coeff)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            AtomKind::Le => "≤",
            AtomKind::Lt => "<",
            AtomKind::Eq => "=",
        };
        write!(f, "{} {} 0", self.poly, op)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chora_numeric::rat;

    fn x() -> Polynomial {
        Polynomial::var(Symbol::new("x"))
    }
    fn c(v: i64) -> Polynomial {
        Polynomial::constant(rat(v))
    }

    #[test]
    fn constructors_and_display() {
        assert_eq!(Atom::le(x(), c(5)).to_string(), "x - 5 ≤ 0");
        assert_eq!(Atom::ge(x(), c(5)).to_string(), "-x + 5 ≤ 0");
        assert_eq!(Atom::eq(x(), c(5)).to_string(), "x - 5 = 0");
        assert_eq!(Atom::gt(x(), c(0)).to_string(), "-x < 0");
    }

    #[test]
    fn trivial_truth() {
        assert_eq!(Atom::le(c(3), c(5)).trivial_truth(), Some(true));
        assert_eq!(Atom::le(c(7), c(5)).trivial_truth(), Some(false));
        assert_eq!(Atom::lt(c(5), c(5)).trivial_truth(), Some(false));
        assert_eq!(Atom::eq(c(5), c(5)).trivial_truth(), Some(true));
        assert_eq!(Atom::le(x(), c(5)).trivial_truth(), None);
    }

    #[test]
    fn negation() {
        let a = Atom::le(x(), c(5)); // x <= 5
        let negs = a.negate(); // x > 5
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0].to_string(), "-x + 5 < 0");
        let e = Atom::eq(x(), c(0));
        assert_eq!(e.negate().len(), 2);
    }

    #[test]
    fn upper_bound_extraction() {
        // 2x - y - 4 <= 0   =>   x <= (y + 4)/2
        let y = Polynomial::var(Symbol::new("y"));
        let a = Atom::le_zero(&(&x().scale(&rat(2)) - &y) - &c(4));
        let ub = a.upper_bound_on(&Symbol::new("x")).unwrap();
        assert_eq!(ub.to_string(), "1/2·y + 2");
        // No upper bound when coefficient is negative.
        assert!(Atom::le_zero(&-&x() + &c(1))
            .upper_bound_on(&Symbol::new("x"))
            .is_none());
        // Nonlinear occurrence is rejected.
        let nl = Atom::le_zero(&(&x() * &x()) - &c(1));
        assert!(nl.upper_bound_on(&Symbol::new("x")).is_none());
    }

    #[test]
    fn rename_and_substitute() {
        let a = Atom::le(x(), c(0));
        let renamed = a.rename(&mut |s| s.primed());
        assert_eq!(renamed.to_string(), "x' ≤ 0");
        let substituted = a.substitute(&Symbol::new("x"), &c(3));
        assert_eq!(substituted.trivial_truth(), Some(false));
    }
}
