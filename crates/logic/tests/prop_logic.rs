//! Property tests for the polyhedra / transition-formula substrate.
//!
//! The key soundness properties exercised here:
//! * projection over-approximates: any point of P restricted to the kept
//!   dimensions satisfies the projection;
//! * join over-approximates both operands;
//! * entailment agrees with point evaluation on random rational points;
//! * relational composition agrees with composing concrete updates.

use chora_expr::{Polynomial, Symbol};
use chora_logic::{Atom, Polyhedron, TransitionFormula};
use chora_numeric::{rat, BigRational};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn sym(name: &str) -> Symbol {
    Symbol::new(name)
}

fn var(name: &str) -> Polynomial {
    Polynomial::var(sym(name))
}

fn c(v: i64) -> Polynomial {
    Polynomial::constant(rat(v))
}

/// Builds a random small polyhedron over x, y from interval + relational
/// constraints, guaranteed to contain the point (px, py).
fn containing_polyhedron(px: i64, py: i64, slack: (i64, i64, i64)) -> Polyhedron {
    let (a, b, d) = slack;
    Polyhedron::from_atoms(vec![
        Atom::ge(var("x"), c(px - a.abs())),
        Atom::le(var("x"), c(px + b.abs())),
        Atom::ge(var("y"), c(py - b.abs())),
        Atom::le(var("y"), c(py + a.abs())),
        // a relational constraint that the point satisfies by construction
        Atom::le(&var("x") - &var("y"), c(px - py + d.abs())),
    ])
}

fn point_env(px: i64, py: i64) -> BTreeMap<Symbol, BigRational> {
    let mut env = BTreeMap::new();
    env.insert(sym("x"), rat(px));
    env.insert(sym("y"), rat(py));
    env
}

fn satisfies(p: &Polyhedron, env: &BTreeMap<Symbol, BigRational>) -> bool {
    p.atoms().iter().all(|a| {
        let v = a.poly.eval(env).expect("point covers all symbols");
        match a.kind {
            chora_logic::AtomKind::Le => !v.is_positive(),
            chora_logic::AtomKind::Lt => v.is_negative(),
            chora_logic::AtomKind::Eq => v.is_zero(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn polyhedron_containing_point_is_satisfiable(
        px in -20i64..20, py in -20i64..20,
        slack in (0i64..5, 0i64..5, 0i64..5),
    ) {
        let p = containing_polyhedron(px, py, slack);
        prop_assert!(satisfies(&p, &point_env(px, py)));
        prop_assert!(!p.is_empty_set());
    }

    #[test]
    fn join_over_approximates_both_operands(
        p1 in (-10i64..10, -10i64..10, (0i64..4, 0i64..4, 0i64..4)),
        p2 in (-10i64..10, -10i64..10, (0i64..4, 0i64..4, 0i64..4)),
    ) {
        let a = containing_polyhedron(p1.0, p1.1, p1.2);
        let b = containing_polyhedron(p2.0, p2.1, p2.2);
        let hull = a.join(&b);
        // The witness points of both operands satisfy the hull.
        prop_assert!(satisfies(&hull, &point_env(p1.0, p1.1)));
        prop_assert!(satisfies(&hull, &point_env(p2.0, p2.1)));
        // And the hull is implied by neither being tighter than the operands:
        // every constraint of the hull is entailed by each operand.
        for atom in hull.atoms() {
            prop_assert!(a.implies_atom(atom), "hull constraint {atom} not implied by left operand");
            prop_assert!(b.implies_atom(atom), "hull constraint {atom} not implied by right operand");
        }
    }

    #[test]
    fn projection_over_approximates(
        px in -10i64..10, py in -10i64..10,
        slack in (0i64..4, 0i64..4, 0i64..4),
    ) {
        let p = containing_polyhedron(px, py, slack);
        let keep: BTreeSet<Symbol> = [sym("x")].into_iter().collect();
        let proj = p.project_onto(&keep);
        // The x-component of the witness point satisfies the projection.
        let mut env = BTreeMap::new();
        env.insert(sym("x"), rat(px));
        prop_assert!(proj.atoms().iter().all(|a| a.symbols().iter().all(|s| s == &sym("x"))));
        prop_assert!(satisfies(&proj, &env));
    }

    #[test]
    fn implication_agrees_with_point_evaluation(
        px in -10i64..10, py in -10i64..10,
        slack in (0i64..4, 0i64..4, 0i64..4),
        bound in -30i64..30,
    ) {
        let p = containing_polyhedron(px, py, slack);
        let atom = Atom::le(var("x"), c(bound));
        if p.implies_atom(&atom) {
            // then in particular the witness point satisfies it
            prop_assert!(px <= bound);
        }
        // and conversely if the witness point violates it, implication must fail
        if px > bound {
            prop_assert!(!p.implies_atom(&atom));
        }
    }

    #[test]
    fn composition_matches_concrete_updates(a1 in -5i64..5, a2 in -5i64..5, x0 in -10i64..10) {
        // x := x + a1 ; x := x + a2  ==  x := x + (a1 + a2)
        let vars = vec![sym("x")];
        let f1 = TransitionFormula::assign(&sym("x"), &(&var("x") + &c(a1)), &vars);
        let f2 = TransitionFormula::assign(&sym("x"), &(&var("x") + &c(a2)), &vars);
        let seq = f1.sequence(&f2, &vars);
        let expected = Atom::eq(Polynomial::var(sym("x").primed()), &var("x") + &c(a1 + a2));
        prop_assert!(seq.implies_atom(&expected));
        // Spot-check with a concrete pre-state.
        let mut env = BTreeMap::new();
        env.insert(sym("x"), rat(x0));
        env.insert(sym("x").primed(), rat(x0 + a1 + a2));
        for d in seq.disjuncts() {
            prop_assert!(satisfies(d, &env));
        }
    }

    #[test]
    fn union_is_upper_bound(v1 in -10i64..10, v2 in -10i64..10) {
        let vars = vec![sym("x")];
        let f1 = TransitionFormula::assign(&sym("x"), &c(v1), &vars);
        let f2 = TransitionFormula::assign(&sym("x"), &c(v2), &vars);
        let u = f1.union(&f2);
        let lo = v1.min(v2);
        let hi = v1.max(v2);
        prop_assert!(u.implies_atom(&Atom::ge(Polynomial::var(sym("x").primed()), c(lo))));
        prop_assert!(u.implies_atom(&Atom::le(Polynomial::var(sym("x").primed()), c(hi))));
    }

    #[test]
    fn abstract_hull_entails_interval(vals in prop::collection::vec(-10i64..10, 1..5)) {
        let vars = vec![sym("x")];
        let mut f = TransitionFormula::bottom();
        for v in &vals {
            f = f.union(&TransitionFormula::assign(&sym("x"), &c(*v), &vars));
        }
        let keep: BTreeSet<Symbol> = [sym("x").primed()].into_iter().collect();
        let hull = f.abstract_hull(&keep);
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        prop_assert!(hull.implies_atom(&Atom::ge(Polynomial::var(sym("x").primed()), c(lo))));
        prop_assert!(hull.implies_atom(&Atom::le(Polynomial::var(sym("x").primed()), c(hi))));
    }
}
