//! Differential property tests for the algorithmic Fourier–Motzkin engine.
//!
//! The optimized projection pass (greedy elimination order, canonical-row
//! hash-consing, domination pruning, Imbert's acceleration, early-unsat
//! exit) is checked against the preserved fixed-order naive path
//! (`project_onto_naive` / `is_empty_set_naive` / `implies_atom_naive`) on
//! random small linear systems, where the constraint budget is never hit
//! and the two engines must therefore decide exactly the same linear
//! relaxation:
//!
//! * the two projections entail each other atom-for-atom (each engine's
//!   output is verified with the *other* engine, so a shared bug cannot
//!   vouch for itself),
//! * satisfiability verdicts agree, including on contradictory systems,
//! * single-atom and batched (`implies_all`, with its early-unsat exit)
//!   entailment agree with the naive oracle.

use chora_expr::{Polynomial, Symbol};
use chora_logic::{Atom, Polyhedron};
use chora_numeric::rat;
use proptest::prelude::*;
use std::collections::BTreeSet;

const VARS: [&str; 3] = ["x", "y", "z"];

fn sym(name: &str) -> Symbol {
    Symbol::new(name)
}

/// One random linear atom `a·x + b·y + c·z + d ◇ 0` with small integer
/// coefficients; equations are rare enough that systems stay mostly
/// full-dimensional but the equality-substitution path is still exercised.
fn atom_strategy() -> impl Strategy<Value = Atom> {
    // kind weights: 0..=3 → Le, 4 → Lt, 5 → Eq.
    (-3i64..=3, -3i64..=3, -3i64..=3, -8i64..=8, 0i64..6).prop_map(|(a, b, c, d, kind)| {
        let mut poly = Polynomial::constant(rat(d));
        for (coeff, name) in [(a, VARS[0]), (b, VARS[1]), (c, VARS[2])] {
            poly = &poly + &Polynomial::var(sym(name)).scale(&rat(coeff));
        }
        match kind {
            0..=3 => Atom::le_zero(poly),
            4 => Atom::lt_zero(poly),
            _ => Atom::eq_zero(poly),
        }
    })
}

fn polyhedron_strategy() -> impl Strategy<Value = Polyhedron> {
    prop::collection::vec(atom_strategy(), 1..8).prop_map(Polyhedron::from_atoms)
}

/// Regression: an unsatisfiable all-`Le` system on which a naive counting
/// version of Kohler's criterion (global eliminated count, or per-row
/// counts without the subset-or-poison certificate rules at slot
/// collisions) skips the lineage carrying the contradiction and answers
/// "satisfiable".  Found by `satisfiability_agrees_with_naive`.
#[test]
fn kohler_pruning_keeps_contradiction_lineage() {
    let rows: [[i64; 4]; 6] = [
        [1, 0, 2, 2],
        [1, -3, -2, 8],
        [-3, 3, -1, -2],
        [1, 1, -2, -6],
        [-3, 3, 1, 7],
        [-2, -2, 0, -1],
    ];
    let p = Polyhedron::from_atoms(
        rows.map(|[a, b, c, d]| {
            let mut poly = Polynomial::constant(rat(d));
            for (coeff, name) in [(a, VARS[0]), (b, VARS[1]), (c, VARS[2])] {
                poly = &poly + &Polynomial::var(sym(name)).scale(&rat(coeff));
            }
            Atom::le_zero(poly)
        })
        .to_vec(),
    );
    assert!(p.is_empty_set_naive(), "oracle: system is unsatisfiable");
    assert!(p.is_empty_set(), "pruned engine must agree on {}", &p);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn satisfiability_agrees_with_naive(p in polyhedron_strategy()) {
        prop_assert_eq!(p.is_empty_set(), p.is_empty_set_naive(), "p = {}", &p);
    }

    #[test]
    fn projection_is_entailment_equivalent_to_naive(
        p in polyhedron_strategy(),
        keep_mask in 1u8..7,
    ) {
        let keep: BTreeSet<Symbol> = VARS
            .iter()
            .enumerate()
            .filter(|(i, _)| keep_mask & (1 << i) != 0)
            .map(|(_, name)| sym(name))
            .collect();
        let pruned = p.project_onto(&keep);
        let naive = p.project_onto_naive(&keep);
        prop_assert_eq!(
            pruned.is_empty_set(),
            naive.is_empty_set_naive(),
            "projections disagree on emptiness: pruned {} vs naive {}",
            &pruned,
            &naive
        );
        // Each engine's result is checked by the other engine: the pruned
        // projection must not be weaker than the naive one, nor stronger.
        for atom in pruned.atoms() {
            prop_assert!(
                naive.implies_atom_naive(atom),
                "pruned constraint {} not entailed by naive projection {}",
                atom,
                &naive
            );
        }
        for atom in naive.atoms() {
            prop_assert!(
                pruned.implies_atom(atom),
                "naive constraint {} not entailed by pruned projection {}",
                atom,
                &pruned
            );
        }
    }

    #[test]
    fn single_entailment_agrees_with_naive(
        p in polyhedron_strategy(),
        goal in atom_strategy(),
    ) {
        prop_assert_eq!(p.implies_atom(&goal), p.implies_atom_naive(&goal));
    }

    #[test]
    fn batched_entailment_agrees_with_naive_per_atom(
        p in polyhedron_strategy(),
        goals in prop::collection::vec(atom_strategy(), 1..5),
    ) {
        // `implies_all` shares one elimination pass across the goals and
        // exits early on a derived contradiction; the naive oracle runs one
        // fixed-order check per goal.  On budget-free systems they must
        // agree — in particular for unsatisfiable `p`, where the early-unsat
        // exit answers for every goal at once.
        let batched = p.implies_all(&goals);
        let oracle = goals.iter().all(|g| p.implies_atom_naive(g));
        prop_assert_eq!(batched, oracle, "p = {}", &p);
    }
}
