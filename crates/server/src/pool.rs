//! A fixed-size worker-thread pool over `std::sync::mpsc`.
//!
//! Jobs are dealt FIFO to the first free worker.  Dropping the pool is the
//! graceful-shutdown path: the channel sender is dropped first, every
//! already-queued job still runs to completion, and only then do the
//! workers observe the disconnect and exit — which is exactly the "drain
//! in-flight work" semantics `chora serve` promises on shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads consuming a shared FIFO job queue.
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: Option<mpsc::Sender<Job>>,
    panics: Arc<AtomicU64>,
}

impl ThreadPool {
    /// Spawns `size.max(1)` workers.
    pub fn new(size: usize) -> ThreadPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..size.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("chora-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the receive, not the job.
                        let job = match receiver.lock().expect("pool queue lock").recv() {
                            Ok(job) => job,
                            Err(_) => break, // Sender dropped: queue drained.
                        };
                        // A panicking job must not take the worker down with
                        // it — the connection is lost, the pool survives.
                        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                            panics.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            workers,
            sender: Some(sender),
            panics,
        }
    }

    /// Queues a job; it runs on the first free worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }

    /// How many jobs have panicked since the pool started.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for ThreadPool {
    /// Graceful drain: close the queue, then wait for every worker to
    /// finish the jobs already accepted.
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_queued_jobs_run_before_drop_returns() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(3);
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 20, "drop must drain the queue");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("job panic"));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        // Give the single worker time to process both, then drain.
        let panics = {
            std::thread::sleep(std::time::Duration::from_millis(50));
            pool.panics()
        };
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(panics, 1);
    }
}
