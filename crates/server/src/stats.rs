//! Request accounting for `GET /v1/stats`: per-endpoint counts and
//! wall-clock timings, status-class counters, housekeeping (GC) run
//! tracking, and the uptime clock.  Every request is double-entered into
//! the process-wide telemetry registry, so `GET /v1/metrics` exposes the
//! same numbers in Prometheus form.

use crate::http::json_string;
use chora_telemetry::metrics::registry;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch, for wall-clock stamps in `/v1/stats`
/// (uptime itself stays on the monotonic clock).
fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Aggregate timings of one endpoint.
#[derive(Clone, Copy, Debug, Default)]
struct EndpointStats {
    count: u64,
    total_ms: f64,
    max_ms: f64,
}

/// Shared, thread-safe request accounting.
pub struct ServerStats {
    started: Instant,
    started_unix_ms: u64,
    endpoints: Mutex<BTreeMap<String, EndpointStats>>,
    connections: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    gc_runs: AtomicU64,
    gc_last_unix_ms: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    pub fn new() -> ServerStats {
        let started_unix_ms = now_unix_ms();
        registry()
            .gauge(
                "chora_process_start_time_ms",
                "Wall-clock start instant of the most recent server, Unix milliseconds.",
            )
            .set(started_unix_ms);
        ServerStats {
            started: Instant::now(),
            started_unix_ms,
            endpoints: Mutex::new(BTreeMap::new()),
            connections: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            gc_runs: AtomicU64::new(0),
            gc_last_unix_ms: AtomicU64::new(0),
        }
    }

    /// Records one accepted connection (a keep-alive connection counts
    /// once, however many requests it carries — `responses` minus this is
    /// the reuse win).
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        registry()
            .counter(
                "chora_http_connections_total",
                "TCP connections accepted by the server.",
            )
            .inc();
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: &str, status: u16, elapsed_ms: f64) {
        let class = match status {
            200..=299 => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                "2xx"
            }
            400..=499 => {
                self.client_errors.fetch_add(1, Ordering::Relaxed);
                "4xx"
            }
            _ => {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
                "5xx"
            }
        };
        registry()
            .counter_with(
                "chora_http_requests_total",
                "HTTP requests served, by endpoint and status class.",
                &[("endpoint", endpoint), ("class", class)],
            )
            .inc();
        registry()
            .histogram_with(
                "chora_http_request_duration_ms",
                "Wall-clock request handling time, by endpoint.",
                &[("endpoint", endpoint)],
            )
            .observe_ms(elapsed_ms);
        let mut endpoints = self.endpoints.lock().expect("stats lock");
        let entry = endpoints.entry(endpoint.to_string()).or_default();
        entry.count += 1;
        entry.total_ms += elapsed_ms;
        entry.max_ms = entry.max_ms.max(elapsed_ms);
    }

    /// Records one housekeeping (GC/maintenance) pass.
    pub fn record_gc(&self) {
        self.gc_runs.fetch_add(1, Ordering::Relaxed);
        self.gc_last_unix_ms.store(now_unix_ms(), Ordering::Relaxed);
        registry()
            .counter(
                "chora_gc_runs_total",
                "Housekeeping (cache GC) passes completed.",
            )
            .inc();
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Renders the full `/v1/stats` document, merging in the backend's
    /// cache counters (name/value pairs rendered under `"cache"`) and its
    /// Fourier–Motzkin projection counters (rendered under `"fm"`).
    pub fn to_json(
        &self,
        cache_counters: &[(&'static str, u64)],
        fm_counters: &[(&'static str, u64)],
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"uptime_ms\": {:.3},", self.uptime_ms());
        let _ = writeln!(out, "  \"started_unix_ms\": {},", self.started_unix_ms);
        let _ = writeln!(
            out,
            "  \"gc\": {{\"runs\": {}, \"last_unix_ms\": {}}},",
            self.gc_runs.load(Ordering::Relaxed),
            self.gc_last_unix_ms.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "  \"connections\": {},",
            self.connections.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "  \"responses\": {{\"ok\": {}, \"client_errors\": {}, \"server_errors\": {}}},",
            self.ok.load(Ordering::Relaxed),
            self.client_errors.load(Ordering::Relaxed),
            self.server_errors.load(Ordering::Relaxed)
        );
        out.push_str("  \"requests\": {");
        let endpoints = self.endpoints.lock().expect("stats lock");
        let mut first = true;
        for (endpoint, s) in endpoints.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let mean = if s.count > 0 {
                s.total_ms / s.count as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "\n    {}: {{\"count\": {}, \"total_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}",
                json_string(endpoint),
                s.count,
                s.total_ms,
                mean,
                s.max_ms
            );
        }
        drop(endpoints);
        out.push_str("\n  },\n  \"cache\": {");
        for (i, (name, value)) in cache_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {value}");
        }
        out.push_str("\n  },\n  \"fm\": {");
        for (i, (name, value)) in fm_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{name}\": {value}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_includes_endpoints_and_cache_counters() {
        let stats = ServerStats::new();
        stats.record_connection();
        stats.record("/v1/analyze", 200, 12.5);
        stats.record("/v1/analyze", 400, 0.5);
        stats.record("/v1/healthz", 200, 0.1);
        let doc = stats.to_json(
            &[("mem_hits", 3), ("disk_probes", 1)],
            &[("rows_generated", 288), ("rows_dominated", 208)],
        );
        assert!(doc.contains("\"/v1/analyze\": {\"count\": 2"), "{doc}");
        assert!(doc.contains("\"/v1/healthz\""), "{doc}");
        assert!(doc.contains("\"connections\": 1"), "{doc}");
        assert!(doc.contains("\"started_unix_ms\": "), "{doc}");
        assert!(
            doc.contains("\"gc\": {\"runs\": 0, \"last_unix_ms\": 0}"),
            "{doc}"
        );
        assert!(doc.contains("\"ok\": 2"), "{doc}");
        assert!(doc.contains("\"client_errors\": 1"), "{doc}");
        assert!(doc.contains("\"mem_hits\": 3"), "{doc}");
        assert!(doc.contains("\"disk_probes\": 1"), "{doc}");
        assert!(doc.contains("\"fm\": {"), "{doc}");
        assert!(doc.contains("\"rows_generated\": 288"), "{doc}");
        assert!(doc.contains("\"rows_dominated\": 208"), "{doc}");
        // An empty fm section still renders as a (empty) JSON object.
        let bare = stats.to_json(&[], &[]);
        assert!(bare.contains("\"fm\": {"), "{bare}");
    }

    #[test]
    fn gc_runs_are_stamped() {
        let stats = ServerStats::new();
        stats.record_gc();
        let doc = stats.to_json(&[], &[]);
        assert!(
            doc.contains("\"gc\": {\"runs\": 1, \"last_unix_ms\": "),
            "{doc}"
        );
        assert!(!doc.contains("\"last_unix_ms\": 0}"), "{doc}");
    }
}
