//! # chora-server
//!
//! The daemon substrate behind `chora serve`: a hand-rolled, std-only
//! HTTP/1.1 server over [`std::net::TcpListener`] with a fixed
//! [worker-thread pool](pool::ThreadPool), a [request router](router), a
//! [stats registry](stats::ServerStats), graceful shutdown
//! (SIGINT/SIGTERM via [`signal`], or `POST /v1/shutdown`), and a
//! [one-shot client](client) for `chora request` and benchmarks.
//!
//! The crate knows nothing about `.imp` programs: the analysis itself is
//! injected through the [`AnalysisBackend`] trait, implemented by
//! `chora_cli::serve` on top of the factored CLI driver — so the daemon
//! never shells out, and the CLI binary avoids a dependency cycle
//! (`chora-cli → chora-server`, backend flowing the other way as a trait
//! object).
//!
//! ## Protocol
//!
//! | method | path             | body       | response                              |
//! |--------|------------------|------------|---------------------------------------|
//! | POST   | `/v1/analyze`    | `.imp` src | the `chora analyze --json` document   |
//! | POST   | `/v1/complexity` | `.imp` src | the `chora complexity --json` document|
//! | GET    | `/v1/healthz`    | —          | `{"status": "ok", ...}`               |
//! | GET    | `/v1/stats`      | —          | request timings + cache counters      |
//! | POST   | `/v1/shutdown`   | —          | `{"ok": true}`, then drain and exit   |
//!
//! Query parameters (`file`, `jobs`, `proc`, `cost`, `size`) parameterize
//! the analysis exactly like the CLI flags of the same names.  Errors are
//! always JSON envelopes `{"error": "..."}` with a 4xx/5xx status; a
//! malformed request can never take a worker down.

pub mod client;
pub mod http;
pub mod pool;
pub mod router;
pub mod signal;
pub mod stats;

use http::{read_request, Request, Response};
use pool::ThreadPool;
use router::{route, Endpoint};
use stats::ServerStats;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// The analysis service the daemon hosts, implemented by the CLI crate on
/// top of its factored driver.
///
/// `analyze`/`complexity` take the request's query parameters and the
/// `.imp` source from the body, and return the *identical* JSON document
/// the corresponding CLI subcommand prints (an `Err` becomes a 400 with a
/// JSON error envelope).  `cache_counters` feeds the `"cache"` section of
/// `/v1/stats`; `maintain` runs on the housekeeping thread every
/// `maintenance_interval` (cache GC).
pub trait AnalysisBackend: Send + Sync + 'static {
    /// `POST /v1/analyze`.
    fn analyze(&self, query: &[(String, String)], source: &str) -> Result<String, String>;

    /// `POST /v1/complexity`.
    fn complexity(&self, query: &[(String, String)], source: &str) -> Result<String, String>;

    /// Name/value pairs rendered under `"cache"` in `/v1/stats`.
    fn cache_counters(&self) -> Vec<(&'static str, u64)>;

    /// Periodic maintenance hook (e.g. a store GC pass).
    fn maintain(&self) {}

    /// How often [`maintain`](AnalysisBackend::maintain) should run;
    /// `None` disables the housekeeping thread.
    fn maintenance_interval(&self) -> Option<Duration> {
        None
    }
}

/// Daemon configuration (`chora serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7557` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Suppress the per-request stderr log line.
    pub quiet: bool,
    /// Install the SIGINT/SIGTERM handler (the CLI path; tests and
    /// embedded servers leave the process signal state alone).
    pub handle_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7557".to_string(),
            workers: 4,
            quiet: false,
            handle_signals: false,
        }
    }
}

/// A running daemon spawned with [`spawn`]: the bound address plus the
/// handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the drain to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Binds and serves on the calling thread until shutdown (signal or
/// `POST /v1/shutdown`).  This is the `chora serve` entry point.
pub fn run(config: ServerConfig, backend: Arc<dyn AnalysisBackend>) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.addr)?;
    if config.handle_signals {
        signal::install();
    }
    if !config.quiet {
        eprintln!(
            "chora serve: listening on http://{} ({} workers)",
            listener.local_addr()?,
            config.workers.max(1)
        );
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    serve_on(listener, &config, backend, shutdown);
    Ok(())
}

/// Binds, then serves on a background thread; returns once the socket is
/// live.  This is the test/bench entry point (ephemeral ports).
pub fn spawn(
    config: ServerConfig,
    backend: Arc<dyn AnalysisBackend>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("chora-serve".to_string())
        .spawn(move || serve_on(listener, &config, backend, flag))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// The accept loop: non-blocking accept + shutdown-flag poll, one pool job
/// per connection.  Returns only after every accepted connection has been
/// answered (the pool drains on drop).
fn serve_on(
    listener: TcpListener,
    config: &ServerConfig,
    backend: Arc<dyn AnalysisBackend>,
    shutdown: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking mode");
    let pool = ThreadPool::new(config.workers);
    let stats = Arc::new(ServerStats::new());
    let housekeeping = backend.maintenance_interval().map(|interval| {
        let backend = Arc::clone(&backend);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("chora-housekeeping".to_string())
            .spawn(move || {
                let mut last = Instant::now();
                while !shutdown.load(Ordering::SeqCst) && !signal::signalled() {
                    std::thread::sleep(ACCEPT_POLL.max(Duration::from_millis(20)));
                    if last.elapsed() >= interval {
                        backend.maintain();
                        last = Instant::now();
                    }
                }
            })
            .expect("spawn housekeeping thread")
    });

    while !shutdown.load(Ordering::SeqCst) && !signal::signalled() {
        match listener.accept() {
            Ok((stream, peer)) => {
                // On several platforms (BSD, macOS, Windows) accepted
                // sockets inherit the listener's non-blocking mode; the
                // workers want plain blocking reads with timeouts.
                let _ = stream.set_nonblocking(false);
                let backend = Arc::clone(&backend);
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let quiet = config.quiet;
                pool.execute(move || {
                    handle_connection(stream, peer, &*backend, &stats, &shutdown, quiet)
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    if !config.quiet {
        eprintln!("chora serve: draining in-flight requests");
    }
    drop(pool); // Joins the workers: every accepted request gets its answer.
    if let Some(thread) = housekeeping {
        let _ = thread.join();
    }
}

/// Reads one request, dispatches it, writes the response, records stats.
fn handle_connection(
    mut stream: TcpStream,
    peer: SocketAddr,
    backend: &dyn AnalysisBackend,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    quiet: bool,
) {
    let started = Instant::now();
    let (endpoint_label, response) = match read_request(&mut stream) {
        Ok(request) => dispatch(&request, backend, stats, shutdown),
        Err(e) => ("<malformed>", Response::error(e.status, &e.message)),
    };
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    stats.record(endpoint_label, response.status, elapsed_ms);
    let _ = response.write_to(&mut stream);
    if !quiet {
        eprintln!(
            "chora serve: {peer} {endpoint_label} {} {elapsed_ms:.1}ms",
            response.status
        );
    }
}

/// Routes and executes one well-formed request, returning the response
/// plus the stats label — the endpoint's canonical path, or a fixed
/// `<unrouted>` bucket, so probing arbitrary paths cannot grow the stats
/// map without bound.
fn dispatch(
    request: &Request,
    backend: &dyn AnalysisBackend,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) -> (&'static str, Response) {
    let endpoint = match route(&request.method, &request.path) {
        Ok(endpoint) => endpoint,
        Err(response) => return ("<unrouted>", response),
    };
    let response = match endpoint {
        Endpoint::Healthz => Response::json(
            200,
            format!(
                "{{\"status\": \"ok\", \"uptime_ms\": {:.3}}}\n",
                stats.uptime_ms()
            ),
        ),
        Endpoint::Stats => Response::json(200, stats.to_json(&backend.cache_counters())),
        Endpoint::Shutdown => {
            shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"ok\": true, \"draining\": true}\n")
        }
        Endpoint::Analyze | Endpoint::Complexity => {
            let source = match request.body_utf8() {
                Ok(source) => source,
                Err(e) => return (endpoint.path(), Response::error(e.status, &e.message)),
            };
            let result = if endpoint == Endpoint::Analyze {
                backend.analyze(&request.query, source)
            } else {
                backend.complexity(&request.query, source)
            };
            match result {
                Ok(body) => Response::json(200, body),
                Err(message) => Response::error(400, &message),
            }
        }
    };
    (endpoint.path(), response)
}
