//! # chora-server
//!
//! The daemon substrate behind `chora serve`: a hand-rolled, std-only
//! HTTP/1.1 server over [`std::net::TcpListener`] with keep-alive and
//! request pipelining, a fixed [worker-thread pool](pool::ThreadPool), a
//! [declarative request router](router::ROUTES), a
//! [stats registry](stats::ServerStats), graceful shutdown
//! (SIGINT/SIGTERM via [`signal`], or `POST /v1/shutdown`), and a
//! [connection-reusing client](client::Client) for `chora request` and
//! benchmarks.
//!
//! The crate knows nothing about `.imp` programs: the analysis itself is
//! injected through the [`AnalysisBackend`] trait, implemented by
//! `chora_cli::serve` on top of the factored CLI driver — so the daemon
//! never shells out, and the CLI binary avoids a dependency cycle
//! (`chora-cli → chora-server`, backend flowing the other way as a trait
//! object).
//!
//! ## Protocol
//!
//! | method | path             | body            | response                               |
//! |--------|------------------|-----------------|----------------------------------------|
//! | POST   | `/v1/analyze`    | `.imp` src      | the `chora analyze --json` document    |
//! | POST   | `/v1/batch`      | JSON array of `{"file", "source"}` | index-aligned array of analyze documents |
//! | POST   | `/v1/complexity` | `.imp` src      | the `chora complexity --json` document |
//! | GET    | `/v1/healthz`    | —               | `{"status": "ok", ...}`                |
//! | GET    | `/v1/stats`      | —               | request timings + cache counters       |
//! | GET    | `/v1/metrics`    | —               | Prometheus text exposition of the telemetry registry |
//! | POST   | `/v1/shutdown`   | —               | `{"ok": true}`, then drain and exit    |
//!
//! Query parameters (`file`, `jobs`, `proc`, `cost`, `size`; `jobs` only
//! for `/v1/batch`) parameterize the analysis exactly like the CLI flags
//! of the same names.  Errors are always JSON envelopes `{"error": "..."}`
//! with a 4xx/5xx status; a malformed request can never take a worker
//! down.  A 405 carries an `Allow` header listing the accepted methods.
//!
//! ## Connection lifecycle
//!
//! Connections are persistent (HTTP/1.1 keep-alive): a worker owns one
//! connection and answers requests off it in a loop — pipelined requests
//! included — until the client sends `Connection: close` (or speaks
//! HTTP/1.0 without opting in), the per-connection request cap is
//! reached, the idle timeout expires, a framing error occurs, or the
//! server starts draining.  Each response says which via its own
//! `Connection` header.  Bodies are always `Content-Length`-framed; a
//! stalled head read is cut off by a deadline (408), so a slowloris peer
//! cannot pin a worker.

pub mod client;
pub mod http;
pub mod pool;
pub mod router;
pub mod signal;
pub mod stats;

use http::{Conn, ConnLimits, Next, Request, Response};
use pool::ThreadPool;
use router::{route, Ctx};
use stats::ServerStats;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// The analysis service the daemon hosts, implemented by the CLI crate on
/// top of its factored driver.
///
/// `analyze`/`complexity` take the request's query parameters and the
/// `.imp` source from the body, and return the *identical* JSON document
/// the corresponding CLI subcommand prints (an `Err` becomes a 400 with a
/// JSON error envelope).  `batch` takes a JSON array of
/// `{"file", "source"}` objects and returns an index-aligned JSON array
/// whose elements are byte-identical to the corresponding single-shot
/// `analyze` documents.  `cache_counters` feeds the `"cache"` section of
/// `/v1/stats`; `maintain` runs on the housekeeping thread every
/// `maintenance_interval` (cache GC).
pub trait AnalysisBackend: Send + Sync + 'static {
    /// `POST /v1/analyze`.
    fn analyze(&self, query: &[(String, String)], source: &str) -> Result<String, String>;

    /// `POST /v1/complexity`.
    fn complexity(&self, query: &[(String, String)], source: &str) -> Result<String, String>;

    /// `POST /v1/batch`.  The default declines, so minimal backends (and
    /// test stubs) need not implement JSON-array parsing.
    fn batch(&self, _query: &[(String, String)], _body: &str) -> Result<String, String> {
        Err("this backend does not support /v1/batch".to_string())
    }

    /// `GET /v1/summaries/{key}` — the raw serialized cache entry under
    /// the hex component key, from the backend's *local* store only.
    /// `Ok(None)` is a clean 404 (not cached here); `Err` is a 400
    /// (malformed key).  `src` is the requesting run's source-program
    /// fingerprint, used for cross-program reuse accounting.  The default
    /// declines, so minimal backends need not carry a store.
    fn summary_get(&self, _keyhex: &str, _src: Option<&str>) -> Result<Option<String>, String> {
        Err("this backend does not serve summaries".to_string())
    }

    /// `PUT /v1/summaries/{key}` — a peer publishing an entry into the
    /// backend's local store.  Implementations must validate the entry's
    /// envelope against `keyhex` before adopting it.
    fn summary_put(&self, _keyhex: &str, _src: Option<&str>, _entry: &str) -> Result<(), String> {
        Err("this backend does not accept summaries".to_string())
    }

    /// Name/value pairs rendered under `"cache"` in `/v1/stats`.
    fn cache_counters(&self) -> Vec<(&'static str, u64)>;

    /// Name/value pairs rendered under `"fm"` in `/v1/stats` — the
    /// Fourier–Motzkin projection counters (rows generated / deduped /
    /// dominated, Imbert skips, early-unsat exits, widest system).  The
    /// default is empty for backends whose logic crate was built without
    /// the `stats` feature.
    fn fm_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Periodic maintenance hook (e.g. a store GC pass).
    fn maintain(&self) {}

    /// How often [`maintain`](AnalysisBackend::maintain) should run;
    /// `None` disables the housekeeping thread.
    fn maintenance_interval(&self) -> Option<Duration> {
        None
    }

    /// Publishes the backend's current counters into the process-wide
    /// telemetry registry; called before `/v1/metrics` and `/v1/stats`
    /// render.  The default does nothing.
    fn sync_metrics(&self) {}

    /// How the most recent request on *this thread* was served, for the
    /// request log: e.g. `response-hit`, `parse-hit`, `miss`.  Backends
    /// without request caches report `-`.
    fn last_hit_class(&self) -> &'static str {
        "-"
    }
}

/// Shape of the per-request log line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented single line (the historical format).
    #[default]
    Text,
    /// One JSON object per line, machine-parseable.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format `{other}` (expected text|json)")),
        }
    }
}

/// Daemon configuration (`chora serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7557` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads handling connections (each worker owns one live
    /// connection at a time).
    pub workers: usize,
    /// Suppress the per-request stderr log line.
    pub quiet: bool,
    /// Install the SIGINT/SIGTERM handler (the CLI path; tests and
    /// embedded servers leave the process signal state alone).
    pub handle_signals: bool,
    /// Most requests served over one keep-alive connection before the
    /// server closes it (a fairness valve: one chatty client cannot own a
    /// worker forever).
    pub max_requests_per_conn: usize,
    /// How long an idle keep-alive connection waits for its next request.
    pub idle_timeout: Duration,
    /// Wall-clock allowed for one request head, counted from its first
    /// byte (slowloris guard; expiry is a 408).
    pub head_deadline: Duration,
    /// Request log line shape (`--log-format text|json`).
    pub log_format: LogFormat,
    /// Requests at or above this duration are logged with a `slow` marker
    /// — even under `quiet`, so a throttled log still surfaces outliers.
    /// `None` disables the slow-request path.
    pub slow_request_ms: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7557".to_string(),
            workers: 4,
            quiet: false,
            handle_signals: false,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(5),
            head_deadline: http::IO_TIMEOUT,
            log_format: LogFormat::Text,
            slow_request_ms: None,
        }
    }
}

impl ServerConfig {
    fn limits(&self) -> ConnLimits {
        ConnLimits {
            head_deadline: self.head_deadline,
            idle_timeout: self.idle_timeout,
        }
    }

    fn request_log(&self) -> RequestLog {
        RequestLog {
            format: self.log_format,
            quiet: self.quiet,
            slow_request_ms: self.slow_request_ms,
        }
    }
}

/// The per-connection view of the logging configuration.
#[derive(Clone, Copy, Debug)]
struct RequestLog {
    format: LogFormat,
    quiet: bool,
    slow_request_ms: Option<f64>,
}

/// Monotone request ids, process-wide, for correlating log lines.
static REQUEST_IDS: AtomicU64 = AtomicU64::new(0);

impl RequestLog {
    /// Emits one request log line to stderr.  `quiet` suppresses routine
    /// lines, but a request at or past the slow threshold is always
    /// logged.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        id: u64,
        peer: SocketAddr,
        endpoint: &str,
        status: u16,
        elapsed_ms: f64,
        hit: &str,
        keep_alive: bool,
    ) {
        let slow = self
            .slow_request_ms
            .is_some_and(|limit| elapsed_ms >= limit);
        if self.quiet && !slow {
            return;
        }
        match self.format {
            LogFormat::Text => eprintln!(
                "chora serve: {peer} {endpoint} {status} {elapsed_ms:.1}ms id={id} hit={hit}{}{}",
                if slow { " (slow)" } else { "" },
                if keep_alive { "" } else { " (close)" }
            ),
            LogFormat::Json => eprintln!(
                "{{\"msg\":\"request\",\"id\":{id},\"peer\":{},\"endpoint\":{},\"status\":{status},\"duration_ms\":{elapsed_ms:.3},\"hit\":{},\"slow\":{slow},\"keep_alive\":{keep_alive}}}",
                http::json_string(&peer.to_string()),
                http::json_string(endpoint),
                http::json_string(hit),
            ),
        }
    }
}

/// A running daemon spawned with [`spawn`]: the bound address plus the
/// handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the drain to finish.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Binds and serves on the calling thread until shutdown (signal or
/// `POST /v1/shutdown`).  This is the `chora serve` entry point.
pub fn run(config: ServerConfig, backend: Arc<dyn AnalysisBackend>) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.addr)?;
    if config.handle_signals {
        signal::install();
    }
    if !config.quiet {
        eprintln!(
            "chora serve: listening on http://{} ({} workers)",
            listener.local_addr()?,
            config.workers.max(1)
        );
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    serve_on(listener, &config, backend, shutdown);
    Ok(())
}

/// Binds, then serves on a background thread; returns once the socket is
/// live.  This is the test/bench entry point (ephemeral ports).
pub fn spawn(
    config: ServerConfig,
    backend: Arc<dyn AnalysisBackend>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("chora-serve".to_string())
        .spawn(move || serve_on(listener, &config, backend, flag))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// The accept loop: non-blocking accept + shutdown-flag poll, one pool job
/// per *connection* (the job loops over that connection's requests).
/// Returns only after every accepted connection has been answered (the
/// pool drains on drop; parked keep-alive connections notice the flag and
/// close).
fn serve_on(
    listener: TcpListener,
    config: &ServerConfig,
    backend: Arc<dyn AnalysisBackend>,
    shutdown: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking mode");
    let pool = ThreadPool::new(config.workers);
    let stats = Arc::new(ServerStats::new());
    let housekeeping = backend.maintenance_interval().map(|interval| {
        let backend = Arc::clone(&backend);
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("chora-housekeeping".to_string())
            .spawn(move || {
                let mut last = Instant::now();
                while !shutdown.load(Ordering::SeqCst) && !signal::signalled() {
                    std::thread::sleep(ACCEPT_POLL.max(Duration::from_millis(20)));
                    if last.elapsed() >= interval {
                        backend.maintain();
                        stats.record_gc();
                        last = Instant::now();
                    }
                }
            })
            .expect("spawn housekeeping thread")
    });

    while !shutdown.load(Ordering::SeqCst) && !signal::signalled() {
        match listener.accept() {
            Ok((stream, peer)) => {
                // On several platforms (BSD, macOS, Windows) accepted
                // sockets inherit the listener's non-blocking mode; the
                // workers want plain blocking reads with timeouts.
                let _ = stream.set_nonblocking(false);
                // Responses go out in one write each; without TCP_NODELAY
                // Nagle would still delay a response that follows another
                // on the same keep-alive connection until the client ACKs.
                let _ = stream.set_nodelay(true);
                let backend = Arc::clone(&backend);
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let log = config.request_log();
                let limits = config.limits();
                let max_requests = config.max_requests_per_conn.max(1);
                pool.execute(move || {
                    handle_connection(
                        stream,
                        peer,
                        &*backend,
                        &stats,
                        &shutdown,
                        log,
                        limits,
                        max_requests,
                    )
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    if !config.quiet {
        eprintln!("chora serve: draining in-flight requests");
    }
    drop(pool); // Joins the workers: every accepted request gets its answer.
    if let Some(thread) = housekeeping {
        let _ = thread.join();
    }
}

/// Serves one connection to completion: requests are read, dispatched,
/// and answered in a loop until the client stops, a limit trips, or the
/// server drains.  Every response states the connection's fate in its
/// `Connection` header; error responses always close (after a framing
/// error the buffer position is untrustworthy).
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    peer: SocketAddr,
    backend: &dyn AnalysisBackend,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    log: RequestLog,
    limits: ConnLimits,
    max_requests: usize,
) {
    stats.record_connection();
    let mut conn = Conn::new(stream, limits);
    let mut served = 0usize;
    loop {
        let request = match conn.next_request(shutdown) {
            Ok(Next::Request(request)) => request,
            Ok(Next::Closed) | Ok(Next::Idle) => break,
            Err(e) => {
                let id = REQUEST_IDS.fetch_add(1, Ordering::Relaxed) + 1;
                let response = Response::error(e.status, &e.message);
                stats.record("<malformed>", response.status, 0.0);
                let _ = response.write_to(conn.stream(), false);
                log.emit(id, peer, "<malformed>", response.status, 0.0, "-", false);
                break;
            }
        };
        served += 1;
        let id = REQUEST_IDS.fetch_add(1, Ordering::Relaxed) + 1;
        let started = Instant::now();
        let (endpoint_label, response) = dispatch(&request, backend, stats, shutdown);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        stats.record(endpoint_label, response.status, elapsed_ms);
        // The shutdown check covers `POST /v1/shutdown` answered on this
        // very connection: its own response already says `close`.
        let keep_alive =
            request.keep_alive && served < max_requests && !shutdown.load(Ordering::SeqCst);
        let written = response.write_to(conn.stream(), keep_alive);
        log.emit(
            id,
            peer,
            endpoint_label,
            response.status,
            elapsed_ms,
            backend.last_hit_class(),
            keep_alive,
        );
        if written.is_err() || !keep_alive {
            break;
        }
    }
}

/// Routes and executes one well-formed request, returning the response
/// plus the stats label — the endpoint's canonical path, or a fixed
/// `<unrouted>` bucket, so probing arbitrary paths cannot grow the stats
/// map without bound.
fn dispatch(
    request: &Request,
    backend: &dyn AnalysisBackend,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) -> (&'static str, Response) {
    match route(&request.method, &request.path) {
        Ok(r) => {
            let ctx = Ctx {
                backend,
                stats,
                shutdown,
            };
            (r.path, (r.handler)(request, &ctx))
        }
        Err(response) => ("<unrouted>", response),
    }
}
