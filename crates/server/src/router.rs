//! The request router: maps `(method, path)` onto the service's endpoints.

use crate::http::Response;

/// The JSON endpoints `chora serve` exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/analyze` — full analysis report of the `.imp` body.
    Analyze,
    /// `POST /v1/complexity` — Table 1 view of the `.imp` body.
    Complexity,
    /// `GET /v1/healthz` — liveness probe.
    Healthz,
    /// `GET /v1/stats` — request timings and cache counters.
    Stats,
    /// `POST /v1/shutdown` — graceful drain-and-exit.
    Shutdown,
}

impl Endpoint {
    /// The canonical path of the endpoint.
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Analyze => "/v1/analyze",
            Endpoint::Complexity => "/v1/complexity",
            Endpoint::Healthz => "/v1/healthz",
            Endpoint::Stats => "/v1/stats",
            Endpoint::Shutdown => "/v1/shutdown",
        }
    }

    /// The only method the endpoint answers.
    pub fn method(self) -> &'static str {
        match self {
            Endpoint::Analyze | Endpoint::Complexity | Endpoint::Shutdown => "POST",
            Endpoint::Healthz | Endpoint::Stats => "GET",
        }
    }

    /// All endpoints, for routing and usage messages.
    pub fn all() -> [Endpoint; 5] {
        [
            Endpoint::Analyze,
            Endpoint::Complexity,
            Endpoint::Healthz,
            Endpoint::Stats,
            Endpoint::Shutdown,
        ]
    }

    /// Resolves an endpoint from its CLI name (`chora request <endpoint>`).
    pub fn from_name(name: &str) -> Option<Endpoint> {
        Endpoint::all()
            .into_iter()
            .find(|e| e.path().trim_start_matches("/v1/") == name)
    }
}

/// Routes a request line onto an endpoint, or produces the matching 404/405
/// JSON error response.
pub fn route(method: &str, path: &str) -> Result<Endpoint, Response> {
    match Endpoint::all().into_iter().find(|e| e.path() == path) {
        Some(endpoint) if endpoint.method() == method => Ok(endpoint),
        Some(endpoint) => Err(Response::error(
            405,
            &format!("{path} expects {}, got {method}", endpoint.method()),
        )),
        None => Err(Response::error(
            404,
            &format!(
                "no such endpoint `{path}`; available: {}",
                Endpoint::all().map(|e| e.path()).join(", ")
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint_by_method_and_path() {
        for endpoint in Endpoint::all() {
            assert_eq!(route(endpoint.method(), endpoint.path()), Ok(endpoint));
        }
    }

    #[test]
    fn wrong_method_is_405_unknown_path_is_404() {
        assert_eq!(route("GET", "/v1/analyze").unwrap_err().status, 405);
        assert_eq!(route("POST", "/v1/healthz").unwrap_err().status, 405);
        assert_eq!(route("GET", "/nope").unwrap_err().status, 404);
    }

    #[test]
    fn endpoint_names_resolve() {
        assert_eq!(Endpoint::from_name("analyze"), Some(Endpoint::Analyze));
        assert_eq!(Endpoint::from_name("stats"), Some(Endpoint::Stats));
        assert_eq!(Endpoint::from_name("bogus"), None);
    }
}
