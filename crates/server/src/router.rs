//! The request router: one declarative endpoint table — method, path,
//! handler — that drives dispatch, the 404 listing, and the `Allow` header
//! on 405s, so an endpoint is added in exactly one place.

use crate::http::{Request, Response};
use crate::stats::ServerStats;
use crate::AnalysisBackend;
use std::sync::atomic::{AtomicBool, Ordering};

/// The JSON endpoints `chora serve` exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/analyze` — full analysis report of the `.imp` body.
    Analyze,
    /// `POST /v1/batch` — JSON array of programs, analyzed in one round
    /// trip; the response array is index-aligned with the request.
    Batch,
    /// `POST /v1/complexity` — Table 1 view of the `.imp` body.
    Complexity,
    /// `GET /v1/healthz` — liveness probe.
    Healthz,
    /// `GET /v1/stats` — request timings and cache counters.
    Stats,
    /// `GET /v1/metrics` — the telemetry registry in Prometheus text
    /// exposition format.
    Metrics,
    /// `POST /v1/shutdown` — graceful drain-and-exit.
    Shutdown,
    /// `GET /v1/summaries/{key}` — the raw cache entry under a component
    /// key, served from this daemon's local store to fleet peers using it
    /// as their remote cache tier.
    SummaryGet,
    /// `PUT /v1/summaries/{key}` — a peer publishing a cache entry into
    /// this daemon's local store.
    SummaryPut,
}

/// The wildcard path the summary routes are registered under: requests
/// carry a real key (`/v1/summaries/<hex>`), but the table row — and the
/// per-endpoint request metrics derived from it — use one fixed label, so
/// metric cardinality stays bounded no matter how many keys a fleet asks
/// for.
pub const SUMMARY_PATH: &str = "/v1/summaries/{key}";

/// The prefix that maps a request path onto [`SUMMARY_PATH`].
const SUMMARY_PREFIX: &str = "/v1/summaries/";

/// Everything a handler may touch: the injected analysis backend, the
/// request accounting, and the server's shutdown flag.
pub struct Ctx<'a> {
    pub backend: &'a dyn AnalysisBackend,
    pub stats: &'a ServerStats,
    pub shutdown: &'a AtomicBool,
}

/// An endpoint handler: a well-formed request in, a response out.
pub type Handler = fn(&Request, &Ctx<'_>) -> Response;

/// One row of the endpoint table.
#[derive(Debug)]
pub struct Route {
    pub method: &'static str,
    pub path: &'static str,
    pub endpoint: Endpoint,
    pub handler: Handler,
}

/// The endpoint table.  Dispatch, `Endpoint::{path,method,all}`, the 404
/// endpoint listing, and the `Allow` header of 405s are all derived from
/// these rows.
pub static ROUTES: [Route; 9] = [
    Route {
        method: "POST",
        path: "/v1/analyze",
        endpoint: Endpoint::Analyze,
        handler: analyze,
    },
    Route {
        method: "POST",
        path: "/v1/batch",
        endpoint: Endpoint::Batch,
        handler: batch,
    },
    Route {
        method: "POST",
        path: "/v1/complexity",
        endpoint: Endpoint::Complexity,
        handler: complexity,
    },
    Route {
        method: "GET",
        path: "/v1/healthz",
        endpoint: Endpoint::Healthz,
        handler: healthz,
    },
    Route {
        method: "GET",
        path: "/v1/stats",
        endpoint: Endpoint::Stats,
        handler: stats,
    },
    Route {
        method: "GET",
        path: "/v1/metrics",
        endpoint: Endpoint::Metrics,
        handler: metrics,
    },
    Route {
        method: "POST",
        path: "/v1/shutdown",
        endpoint: Endpoint::Shutdown,
        handler: shutdown,
    },
    Route {
        method: "GET",
        path: SUMMARY_PATH,
        endpoint: Endpoint::SummaryGet,
        handler: summary_get,
    },
    Route {
        method: "PUT",
        path: SUMMARY_PATH,
        endpoint: Endpoint::SummaryPut,
        handler: summary_put,
    },
];

impl Endpoint {
    fn route(self) -> &'static Route {
        ROUTES
            .iter()
            .find(|r| r.endpoint == self)
            .expect("every endpoint has a table row")
    }

    /// The canonical path of the endpoint.
    pub fn path(self) -> &'static str {
        self.route().path
    }

    /// The only method the endpoint answers.
    pub fn method(self) -> &'static str {
        self.route().method
    }

    /// All endpoints, in table order (for usage messages).
    pub fn all() -> impl Iterator<Item = Endpoint> {
        ROUTES.iter().map(|r| r.endpoint)
    }

    /// Resolves an endpoint from its CLI name (`chora request <endpoint>`).
    pub fn from_name(name: &str) -> Option<Endpoint> {
        Endpoint::all().find(|e| e.path().trim_start_matches("/v1/") == name)
    }
}

/// Routes a request line onto its table row, or produces the matching
/// 404/405 JSON error response (the 405 carries an `Allow` header built
/// from the rows sharing the path).
pub fn route(method: &str, path: &str) -> Result<&'static Route, Response> {
    // A non-empty key under the summaries prefix routes onto the wildcard
    // row (the handler re-extracts the key from the request path).
    let path = if path
        .strip_prefix(SUMMARY_PREFIX)
        .is_some_and(|key| !key.is_empty())
    {
        SUMMARY_PATH
    } else {
        path
    };
    if let Some(route) = ROUTES.iter().find(|r| r.path == path && r.method == method) {
        return Ok(route);
    }
    let allow: Vec<&str> = ROUTES
        .iter()
        .filter(|r| r.path == path)
        .map(|r| r.method)
        .collect();
    if allow.is_empty() {
        let paths: Vec<&str> = ROUTES.iter().map(|r| r.path).collect();
        return Err(Response::error(
            404,
            &format!("no such endpoint `{path}`; available: {}", paths.join(", ")),
        ));
    }
    let allow = allow.join(", ");
    Err(
        Response::error(405, &format!("{path} expects {allow}, got {method}"))
            .with_header("Allow", allow),
    )
}

fn healthz(_request: &Request, ctx: &Ctx<'_>) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"uptime_ms\": {:.3}}}\n",
            ctx.stats.uptime_ms()
        ),
    )
}

fn stats(_request: &Request, ctx: &Ctx<'_>) -> Response {
    ctx.backend.sync_metrics();
    Response::json(
        200,
        ctx.stats
            .to_json(&ctx.backend.cache_counters(), &ctx.backend.fm_counters()),
    )
}

fn metrics(_request: &Request, ctx: &Ctx<'_>) -> Response {
    // Let the backend publish its latest cache/driver counters into the
    // registry, then render everything the process has registered.
    ctx.backend.sync_metrics();
    Response {
        status: 200,
        body: chora_telemetry::metrics::registry().render_prometheus(),
        content_type: "text/plain; version=0.0.4; charset=utf-8",
        headers: Vec::new(),
    }
}

fn shutdown(_request: &Request, ctx: &Ctx<'_>) -> Response {
    ctx.shutdown.store(true, Ordering::SeqCst);
    Response::json(200, "{\"ok\": true, \"draining\": true}\n")
}

fn analyze(request: &Request, ctx: &Ctx<'_>) -> Response {
    body_endpoint(request, |source| {
        ctx.backend.analyze(&request.query, source)
    })
}

fn complexity(request: &Request, ctx: &Ctx<'_>) -> Response {
    body_endpoint(request, |source| {
        ctx.backend.complexity(&request.query, source)
    })
}

fn batch(request: &Request, ctx: &Ctx<'_>) -> Response {
    body_endpoint(request, |body| ctx.backend.batch(&request.query, body))
}

/// The key segment of a summaries request (`/v1/summaries/<hex>` — the
/// router only dispatches here with a non-empty segment).
fn summary_key(request: &Request) -> &str {
    request.path.strip_prefix(SUMMARY_PREFIX).unwrap_or("")
}

fn summary_get(request: &Request, ctx: &Ctx<'_>) -> Response {
    match ctx
        .backend
        .summary_get(summary_key(request), request.query_param("src"))
    {
        Ok(Some(entry)) => Response::json(200, entry),
        Ok(None) => Response::error(404, "no cached entry under this key"),
        Err(message) => Response::error(400, &message),
    }
}

fn summary_put(request: &Request, ctx: &Ctx<'_>) -> Response {
    body_endpoint(request, |entry| {
        ctx.backend
            .summary_put(summary_key(request), request.query_param("src"), entry)
            .map(|()| "{\"ok\": true}\n".to_string())
    })
}

/// The shared shape of the analysis endpoints: UTF-8 body in, backend
/// result out, errors as the uniform JSON envelope.
fn body_endpoint(request: &Request, run: impl FnOnce(&str) -> Result<String, String>) -> Response {
    let source = match request.body_utf8() {
        Ok(source) => source,
        Err(e) => return Response::error(e.status, &e.message),
    };
    match run(source) {
        Ok(body) => Response::json(200, body),
        Err(message) => Response::error(400, &message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint_by_method_and_path() {
        for endpoint in Endpoint::all() {
            let route = route(endpoint.method(), endpoint.path()).expect("routes");
            assert_eq!(route.endpoint, endpoint);
        }
    }

    #[test]
    fn wrong_method_is_405_with_allow_unknown_path_is_404() {
        let err = route("GET", "/v1/analyze").unwrap_err();
        assert_eq!(err.status, 405);
        assert_eq!(err.headers, vec![("Allow", "POST".to_string())]);
        let err = route("POST", "/v1/healthz").unwrap_err();
        assert_eq!(err.status, 405);
        assert_eq!(err.headers, vec![("Allow", "GET".to_string())]);
        let err = route("GET", "/nope").unwrap_err();
        assert_eq!(err.status, 404);
        assert!(err.headers.is_empty());
        assert!(err.body.contains("/v1/batch"), "{}", err.body);
    }

    #[test]
    fn summary_requests_route_onto_the_wildcard_row() {
        let get = route("GET", "/v1/summaries/00ffee").expect("routes");
        assert_eq!(get.endpoint, Endpoint::SummaryGet);
        assert_eq!(get.path, SUMMARY_PATH, "metric label is the wildcard");
        let put = route("PUT", "/v1/summaries/00ffee").expect("routes");
        assert_eq!(put.endpoint, Endpoint::SummaryPut);
        // Wrong method lists both verbs; the bare prefix is no endpoint.
        let err = route("POST", "/v1/summaries/00ffee").unwrap_err();
        assert_eq!(err.status, 405);
        assert_eq!(err.headers, vec![("Allow", "GET, PUT".to_string())]);
        assert_eq!(route("GET", "/v1/summaries/").unwrap_err().status, 404);
    }

    #[test]
    fn endpoint_names_resolve() {
        assert_eq!(Endpoint::from_name("analyze"), Some(Endpoint::Analyze));
        assert_eq!(Endpoint::from_name("batch"), Some(Endpoint::Batch));
        assert_eq!(Endpoint::from_name("stats"), Some(Endpoint::Stats));
        assert_eq!(Endpoint::from_name("metrics"), Some(Endpoint::Metrics));
        assert_eq!(Endpoint::from_name("bogus"), None);
    }
}
