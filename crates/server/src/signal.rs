//! SIGINT/SIGTERM handling for graceful shutdown.
//!
//! The handler only flips a process-wide atomic flag (the one async-signal-
//! safe thing worth doing); the accept loop polls it between accepts.  This
//! is the single place in the workspace that needs `unsafe` (registering a
//! C signal handler has no safe std API), so the workspace-wide
//! `unsafe_code = "deny"` lint is locally re-allowed for exactly that.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has been received since [`install`].
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs the SIGINT/SIGTERM → flag handler (idempotent; no-op on
/// platforms without POSIX signals).
pub fn install() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        super::SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // POSIX `signal(2)`, linked from libc (std already links it).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}
