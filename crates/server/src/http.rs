//! A deliberately small HTTP/1.1 implementation over `std::net` — request
//! parsing, response serialization, percent en/decoding, and JSON error
//! bodies.  No keep-alive (every response carries `Connection: close`), no
//! chunked transfer encoding, no TLS: exactly what a local analysis daemon
//! and its bundled client need, with hard limits on head and body size so a
//! misbehaving peer cannot wedge a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (a `.imp` source file).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// How long a worker waits for a slow client before giving up on the
/// connection (reading the request or writing the response).
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request: method, decoded path, decoded query pairs, lowercased
/// headers, raw body.
#[derive(Clone, Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))
    }
}

/// A request-level failure that maps onto an HTTP status.
#[derive(Clone, Debug)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    pub fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// A response about to be serialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with the given pre-rendered body.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
        }
    }

    /// The uniform JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\": {}}}\n", json_string(message)))
    }

    /// Serializes onto the stream (`Connection: close` framing).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Standard reason phrase of the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders a JSON string literal (quotes and control characters escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Percent-encodes one query component (RFC 3986 unreserved set passes).
pub fn encode_query_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes percent escapes (and `+` as space) in one query component.
fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits and decodes a raw query string into key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(part), String::new()),
        })
        .collect()
}

/// Reads and parses one request off the stream, enforcing the size limits
/// and the I/O timeout.  Answers `Expect: 100-continue` inline so plain
/// `curl` uploads work.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 413,
                message: "request head exceeds the size limit".to_string(),
            });
        }
        let n = stream.read(&mut chunk).map_err(read_error)?;
        if n == 0 {
            return Err(HttpError::bad_request(
                "connection closed before the request head was complete",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("request line has no target"))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::bad_request("only HTTP/1.x is supported")),
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::bad_request(
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }
    // All Content-Length occurrences must agree: resolving duplicates by
    // "first wins" would silently read the wrong number of body bytes when
    // a proxy or a confused client stacks conflicting values (a classic
    // request-smuggling vector) — reject the request instead.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed: usize = v
            .parse()
            .map_err(|_| HttpError::bad_request(format!("invalid Content-Length `{v}`")))?;
        match content_length {
            Some(existing) if existing != parsed => {
                return Err(HttpError::bad_request(
                    "conflicting duplicate Content-Length headers",
                ));
            }
            _ => content_length = Some(parsed),
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError {
            status: 413,
            message: format!("request body of {content_length} bytes exceeds the limit"),
        });
    }
    if headers
        .iter()
        .any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue"))
    {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(read_error)?;
        if n == 0 {
            return Err(HttpError::bad_request(
                "connection closed before the request body was complete",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: decode_component(raw_path),
        query: parse_query(raw_query),
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn read_error(e: std::io::Error) -> HttpError {
    let status = match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => 408,
        _ => 400,
    };
    HttpError {
        status,
        message: format!("failed reading request: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_components_round_trip() {
        for s in [
            "examples/programs/hanoi.imp",
            "name with spaces & symbols = 100%",
            "plain",
            "",
        ] {
            let enc = encode_query_component(s);
            assert_eq!(decode_component(&enc), s, "via {enc}");
        }
    }

    #[test]
    fn query_strings_parse_into_pairs() {
        let q = parse_query("file=a%2Fb.imp&jobs=4&flag");
        assert_eq!(
            q,
            vec![
                ("file".to_string(), "a/b.imp".to_string()),
                ("jobs".to_string(), "4".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn json_strings_escape_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn error_responses_are_json_envelopes() {
        let r = Response::error(400, "oops: \"x\"");
        assert_eq!(r.status, 400);
        assert_eq!(r.body, "{\"error\": \"oops: \\\"x\\\"\"}\n");
    }
}
